// SIMD element-batching battery (ctest -L simd): pk::simd pack semantics,
// the batched range policy, --simd parsing, batched == scalar equivalence
// for the fused residual chain and the matrix-free tangent (hex8 AND
// wedge6, every scatter mode, ragged tails), the pow-hoist bitwise pin,
// the kMaxNodes typed-error guards across the fused kernel family, and the
// workset basal-side-set validator.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "fem/cell_geometry.hpp"
#include "fem/prism_geometry.hpp"
#include "fem/wedge6.hpp"
#include "mesh/tri_grid.hpp"
#include "physics/eval_types.hpp"
#include "physics/fused_chain.hpp"
#include "physics/fused_chain_batched.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "physics/stokes_jacobian_apply.hpp"
#include "physics/stokes_jacobian_apply_batched.hpp"
#include "portability/common.hpp"
#include "portability/simd.hpp"

using namespace mali;
using physics::ScatterMode;
using physics::StokesFOConfig;
using physics::StokesFOProblem;

namespace {

/// Batched == scalar equivalence contract: <= 1e-14 per dof (relative,
/// floored at 1), the acceptance criterion of the SIMD PR.
constexpr double kDofTol = 1e-14;

void expect_dof_match(const std::vector<double>& ref,
                      const std::vector<double>& got, const char* what) {
  ASSERT_EQ(ref.size(), got.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], kDofTol * std::max(1.0, std::abs(ref[i])))
        << what << " dof " << i;
  }
}

StokesFOConfig small_config(int simd_width, ScatterMode scatter,
                            std::size_t workset_size = 0) {
  StokesFOConfig cfg;
  cfg.dx_m = 250.0e3;
  cfg.n_layers = 4;
  cfg.simd_width = simd_width;
  cfg.scatter = scatter;
  cfg.workset_size = workset_size;
  return cfg;
}

std::vector<double> assemble_residual(const StokesFOConfig& cfg) {
  StokesFOProblem p(cfg);
  const auto U = p.analytic_initial_guess();
  std::vector<double> F;
  p.residual(U, F);
  return F;
}

}  // namespace

// ---------------------------------------------------------------------------
// pk::simd pack semantics
// ---------------------------------------------------------------------------

TEST(SimdPack, LoadStoreRoundTrip) {
  const double src[4] = {1.5, -2.25, 3.0, 0.125};
  const auto p = pk::simd<double, 4>::load(src);
  double dst[4] = {};
  p.store(dst);
  for (int l = 0; l < 4; ++l) EXPECT_EQ(dst[l], src[l]);
}

TEST(SimdPack, LoadNZeroFillsDeadLanes) {
  const double src[4] = {7.0, 8.0, 9.0, 10.0};
  const auto p = pk::simd<double, 4>::load_n(src, 2);
  EXPECT_EQ(p[0], 7.0);
  EXPECT_EQ(p[1], 8.0);
  EXPECT_EQ(p[2], 0.0);
  EXPECT_EQ(p[3], 0.0);
}

TEST(SimdPack, StoreNMasksDeadLanes) {
  const auto p = pk::simd<double, 4>::broadcast(5.0);
  double dst[4] = {-1.0, -1.0, -1.0, -1.0};
  p.store_n(dst, 3);
  EXPECT_EQ(dst[0], 5.0);
  EXPECT_EQ(dst[1], 5.0);
  EXPECT_EQ(dst[2], 5.0);
  EXPECT_EQ(dst[3], -1.0);  // untouched
}

TEST(SimdPack, ArithmeticMatchesScalarLanewise) {
  std::mt19937 rng(17);
  std::uniform_real_distribution<double> dist(0.5, 2.0);
  double a[8], b[8], c[8];
  for (int l = 0; l < 8; ++l) {
    a[l] = dist(rng);
    b[l] = dist(rng);
    c[l] = dist(rng);
  }
  const auto pa = pk::simd<double, 8>::load(a);
  const auto pb = pk::simd<double, 8>::load(b);
  const auto pc = pk::simd<double, 8>::load(c);
  const auto sum = pa + pb;
  const auto dif = pa - pb;
  const auto prd = pa * pb;
  const auto quo = pa / pb;
  const auto neg = -pa;
  const auto sxl = 2.0 * pa;
  const auto sxr = pa * 2.0 + 1.0;
  const auto fmad = pk::fma(pa, pb, pc);
  for (int l = 0; l < 8; ++l) {
    EXPECT_EQ(sum[l], a[l] + b[l]);
    EXPECT_EQ(dif[l], a[l] - b[l]);
    EXPECT_EQ(prd[l], a[l] * b[l]);
    EXPECT_EQ(quo[l], a[l] / b[l]);
    EXPECT_EQ(neg[l], -a[l]);
    EXPECT_EQ(sxl[l], 2.0 * a[l]);
    EXPECT_EQ(sxr[l], a[l] * 2.0 + 1.0);
    EXPECT_EQ(fmad[l], a[l] * b[l] + c[l]);
  }
}

TEST(SimdPack, BlendSelectsByMask) {
  const auto a = pk::simd<double, 4>::broadcast(1.0);
  const auto b = pk::simd<double, 4>::broadcast(2.0);
  const auto m = pk::simd_mask<4>::first_n(2);
  const auto r = pk::blend(m, a, b);
  EXPECT_EQ(r[0], 1.0);
  EXPECT_EQ(r[1], 1.0);
  EXPECT_EQ(r[2], 2.0);
  EXPECT_EQ(r[3], 2.0);
}

TEST(SimdPack, LanePowAndSqrtMatchLibm) {
  const double src[4] = {0.25, 1.0, 2.0, 9.0};
  const auto p = pk::simd<double, 4>::load(src);
  const auto pw = pk::lane_pow(p, -1.0 / 3.0);
  const auto sq = pk::lane_sqrt(p);
  for (int l = 0; l < 4; ++l) {
    EXPECT_EQ(pw[l], std::pow(src[l], -1.0 / 3.0));
    EXPECT_EQ(sq[l], std::sqrt(src[l]));
  }
}

TEST(SimdPack, WidthOneDegradesToScalar) {
  const double x = 3.75;
  auto p = pk::simd<double, 1>::load(&x);
  p = p * p + 1.0;
  EXPECT_EQ(p[0], x * x + 1.0);
}

TEST(SimdPack, WidthValidation) {
  EXPECT_TRUE(pk::simd_width_valid(1));
  EXPECT_TRUE(pk::simd_width_valid(2));
  EXPECT_TRUE(pk::simd_width_valid(4));
  EXPECT_TRUE(pk::simd_width_valid(8));
  EXPECT_FALSE(pk::simd_width_valid(0));
  EXPECT_FALSE(pk::simd_width_valid(3));
  EXPECT_FALSE(pk::simd_width_valid(16));
  EXPECT_TRUE(pk::simd_width_valid(pk::kSimdNativeWidth));
}

// ---------------------------------------------------------------------------
// SimdRangePolicy
// ---------------------------------------------------------------------------

TEST(SimdRangePolicy, BatchesCoverRaggedRangeExactlyOnce) {
  constexpr std::size_t n = 37;
  std::vector<int> touched(n, 0);
  pk::parallel_for("cover", pk::SimdRangePolicy<4, pk::Serial>(n),
                   [&](const pk::SimdBatch& b) {
                     EXPECT_EQ(b.width, 4);
                     for (int l = 0; l < b.n_valid; ++l) {
                       touched[b.begin + static_cast<std::size_t>(l)] += 1;
                     }
                     if (b.begin + 4 <= n) {
                       EXPECT_TRUE(b.full());
                     } else {
                       EXPECT_EQ(b.n_valid, static_cast<int>(n - b.begin));
                     }
                   });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(touched[i], 1) << i;
}

TEST(SimdRangePolicy, NumBatchesRoundsUp) {
  EXPECT_EQ((pk::SimdRangePolicy<4, pk::Serial>(0).num_batches()), 0u);
  EXPECT_EQ((pk::SimdRangePolicy<4, pk::Serial>(1).num_batches()), 1u);
  EXPECT_EQ((pk::SimdRangePolicy<4, pk::Serial>(4).num_batches()), 1u);
  EXPECT_EQ((pk::SimdRangePolicy<4, pk::Serial>(5).num_batches()), 2u);
  EXPECT_EQ((pk::SimdRangePolicy<8, pk::Serial>(37).num_batches()), 5u);
}

TEST(SimdRangePolicy, ThreadedDispatchCoversRange) {
  constexpr std::size_t n = 1003;
  std::vector<int> touched(n, 0);  // batches are disjoint: no data race
  pk::parallel_for("cover_mt", pk::SimdRangePolicy<4, pk::Threads>(n),
                   [&](const pk::SimdBatch& b) {
                     for (int l = 0; l < b.n_valid; ++l) {
                       touched[b.begin + static_cast<std::size_t>(l)] += 1;
                     }
                   });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(touched[i], 1) << i;
}

// ---------------------------------------------------------------------------
// --simd parsing
// ---------------------------------------------------------------------------

TEST(SimdWidthFromString, ParsesAllForms) {
  EXPECT_EQ(physics::simd_width_from_string("auto"), 0);
  EXPECT_EQ(physics::simd_width_from_string("off"), 1);
  EXPECT_EQ(physics::simd_width_from_string("1"), 1);
  EXPECT_EQ(physics::simd_width_from_string("2"), 2);
  EXPECT_EQ(physics::simd_width_from_string("4"), 4);
  EXPECT_EQ(physics::simd_width_from_string("8"), 8);
}

TEST(SimdWidthFromString, RejectsInvalidWidths) {
  EXPECT_THROW(physics::simd_width_from_string("3"), mali::Error);
  EXPECT_THROW(physics::simd_width_from_string("16"), mali::Error);
  EXPECT_THROW(physics::simd_width_from_string("fast"), mali::Error);
  EXPECT_THROW(physics::simd_width_from_string(""), mali::Error);
}

// ---------------------------------------------------------------------------
// Problem-level equivalence: batched residual/tangent vs the scalar path
// ---------------------------------------------------------------------------

class SimdResidualEquivalence
    : public ::testing::TestWithParam<std::tuple<int, ScatterMode>> {};

TEST_P(SimdResidualEquivalence, MatchesScalarPath) {
  const auto [width, scatter] = GetParam();
  const auto ref = assemble_residual(small_config(1, scatter));
  const auto got = assemble_residual(small_config(width, scatter));
  expect_dof_match(ref, got, "residual");
}

INSTANTIATE_TEST_SUITE_P(
    WidthsByScatter, SimdResidualEquivalence,
    ::testing::Combine(::testing::Values(2, 4, 8, 0 /* auto */),
                       ::testing::Values(ScatterMode::kSerial,
                                         ScatterMode::kColored,
                                         ScatterMode::kAtomic)));

TEST(SimdProblemEquivalence, RaggedWorksetsMatchScalar) {
  // workset_size = 37 leaves every workset with n % W != 0 remainders.
  const auto ref = assemble_residual(small_config(1, ScatterMode::kColored, 37));
  for (const int w : {2, 4, 8}) {
    const auto got =
        assemble_residual(small_config(w, ScatterMode::kColored, 37));
    expect_dof_match(ref, got, "ragged-workset residual");
  }
}

TEST(SimdProblemEquivalence, ThermalViscosityMatchesScalar) {
  auto make = [](int w) {
    auto cfg = small_config(w, ScatterMode::kColored);
    cfg.thermal_viscosity = true;
    return cfg;
  };
  const auto ref = assemble_residual(make(1));
  const auto got = assemble_residual(make(4));
  expect_dof_match(ref, got, "thermal residual");
}

TEST(SimdProblemEquivalence, MmsConstantViscosityMatchesScalar) {
  auto make = [](int w) {
    auto cfg = small_config(w, ScatterMode::kColored);
    cfg.mms.enabled = true;
    return cfg;
  };
  const auto ref = assemble_residual(make(1));
  const auto got = assemble_residual(make(4));
  expect_dof_match(ref, got, "mms residual");
}

TEST(SimdProblemEquivalence, ApplyJacobianMatchesScalar) {
  StokesFOProblem scalar(small_config(1, ScatterMode::kColored));
  const auto U = scalar.analytic_initial_guess();
  const std::size_t n = scalar.n_dofs();
  std::vector<double> x(n);
  std::mt19937 rng(23);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (auto& v : x) v = dist(rng);

  std::vector<double> y_ref(n, 0.0);
  scalar.apply_jacobian(U, x, y_ref);
  for (const int w : {2, 4, 8}) {
    StokesFOProblem batched(small_config(w, ScatterMode::kColored));
    std::vector<double> y(n, 0.0);
    batched.apply_jacobian(U, x, y);
    expect_dof_match(y_ref, y, "tangent apply");
  }
}

// ---------------------------------------------------------------------------
// Standalone kernel equivalence, including n_cells < W and wedge6
// ---------------------------------------------------------------------------

namespace {

/// Random standalone inputs for the batched chain at padded extent Cp.
struct BatchedChainData {
  std::size_t C;
  std::size_t Cp;
  int N, Q;
  pk::View<double, 3> UNodal;
  pk::View<double, 3> coords;
  pk::View<double, 3> ref_grad;
  pk::View<double, 2> ref_val;
  pk::View<double, 1> qp_weight;
  pk::View<double, 3> force_passive;
  pk::View<double, 3> R_scalar;
  pk::View<double, 3> R_batched;

  BatchedChainData(std::size_t n_cells, int num_nodes, int num_qps,
                   unsigned seed)
      : C(n_cells),
        Cp(fem::padded_cells(n_cells)),
        N(num_nodes),
        Q(num_qps),
        UNodal("UNodal", Cp, static_cast<std::size_t>(N), 2),
        coords("coords", Cp, static_cast<std::size_t>(N), 3),
        ref_grad("ref_grad", static_cast<std::size_t>(Q),
                 static_cast<std::size_t>(N), 3),
        ref_val("ref_val", static_cast<std::size_t>(Q),
                static_cast<std::size_t>(N)),
        qp_weight("qp_weight", static_cast<std::size_t>(Q)),
        force_passive("force_passive", Cp, static_cast<std::size_t>(Q), 2),
        R_scalar("R_scalar", Cp, static_cast<std::size_t>(N), 2),
        R_batched("R_batched", Cp, static_cast<std::size_t>(N), 2) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (std::size_t c = 0; c < Cp; ++c) {
      for (int k = 0; k < N; ++k) {
        UNodal(c, k, 0) = 100.0 * dist(rng);
        UNodal(c, k, 1) = 100.0 * dist(rng);
      }
      for (int q = 0; q < Q; ++q) {
        force_passive(c, q, 0) = 10.0 * dist(rng);
        force_passive(c, q, 1) = 10.0 * dist(rng);
      }
    }
  }
};

/// Runs the scalar reference (per-cell recompute via StokesFOTangent-style
/// math is what the batched kernel reassociates; the honest scalar reference
/// here is FusedStokesChainBatched<1> — identical arithmetic, W = 1 lanes).
template <int W>
void run_batched_chain(BatchedChainData& d, const pk::View<double, 3>& out,
                       std::size_t dispatch_n) {
  physics::FusedStokesChainBatched<W> chain;
  chain.UNodal = d.UNodal;
  chain.coords = d.coords;
  chain.ref_grad = d.ref_grad;
  chain.ref_val = d.ref_val;
  chain.qp_weight = d.qp_weight;
  chain.force_passive = d.force_passive;
  chain.Residual = out;
  chain.numNodes = static_cast<unsigned>(d.N);
  chain.numQPs = static_cast<unsigned>(d.Q);
  chain.prepare();
  pk::parallel_for("chain", pk::SimdRangePolicy<W, pk::Serial>(dispatch_n),
                   chain);
}

}  // namespace

TEST(SimdBatchedKernel, SmallCellCountsMatchWidthOne) {
  // n_cells < W and ragged n_cells % W != 0 for every width, on a unit-ish
  // random hex geometry taken from the real problem's first cells.
  StokesFOProblem problem(small_config(1, ScatterMode::kSerial));
  const auto& ws = problem.workset();
  for (const std::size_t n_cells : {std::size_t{3}, std::size_t{11}}) {
    BatchedChainData d(n_cells, ws.num_nodes, ws.num_qps, 91);
    for (std::size_t c = 0; c < d.Cp; ++c) {
      const std::size_t src = std::min(c, ws.n_cells - 1);
      for (int k = 0; k < d.N; ++k) {
        for (int x = 0; x < 3; ++x) d.coords(c, k, x) = ws.coords(src, k, x);
      }
    }
    for (int q = 0; q < d.Q; ++q) {
      d.qp_weight(q) = problem.qp_weights()(q);
      for (int k = 0; k < d.N; ++k) {
        d.ref_val(q, k) = problem.ref_val()(q, k);
        for (int x = 0; x < 3; ++x) {
          d.ref_grad(q, k, x) = problem.ref_grad()(q, k, x);
        }
      }
    }
    run_batched_chain<1>(d, d.R_scalar, n_cells);
    run_batched_chain<2>(d, d.R_batched, n_cells);
    for (std::size_t c = 0; c < n_cells; ++c) {
      for (int k = 0; k < d.N; ++k) {
        for (int v = 0; v < 2; ++v) {
          const double ref = d.R_scalar(c, k, v);
          EXPECT_NEAR(d.R_batched(c, k, v), ref,
                      kDofTol * std::max(1.0, std::abs(ref)));
        }
      }
    }
    run_batched_chain<4>(d, d.R_batched, n_cells);
    for (std::size_t c = 0; c < n_cells; ++c) {
      for (int k = 0; k < d.N; ++k) {
        for (int v = 0; v < 2; ++v) {
          const double ref = d.R_scalar(c, k, v);
          EXPECT_NEAR(d.R_batched(c, k, v), ref,
                      kDofTol * std::max(1.0, std::abs(ref)));
        }
      }
    }
    run_batched_chain<8>(d, d.R_batched, n_cells);
    for (std::size_t c = 0; c < n_cells; ++c) {
      for (int k = 0; k < d.N; ++k) {
        for (int v = 0; v < 2; ++v) {
          const double ref = d.R_scalar(c, k, v);
          EXPECT_NEAR(d.R_batched(c, k, v), ref,
                      kDofTol * std::max(1.0, std::abs(ref)));
        }
      }
    }
  }
}

TEST(SimdBatchedKernel, Wedge6BatchedMatchesScalarStreamingChain) {
  // Prism workset: 6-node wedges, 6 qps, built by build_prism_geometry with
  // the same padded layout.  The scalar reference is the streaming
  // FusedStokesChain on the precomputed gradBF/wGradBF/wBF arrays; the
  // batched chain recomputes geometry from coords + Wedge6 reference data.
  mesh::IceGeometry geom{};
  auto quads =
      std::make_shared<mesh::QuadGrid>(geom, mesh::QuadGridConfig{250.0e3});
  mesh::TriGrid tris{quads};
  fem::GeometryWorkset ws = fem::build_prism_geometry(tris, geom, 3);
  const std::size_t C = ws.n_cells;
  const std::size_t Cp = ws.n_cells_padded;
  const int N = ws.num_nodes;
  const int Q = ws.num_qps;
  ASSERT_EQ(N, 6);
  ASSERT_EQ(Q, 6);

  BatchedChainData d(C, N, Q, 7);
  for (std::size_t c = 0; c < Cp; ++c) {
    for (int k = 0; k < N; ++k) {
      for (int x = 0; x < 3; ++x) d.coords(c, k, x) = ws.coords(c, k, x);
    }
  }
  const auto qps = fem::gauss_wedge();
  for (int q = 0; q < Q; ++q) {
    d.qp_weight(q) = qps[static_cast<std::size_t>(q)].weight;
    for (int k = 0; k < N; ++k) {
      const auto& qp = qps[static_cast<std::size_t>(q)];
      d.ref_val(q, k) = fem::Wedge6Basis::value(k, qp.xi, qp.eta, qp.zeta);
      const auto g = fem::Wedge6Basis::gradient(k, qp.xi, qp.eta, qp.zeta);
      for (int x = 0; x < 3; ++x) d.ref_grad(q, k, x) = g[x];
    }
  }

  physics::FusedStokesChain<double> scalar_chain;
  scalar_chain.UNodal = d.UNodal;
  scalar_chain.gradBF = ws.gradBF;
  scalar_chain.wGradBF = ws.wGradBF;
  scalar_chain.wBF = ws.wBF;
  scalar_chain.force_passive = d.force_passive;
  scalar_chain.Residual = d.R_scalar;
  scalar_chain.numNodes = static_cast<unsigned>(N);
  scalar_chain.numQPs = static_cast<unsigned>(Q);
  scalar_chain.prepare();
  pk::parallel_for("wedge_scalar", pk::RangePolicy<pk::Serial>(C),
                   scalar_chain);

  run_batched_chain<4>(d, d.R_batched, C);
  for (std::size_t c = 0; c < C; ++c) {
    for (int k = 0; k < N; ++k) {
      for (int v = 0; v < 2; ++v) {
        const double ref = d.R_scalar(c, k, v);
        EXPECT_NEAR(d.R_batched(c, k, v), ref,
                    kDofTol * std::max(1.0, std::abs(ref)))
            << "cell " << c << " node " << k;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// pow-hoist bitwise pin
// ---------------------------------------------------------------------------

TEST(FusedChainPowHoist, PreparedChainBitwiseMatchesInlineFormula) {
  // The hoisted coeff_/expo_ are computed by the exact expressions the
  // kernel previously evaluated per cell, so residuals must be *bitwise*
  // identical to an inline re-derivation of the viscosity.
  StokesFOProblem problem(small_config(1, ScatterMode::kSerial));
  const auto& ws = problem.workset();
  const std::size_t C = 5;
  const int N = ws.num_nodes;
  const int Q = ws.num_qps;
  const double glen_A = 4.9e-17, glen_n = 3.4, eps_reg2 = 1.0e-10;

  BatchedChainData d(C, N, Q, 3);
  physics::FusedStokesChain<double> chain;
  chain.UNodal = d.UNodal;
  chain.gradBF = ws.gradBF;
  chain.wGradBF = ws.wGradBF;
  chain.wBF = ws.wBF;
  chain.force_passive = d.force_passive;
  chain.Residual = d.R_scalar;
  chain.glen_A = glen_A;
  chain.glen_n = glen_n;
  chain.eps_reg2 = eps_reg2;
  chain.numNodes = static_cast<unsigned>(N);
  chain.numQPs = static_cast<unsigned>(Q);
  chain.prepare();
  pk::parallel_for("hoisted", pk::RangePolicy<pk::Serial>(C), chain);

  // Inline reference: the pre-hoist kernel body with coeff/expo computed
  // per cell (the expressions prepare() evaluates once).
  for (std::size_t cell = 0; cell < C; ++cell) {
    double un[8][2];
    for (int k = 0; k < N; ++k) {
      un[k][0] = d.UNodal(cell, k, 0);
      un[k][1] = d.UNodal(cell, k, 1);
    }
    double res0[8] = {}, res1[8] = {};
    for (int qp = 0; qp < Q; ++qp) {
      double g[2][3] = {};
      for (int k = 0; k < N; ++k) {
        for (int x = 0; x < 3; ++x) {
          const double gb = ws.gradBF(cell, k, qp, x);
          g[0][x] += un[k][0] * gb;
          g[1][x] += un[k][1] * gb;
        }
      }
      const double eps2 =
          g[0][0] * g[0][0] + g[1][1] * g[1][1] + g[0][0] * g[1][1] +
          0.25 * ((g[0][1] + g[1][0]) * (g[0][1] + g[1][0]) +
                  g[0][2] * g[0][2] + g[1][2] * g[1][2]);
      const double coeff = 0.5 * std::pow(glen_A, -1.0 / glen_n);
      const double expo = (1.0 - glen_n) / (2.0 * glen_n);
      const double mu = coeff * std::pow(eps2 + eps_reg2, expo);
      const double strs00 = 2.0 * mu * (2.0 * g[0][0] + g[1][1]);
      const double strs11 = 2.0 * mu * (2.0 * g[1][1] + g[0][0]);
      const double strs01 = mu * (g[0][1] + g[1][0]);
      const double strs02 = mu * g[0][2];
      const double strs12 = mu * g[1][2];
      const double frc0 = d.force_passive(cell, qp, 0);
      const double frc1 = d.force_passive(cell, qp, 1);
      for (int k = 0; k < N; ++k) {
        res0[k] += strs00 * ws.wGradBF(cell, k, qp, 0) +
                   strs01 * ws.wGradBF(cell, k, qp, 1) +
                   strs02 * ws.wGradBF(cell, k, qp, 2) +
                   frc0 * ws.wBF(cell, k, qp);
        res1[k] += strs01 * ws.wGradBF(cell, k, qp, 0) +
                   strs11 * ws.wGradBF(cell, k, qp, 1) +
                   strs12 * ws.wGradBF(cell, k, qp, 2) +
                   frc1 * ws.wBF(cell, k, qp);
      }
    }
    for (int k = 0; k < N; ++k) {
      EXPECT_EQ(d.R_scalar(cell, k, 0), res0[k]) << "cell " << cell;
      EXPECT_EQ(d.R_scalar(cell, k, 1), res1[k]) << "cell " << cell;
    }
  }
}

// ---------------------------------------------------------------------------
// kMaxNodes typed-error guards (the headline bugfix)
// ---------------------------------------------------------------------------

namespace {

/// Views sized for a 10-node element: allocation is fine, only the kernel
/// guard must trip (pre-fix this was a silent stack overflow in Release).
constexpr std::size_t kBigN = 10;

}  // namespace

TEST(KMaxNodesGuard, FusedStokesChainThrowsTypedError) {
  physics::FusedStokesChain<double> chain;
  chain.UNodal = pk::View<double, 3>("U", 4, kBigN, 2);
  chain.gradBF = pk::View<double, 4>("g", 4, kBigN, 8, 3);
  chain.wGradBF = pk::View<double, 4>("wg", 4, kBigN, 8, 3);
  chain.wBF = pk::View<double, 3>("w", 4, kBigN, 8);
  chain.force_passive = pk::View<double, 3>("f", 4, 8, 2);
  chain.Residual = pk::View<double, 3>("R", 4, kBigN, 2);
  chain.numNodes = kBigN;
  chain.numQPs = 8;
  EXPECT_THROW(chain(0), mali::Error);
}

TEST(KMaxNodesGuard, StokesFOTangentThrowsTypedError) {
  physics::StokesFOTangent tan;
  tan.cell_nodes = pk::View<std::size_t, 2>("cn", 4, kBigN);
  tan.coords = pk::View<double, 3>("x", 4, kBigN, 3);
  tan.U = pk::View<double, 1>("U", 2 * 4 * kBigN);
  tan.X = pk::View<double, 1>("X", 2 * 4 * kBigN);
  tan.ref_grad = pk::View<double, 3>("rg", 8, kBigN, 3);
  tan.qp_weight = pk::View<double, 1>("qw", 8);
  tan.Tangent = pk::View<double, 3>("T", 4, kBigN, 2);
  tan.numNodes = static_cast<int>(kBigN);
  tan.numQPs = 8;
  EXPECT_THROW(tan(0), mali::Error);
}

TEST(KMaxNodesGuard, BatchedChainThrowsTypedError) {
  physics::FusedStokesChainBatched<4> chain;
  chain.UNodal = pk::View<double, 3>("U", 8, kBigN, 2);
  chain.coords = pk::View<double, 3>("x", 8, kBigN, 3);
  chain.ref_grad = pk::View<double, 3>("rg", 8, kBigN, 3);
  chain.ref_val = pk::View<double, 2>("rv", 8, kBigN);
  chain.qp_weight = pk::View<double, 1>("qw", 8);
  chain.force_passive = pk::View<double, 3>("f", 8, 8, 2);
  chain.Residual = pk::View<double, 3>("R", 8, kBigN, 2);
  chain.numNodes = kBigN;
  chain.numQPs = 8;
  EXPECT_THROW(chain(pk::SimdBatch{0, 4, 4}), mali::Error);
}

TEST(KMaxNodesGuard, BatchedTangentThrowsTypedError) {
  physics::StokesFOTangentBatched<4> tan;
  tan.cell_nodes = pk::View<std::size_t, 2>("cn", 8, kBigN);
  tan.coords = pk::View<double, 3>("x", 8, kBigN, 3);
  tan.U = pk::View<double, 1>("U", 2 * 8 * kBigN);
  tan.X = pk::View<double, 1>("X", 2 * 8 * kBigN);
  tan.ref_grad = pk::View<double, 3>("rg", 8, kBigN, 3);
  tan.qp_weight = pk::View<double, 1>("qw", 8);
  tan.Tangent = pk::View<double, 3>("T", 8, kBigN, 2);
  tan.numNodes = static_cast<int>(kBigN);
  tan.numQPs = 8;
  EXPECT_THROW(tan(pk::SimdBatch{0, 4, 4}), mali::Error);
}

TEST(KMaxNodesGuard, GuardPropagatesThroughThreadedDispatch) {
  // MALI_CHECK_MSG inside a worker must surface as mali::Error in the
  // calling thread (ThreadPool rethrows), not crash or vanish.
  physics::FusedStokesChainBatched<4> chain;
  chain.UNodal = pk::View<double, 3>("U", 8, kBigN, 2);
  chain.coords = pk::View<double, 3>("x", 8, kBigN, 3);
  chain.ref_grad = pk::View<double, 3>("rg", 8, kBigN, 3);
  chain.ref_val = pk::View<double, 2>("rv", 8, kBigN);
  chain.qp_weight = pk::View<double, 1>("qw", 8);
  chain.force_passive = pk::View<double, 3>("f", 8, 8, 2);
  chain.Residual = pk::View<double, 3>("R", 8, kBigN, 2);
  chain.numNodes = kBigN;
  chain.numQPs = 8;
  EXPECT_THROW(pk::parallel_for("guard_mt",
                                pk::SimdRangePolicy<4, pk::Threads>(8), chain),
               mali::Error);
}

// ---------------------------------------------------------------------------
// Workset basal-side-set validation
// ---------------------------------------------------------------------------

TEST(WorksetValidation, BuiltWorksetsPass) {
  StokesFOProblem problem(small_config(1, ScatterMode::kSerial));
  EXPECT_NO_THROW(fem::validate_workset(problem.workset()));

  mesh::IceGeometry geom{};
  auto quads =
      std::make_shared<mesh::QuadGrid>(geom, mesh::QuadGridConfig{250.0e3});
  mesh::TriGrid tris{quads};
  const auto prism_ws = fem::build_prism_geometry(tris, geom, 3);
  EXPECT_NO_THROW(fem::validate_workset(prism_ws));
}

TEST(WorksetValidation, ReportsFaceWithOutOfRangeCell) {
  StokesFOProblem problem(small_config(1, ScatterMode::kSerial));
  fem::GeometryWorkset ws = problem.workset();  // views shared, struct local
  ASSERT_GT(ws.n_basal_faces, 2u);
  const std::size_t saved = ws.basal_face_cell(2);
  ws.basal_face_cell(2) = ws.n_cells + 5;
  try {
    fem::validate_workset(ws);
    FAIL() << "expected mali::Error";
  } catch (const mali::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("face 2"), std::string::npos) << msg;
  }
  ws.basal_face_cell(2) = saved;
}

TEST(WorksetValidation, ReportsFaceWithForeignNode) {
  StokesFOProblem problem(small_config(1, ScatterMode::kSerial));
  fem::GeometryWorkset ws = problem.workset();
  ASSERT_GT(ws.n_basal_faces, 1u);
  const std::size_t saved = ws.basal_face_node(1, 0);
  ws.basal_face_node(1, 0) = saved + 1000000;  // not a node of the cell
  try {
    fem::validate_workset(ws);
    FAIL() << "expected mali::Error";
  } catch (const mali::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("face 1"), std::string::npos) << msg;
  }
  ws.basal_face_node(1, 0) = saved;
}

TEST(WorksetValidation, ReportsFaceCountMismatch) {
  StokesFOProblem problem(small_config(1, ScatterMode::kSerial));
  fem::GeometryWorkset ws = problem.workset();
  ws.face_nodes = 5;  // arrays were built with 4
  EXPECT_THROW(fem::validate_workset(ws), mali::Error);
}
