// Randomized property tests: SFad evaluated on random expression trees
// against DFad and central finite differences; Krylov solvers on random
// diagonally-dominant systems against a dense LU reference; cache-simulator
// traffic bounds on random access traces; the LinearOperator interface
// (assembled and matrix-free implementations) on random sizes/directions.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <random>
#include <set>

#include "ad/dfad.hpp"
#include "ad/sfad.hpp"
#include "fem/cell_geometry.hpp"
#include "fem/hex8.hpp"
#include "fem/quadrature.hpp"
#include "gpusim/cache_sim.hpp"
#include "linalg/gmres.hpp"
#include "linalg/krylov.hpp"
#include "linalg/linear_operator.hpp"
#include "linalg/pipelined_krylov.hpp"
#include "mesh/ice_geometry.hpp"
#include "physics/fused_chain_batched.hpp"
#include "physics/matrix_free_operator.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "physics/stokes_jacobian_apply_batched.hpp"
#include "portability/simd.hpp"
#include "timestepping/forcing.hpp"
#include "util/fp_format.hpp"

using namespace mali;

namespace {

// ---- random expression trees over 3 variables ----

enum class Op { kAdd, kSub, kMul, kDiv, kScale, kSqrt, kPow, kLeaf };

struct Expr {
  Op op = Op::kLeaf;
  int leaf = 0;        // variable index for kLeaf
  double constant = 1.0;
  std::unique_ptr<Expr> lhs, rhs;
};

std::unique_ptr<Expr> random_expr(std::mt19937& rng, int depth) {
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  auto e = std::make_unique<Expr>();
  if (depth == 0 || uni(rng) < 0.25) {
    e->op = Op::kLeaf;
    e->leaf = static_cast<int>(uni(rng) * 3.0) % 3;
    return e;
  }
  const double pick = uni(rng);
  if (pick < 0.22) {
    e->op = Op::kAdd;
  } else if (pick < 0.44) {
    e->op = Op::kSub;
  } else if (pick < 0.66) {
    e->op = Op::kMul;
  } else if (pick < 0.76) {
    e->op = Op::kDiv;
  } else if (pick < 0.86) {
    e->op = Op::kScale;
    e->constant = 0.5 + uni(rng);
  } else if (pick < 0.94) {
    e->op = Op::kSqrt;
  } else {
    e->op = Op::kPow;
    e->constant = 0.3 + uni(rng);  // fractional exponent, Glen-style
  }
  e->lhs = random_expr(rng, depth - 1);
  if (e->op == Op::kAdd || e->op == Op::kSub || e->op == Op::kMul ||
      e->op == Op::kDiv) {
    e->rhs = random_expr(rng, depth - 1);
  }
  return e;
}

/// Evaluates the tree for any scalar type; inputs are kept positive so
/// sqrt/pow/div stay well-defined, and divisors are shifted away from zero.
template <class T>
T eval(const Expr& e, const T x[3]) {
  switch (e.op) {
    case Op::kLeaf:
      return x[e.leaf];
    case Op::kAdd:
      return eval(*e.lhs, x) + eval(*e.rhs, x);
    case Op::kSub:
      return eval(*e.lhs, x) - eval(*e.rhs, x);
    case Op::kMul:
      return eval(*e.lhs, x) * eval(*e.rhs, x);
    case Op::kDiv:
      return eval(*e.lhs, x) / (eval(*e.rhs, x) * eval(*e.rhs, x) + 1.5);
    case Op::kScale:
      return e.constant * eval(*e.lhs, x);
    case Op::kSqrt:
      return sqrt(eval(*e.lhs, x) * eval(*e.lhs, x) + 0.75);
    case Op::kPow:
      return pow(eval(*e.lhs, x) * eval(*e.lhs, x) + 0.5, e.constant);
    default:
      return T(0);
  }
}

double eval_plain(const Expr& e, const double x[3]) {
  using std::pow;
  using std::sqrt;
  switch (e.op) {
    case Op::kLeaf:
      return x[e.leaf];
    case Op::kAdd:
      return eval_plain(*e.lhs, x) + eval_plain(*e.rhs, x);
    case Op::kSub:
      return eval_plain(*e.lhs, x) - eval_plain(*e.rhs, x);
    case Op::kMul:
      return eval_plain(*e.lhs, x) * eval_plain(*e.rhs, x);
    case Op::kDiv: {
      const double r = eval_plain(*e.rhs, x);
      return eval_plain(*e.lhs, x) / (r * r + 1.5);
    }
    case Op::kScale:
      return e.constant * eval_plain(*e.lhs, x);
    case Op::kSqrt: {
      const double l = eval_plain(*e.lhs, x);
      return sqrt(l * l + 0.75);
    }
    case Op::kPow: {
      const double l = eval_plain(*e.lhs, x);
      return pow(l * l + 0.5, e.constant);
    }
    default:
      return 0.0;
  }
}

}  // namespace

class SFadFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(SFadFuzz, AgreesWithDFadAndFiniteDifferences) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> val(0.2, 2.0);
  for (int trial = 0; trial < 20; ++trial) {
    const auto tree = random_expr(rng, 5);
    const double xv[3] = {val(rng), val(rng), val(rng)};

    using Fad3 = ad::SFad<double, 3>;
    const Fad3 xs[3] = {Fad3(xv[0], 0), Fad3(xv[1], 1), Fad3(xv[2], 2)};
    const Fad3 rs = eval(*tree, xs);

    const ad::DFad<double> xd[3] = {{3, 0, xv[0]}, {3, 1, xv[1]}, {3, 2, xv[2]}};
    const ad::DFad<double> rd = eval(*tree, xd);

    EXPECT_NEAR(rs.val(), eval_plain(*tree, xv),
                1e-12 * std::max(1.0, std::abs(rs.val())));
    for (int i = 0; i < 3; ++i) {
      EXPECT_NEAR(rs.dx(i), rd.dx(i),
                  1e-11 * std::max(1.0, std::abs(rs.dx(i))))
          << "SFad vs DFad, dir " << i;
      // Central finite differences.
      const double h = 1e-6 * std::max(1.0, std::abs(xv[i]));
      double xp[3] = {xv[0], xv[1], xv[2]}, xm[3] = {xv[0], xv[1], xv[2]};
      xp[i] += h;
      xm[i] -= h;
      const double fd = (eval_plain(*tree, xp) - eval_plain(*tree, xm)) / (2 * h);
      EXPECT_NEAR(rs.dx(i), fd, 2e-4 * std::max(1.0, std::abs(fd)))
          << "SFad vs FD, dir " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SFadFuzz, ::testing::Values(11u, 22u, 33u, 44u));

// ---- random linear systems: all solvers agree with dense reference ----

namespace {

struct DenseSystem {
  linalg::CrsMatrix A;
  std::vector<std::vector<double>> dense;
  std::vector<double> b;
};

DenseSystem random_dd_system(std::mt19937& rng, std::size_t n, double density) {
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    double offsum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && std::abs(uni(rng)) < density) {
        d[i][j] = uni(rng);
        offsum += std::abs(d[i][j]);
      }
    }
    d[i][i] = offsum + 1.0 + std::abs(uni(rng));  // strict diagonal dominance
  }
  std::vector<std::size_t> rp{0}, cols;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (d[i][j] != 0.0) cols.push_back(j);
    }
    rp.push_back(cols.size());
  }
  linalg::CrsMatrix A(rp, cols);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (d[i][j] != 0.0) A.set(i, j, d[i][j]);
    }
  }
  std::vector<double> b(n);
  for (auto& v : b) v = uni(rng);
  return {std::move(A), std::move(d), std::move(b)};
}

std::vector<double> dense_solve(std::vector<std::vector<double>> a,
                                std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(a[i][k]) > std::abs(a[piv][k])) piv = i;
    }
    std::swap(a[k], a[piv]);
    std::swap(b[k], b[piv]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = a[i][k] / a[k][k];
      for (std::size_t j = k; j < n; ++j) a[i][j] -= f * a[k][j];
      b[i] -= f * b[k];
    }
  }
  std::vector<double> x(n);
  for (std::size_t k = n; k-- > 0;) {
    double acc = b[k];
    for (std::size_t j = k + 1; j < n; ++j) acc -= a[k][j] * x[j];
    x[k] = acc / a[k][k];
  }
  return x;
}

}  // namespace

class SolverFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(SolverFuzz, GmresAndBicgstabMatchDenseLu) {
  std::mt19937 rng(GetParam());
  const auto sys = random_dd_system(rng, 60, 0.15);
  const auto ref = dense_solve(sys.dense, sys.b);

  linalg::Ilu0Preconditioner M;
  M.compute(sys.A);

  std::vector<double> xg, xb;
  const auto rg = linalg::Gmres({1e-12, 2000, 100}).solve(sys.A, M, sys.b, xg);
  const auto rb = linalg::BiCgStab({1e-12, 2000}).solve(sys.A, M, sys.b, xb);
  ASSERT_TRUE(rg.converged);
  ASSERT_TRUE(rb.converged);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(xg[i], ref[i], 1e-8 * std::max(1.0, std::abs(ref[i])));
    EXPECT_NEAR(xb[i], ref[i], 1e-7 * std::max(1.0, std::abs(ref[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverFuzz,
                         ::testing::Values(5u, 17u, 91u, 123u));

// ---- pipelined Krylov: classic and pipelined agree on random systems ----

namespace {

/// Symmetrizes a random diagonally-dominant system into an SPD one: the
/// off-diagonal is averaged with its transpose and the diagonal rebuilt to
/// restore strict dominance (symmetric + strictly DD + positive diagonal
/// => SPD).  The dense mirror is rebuilt alongside for the LU reference.
DenseSystem make_spd(DenseSystem sys) {
  const std::size_t n = sys.b.size();
  auto& d = sys.dense;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double avg = 0.5 * (d[i][j] + d[j][i]);
      d[i][j] = avg;
      d[j][i] = avg;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    double offsum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) offsum += std::abs(d[i][j]);
    }
    d[i][i] = offsum + 1.0;
  }
  std::vector<std::size_t> rp{0}, cols;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (d[i][j] != 0.0) cols.push_back(j);
    }
    rp.push_back(cols.size());
  }
  linalg::CrsMatrix A(rp, cols);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (d[i][j] != 0.0) A.set(i, j, d[i][j]);
    }
  }
  sys.A = std::move(A);
  return sys;
}

}  // namespace

class PipelinedKrylovFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(PipelinedKrylovFuzz, PipeGmresMatchesClassicAndDenseLu) {
  // Random nonsymmetric diagonally-dominant systems: classic and pipelined
  // GMRES must both reproduce the dense LU solution.  Iteration parity is
  // NOT asserted here: ILU0 preconditions these systems almost exactly, so
  // the new Krylov direction is tiny relative to ||w|| and the fused CGS
  // subtraction s - sum h_i^2 cancels catastrophically — the pipelined
  // solver then leans on its guarded restart and may take extra cycles
  // (the documented CGS-vs-MGS robustness tradeoff; curated parity lives
  // in test_krylov on problems above the cancellation floor).  What the
  // fuzz pins is the contract: always a correct solution or a typed
  // breakdown, never a wrong answer and never a runaway.
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 3; ++trial) {
    const std::size_t n = 40 + 20 * static_cast<std::size_t>(trial);
    const auto sys = random_dd_system(rng, n, 0.15);
    const auto ref = dense_solve(sys.dense, sys.b);

    linalg::Ilu0Preconditioner M;
    M.compute(sys.A);
    linalg::GmresConfig gc;
    gc.rel_tol = 1e-10;
    gc.max_iters = 2000;
    gc.restart = 100;

    std::vector<double> xc, xp;
    const auto rc = linalg::Gmres(gc).solve(sys.A, M, sys.b, xc);
    const auto rp = linalg::PipelinedGmres(gc).solve(sys.A, M, sys.b, xp);
    ASSERT_TRUE(rc.converged) << "seed " << GetParam() << " trial " << trial;
    ASSERT_TRUE(rp.converged) << "seed " << GetParam() << " trial " << trial;
    EXPECT_LE(rp.iterations, rc.iterations + 2 * gc.restart);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(xp[i], ref[i], 1e-7 * std::max(1.0, std::abs(ref[i])));
      EXPECT_NEAR(xp[i], xc[i], 1e-7 * std::max(1.0, std::abs(xc[i])));
    }
  }
}

TEST_P(PipelinedKrylovFuzz, PipeCgMatchesClassicOnRandomSpd) {
  // Symmetrized (SPD) versions of the same random systems: Ghysels-style
  // pipelined CG against textbook PCG, both against dense LU.
  std::mt19937 rng(GetParam() + 500);
  for (int trial = 0; trial < 3; ++trial) {
    const std::size_t n = 40 + 20 * static_cast<std::size_t>(trial);
    const auto sys = make_spd(random_dd_system(rng, n, 0.15));
    const auto ref = dense_solve(sys.dense, sys.b);

    linalg::JacobiPreconditioner M;
    M.compute(sys.A);
    const linalg::KrylovConfig kc{1e-10, 2000};

    std::vector<double> xc, xp;
    const auto rc = linalg::ConjugateGradient(kc).solve(sys.A, M, sys.b, xc);
    const auto rp = linalg::PipelinedCg(kc).solve(sys.A, M, sys.b, xp);
    ASSERT_TRUE(rc.converged) << "seed " << GetParam() << " trial " << trial;
    ASSERT_TRUE(rp.converged) << "seed " << GetParam() << " trial " << trial;
    EXPECT_NEAR(static_cast<double>(rc.iterations),
                static_cast<double>(rp.iterations), 2.0);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(xp[i], ref[i], 1e-7 * std::max(1.0, std::abs(ref[i])));
      EXPECT_NEAR(xp[i], xc[i], 1e-7 * std::max(1.0, std::abs(xc[i])));
    }
  }
}

TEST_P(PipelinedKrylovFuzz, NonFiniteInputsReportBreakdownNeverHang) {
  // Poisoned inputs must hit the typed-breakdown guard path on the very
  // first fused reduction — a clean structured failure, never a hang or an
  // iteration to the cap.  Tried with NaN/Inf in the rhs and NaN in the
  // matrix, for both pipelined solvers.
  std::mt19937 rng(GetParam() + 900);
  const double bads[2] = {std::numeric_limits<double>::quiet_NaN(),
                          std::numeric_limits<double>::infinity()};
  for (const double bad : bads) {
    auto sys = make_spd(random_dd_system(rng, 30, 0.2));
    linalg::JacobiPreconditioner Mj;
    Mj.compute(sys.A);
    linalg::Ilu0Preconditioner Mi;
    Mi.compute(sys.A);

    // Poisoned rhs.
    auto b_bad = sys.b;
    b_bad[b_bad.size() / 2] = bad;
    std::vector<double> x;
    auto rg = linalg::PipelinedGmres({1e-10, 50, 30}).solve(sys.A, Mi, b_bad, x);
    EXPECT_TRUE(rg.breakdown);
    EXPECT_FALSE(rg.converged);
    EXPECT_LT(rg.iterations, 2u);
    EXPECT_NE(rg.reason.find("non-finite"), std::string::npos) << rg.reason;
    auto rc = linalg::PipelinedCg({1e-10, 50}).solve(sys.A, Mj, b_bad, x);
    EXPECT_TRUE(rc.breakdown);
    EXPECT_FALSE(rc.converged);
    EXPECT_LT(rc.iterations, 2u);
    EXPECT_NE(rc.reason.find("non-finite"), std::string::npos) << rc.reason;

    // Poisoned matrix entry (preconditioners built from the clean matrix so
    // the poison is only met through the operator apply).
    auto A_bad = sys.A;
    A_bad.set(0, 0, bad);
    rg = linalg::PipelinedGmres({1e-10, 50, 30}).solve(A_bad, Mi, sys.b, x);
    EXPECT_TRUE(rg.breakdown);
    EXPECT_LT(rg.iterations, 2u);
    rc = linalg::PipelinedCg({1e-10, 50}).solve(A_bad, Mj, sys.b, x);
    EXPECT_TRUE(rc.breakdown);
    EXPECT_LT(rc.iterations, 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinedKrylovFuzz,
                         ::testing::Values(9u, 41u, 77u, 202u));

// ---- LinearOperator interface on random systems and directions ----

class OperatorFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(OperatorFuzz, AssembledOperatorIsTransparent) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::size_t> size(4, 120);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  for (int trial = 0; trial < 8; ++trial) {
    // Even sizes: dofs pair into 2x2 blocks for block_diagonal.
    const std::size_t n = size(rng) * 2;
    const auto sys = random_dd_system(rng, n, 0.2);
    const linalg::AssembledOperator op(sys.A);
    ASSERT_EQ(op.rows(), n);
    ASSERT_EQ(op.cols(), n);
    ASSERT_EQ(op.matrix(), &sys.A);

    // apply == CrsMatrix::apply, bitwise (same kernel underneath).
    std::vector<double> x(n), y_op(n), y_mat(n);
    for (auto& v : x) v = uni(rng);
    op.apply(x, y_op);
    sys.A.apply(x, y_mat);
    EXPECT_EQ(y_op, y_mat);

    // Zero direction -> exactly zero.
    std::fill(x.begin(), x.end(), 0.0);
    op.apply(x, y_op);
    for (const double v : y_op) EXPECT_EQ(v, 0.0);

    // Aliased in/out is rejected, not silently corrupted.
    EXPECT_THROW(op.apply(y_op, y_op), Error);

    // diagonal / block_diagonal report the matrix entries.
    std::vector<double> d;
    ASSERT_TRUE(op.diagonal(d));
    ASSERT_EQ(d.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(d[i], sys.dense[i][i]);
    }
    std::vector<double> blocks;
    ASSERT_TRUE(op.block_diagonal(2, blocks));
    ASSERT_EQ(blocks.size(), 2 * n);
    for (std::size_t blk = 0; blk < n / 2; ++blk) {
      for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t c = 0; c < 2; ++c) {
          EXPECT_EQ(blocks[blk * 4 + r * 2 + c],
                    sys.dense[2 * blk + r][2 * blk + c]);
        }
      }
    }
  }
}

TEST_P(OperatorFuzz, OperatorSolveMatchesMatrixSolve) {
  // The CrsMatrix GMRES overload must be a zero-cost shim over the
  // operator path: identical inputs give identical iterates.
  std::mt19937 rng(GetParam() + 1000);
  const auto sys = random_dd_system(rng, 80, 0.15);
  linalg::Ilu0Preconditioner M;
  M.compute(sys.A);
  const linalg::Gmres gmres({1e-12, 2000, 30});

  std::vector<double> x_mat, x_op;
  const auto r_mat = gmres.solve(sys.A, M, sys.b, x_mat);
  const linalg::AssembledOperator op(sys.A);
  const auto r_op =
      gmres.solve(static_cast<const linalg::LinearOperator&>(op), M, sys.b,
                  x_op);
  ASSERT_TRUE(r_mat.converged);
  ASSERT_TRUE(r_op.converged);
  EXPECT_EQ(r_mat.iterations, r_op.iterations);
  EXPECT_EQ(x_mat, x_op);
}

TEST_P(OperatorFuzz, MatrixFreeStokesRandomDirections) {
  // The matrix-free FO Stokes operator on a tiny MMS mesh: random
  // directions reproduce the assembled SpMV (reassociation budget relative
  // to the row magnitude, as pinned in test_operator_equivalence), zero
  // maps to zero, aliasing throws.
  physics::StokesFOConfig cfg;
  cfg.dx_m = 320.0e3;
  cfg.n_layers = 3;
  cfg.mms.enabled = true;
  physics::StokesFOProblem p(cfg);
  const auto U = p.analytic_initial_guess();
  std::vector<double> F;
  auto J = p.create_matrix();
  p.residual_and_jacobian(U, F, J);
  const auto op = p.jacobian_operator(U);

  std::mt19937 rng(GetParam() + 2000);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  const std::size_t n = p.n_dofs();
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> x(n), y_asm(n), y_mf;
    for (auto& v : x) v = uni(rng);
    J.apply(x, y_asm);
    op->apply(x, y_mf);
    for (std::size_t r = 0; r < n; ++r) {
      double s = 0.0;
      for (std::size_t k = J.row_ptr()[r]; k < J.row_ptr()[r + 1]; ++k) {
        s += std::abs(J.values()[k]) * std::abs(x[J.cols()[k]]);
      }
      ASSERT_NEAR(y_asm[r], y_mf[r], 1e-11 * std::max(1.0, s)) << "row " << r;
    }
  }

  std::vector<double> zero(n, 0.0), y;
  op->apply(zero, y);
  for (const double v : y) EXPECT_EQ(v, 0.0);
  EXPECT_THROW(op->apply(zero, zero), Error);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorFuzz,
                         ::testing::Values(7u, 29u, 71u));

// ---- cache-simulator traffic bounds on random traces ----

class CacheFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(CacheFuzz, TrafficBounds) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::uint64_t> addr(0, (1u << 22) - 64);
  std::uniform_int_distribution<int> len(1, 512);
  std::uniform_int_distribution<int> wr(0, 3);

  gpusim::CacheSim cache(256 << 10, 64, 16,
                         gpusim::CacheSim::Replacement::kRandom);
  std::set<std::uint64_t> unique_read_lines;
  std::uint64_t total_bytes = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t a = addr(rng);
    const std::uint64_t l = static_cast<std::uint64_t>(len(rng));
    const bool is_write = wr(rng) == 0;
    cache.access(a, l, is_write);
    total_bytes += ((a + l - 1) / 64 - a / 64 + 1) * 64;
    if (!is_write) {
      for (std::uint64_t line = a / 64; line <= (a + l - 1) / 64; ++line) {
        unique_read_lines.insert(line);
      }
    }
  }
  cache.flush();
  const auto& s = cache.stats();
  // Compulsory misses put a floor under read traffic only for lines never
  // first touched by a full-line write; a loose but valid bound: total HBM
  // traffic never exceeds the probed bytes plus one write-back per probe,
  // and hits+misses account for every probe.
  EXPECT_EQ(s.hits + s.misses, s.line_probes);
  EXPECT_LE(s.hbm_read_bytes, total_bytes);
  EXPECT_LE(s.hbm_write_bytes, total_bytes + cache.capacity_bytes());
  EXPECT_GT(s.misses, 0u);
}

TEST_P(CacheFuzz, LargerCacheNeverReadsMore) {
  // Replay the identical random trace through growing LRU caches: read
  // traffic must be non-increasing (inclusion property of LRU).
  std::mt19937 rng(GetParam() + 7);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> trace;
  std::uniform_int_distribution<std::uint64_t> addr(0, (1u << 18) - 64);
  for (int i = 0; i < 4000; ++i) {
    trace.push_back({addr(rng), 64});
  }
  // Re-visit a working set to create reuse.
  for (int pass = 0; pass < 3; ++pass) {
    for (int i = 0; i < 500; ++i) {
      trace.push_back({static_cast<std::uint64_t>(i) * 64, 64});
    }
  }
  std::uint64_t prev = UINT64_MAX;
  for (std::size_t cap : {16u << 10, 64u << 10, 256u << 10, 1u << 20}) {
    // Fully-associative LRU (ways = lines) has the inclusion property.
    const int ways = static_cast<int>(cap / 64);
    gpusim::CacheSim cache(cap, 64, ways, gpusim::CacheSim::Replacement::kLru);
    for (const auto& [a, l] : trace) cache.access(a, l, false);
    EXPECT_LE(cache.stats().hbm_read_bytes, prev) << "capacity " << cap;
    prev = cache.stats().hbm_read_bytes;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheFuzz, ::testing::Values(3u, 13u, 31u));

// ---- forcing-spec parser fuzz -----------------------------------------
// Random byte soup and random mutations of valid specs: the parser must
// either return a working Forcing or throw mali::Error — never crash,
// never accept a spec whose normalized form fails to re-parse.

class ForcingFuzz : public ::testing::TestWithParam<unsigned> {};

// Bitwise parameter equality across a spec() -> parse round trip: every
// numeric field of the reconstructed forcing carries the exact bit pattern
// of the original (the shortest-round-trip formatter guarantees it).
void expect_forcing_params_bitwise(const mali::timestepping::Forcing& a,
                                   const mali::timestepping::Forcing& b,
                                   const std::string& spec) {
  using namespace mali::timestepping;
  const auto bits = [](double v) {
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof u);
    return u;
  };
  if (const auto* ca = dynamic_cast<const ConstantForcing*>(&a)) {
    const auto* cb = dynamic_cast<const ConstantForcing*>(&b);
    ASSERT_NE(cb, nullptr) << "spec '" << spec << "'";
    EXPECT_EQ(bits(ca->offset()), bits(cb->offset())) << "spec '" << spec << "'";
  } else if (const auto* ra = dynamic_cast<const AnomalyRampForcing*>(&a)) {
    const auto* rb = dynamic_cast<const AnomalyRampForcing*>(&b);
    ASSERT_NE(rb, nullptr) << "spec '" << spec << "'";
    EXPECT_EQ(bits(ra->anomaly()), bits(rb->anomaly())) << spec;
    EXPECT_EQ(bits(ra->start()), bits(rb->start())) << spec;
    EXPECT_EQ(bits(ra->end()), bits(rb->end())) << spec;
  } else if (const auto* ya = dynamic_cast<const YearlyCycleForcing*>(&a)) {
    const auto* yb = dynamic_cast<const YearlyCycleForcing*>(&b);
    ASSERT_NE(yb, nullptr) << "spec '" << spec << "'";
    EXPECT_EQ(bits(ya->amplitude()), bits(yb->amplitude())) << spec;
    EXPECT_EQ(bits(ya->period()), bits(yb->period())) << spec;
    EXPECT_EQ(bits(ya->phase()), bits(yb->phase())) << spec;
  } else {
    FAIL() << "unknown forcing type for spec '" << spec << "'";
  }
}

TEST_P(ForcingFuzz, RandomSpecsNeverCrashAndRoundTripWhenAccepted) {
  std::mt19937 rng(GetParam());
  const mali::mesh::IceGeometry geom;
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789=,.:+-eE ";
  std::uniform_int_distribution<std::size_t> pick(0, alphabet.size() - 1);
  std::uniform_int_distribution<int> len(0, 40);
  const char* stems[] = {"", "constant", "ramp", "cycle", "constant:",
                         "ramp:anomaly=1", "cycle:amplitude=1,period=2"};
  std::uniform_int_distribution<std::size_t> stem(0, std::size(stems) - 1);

  for (int it = 0; it < 500; ++it) {
    std::string spec = stems[stem(rng)];
    const int n = len(rng);
    for (int k = 0; k < n; ++k) spec.push_back(alphabet[pick(rng)]);
    try {
      const auto f = mali::timestepping::make_forcing(spec, geom);
      // Accepted: smb must be finite and the normalized spec re-parses to
      // an identical normalized spec.
      const double s = f->smb(1.0e5, -2.0e5, 3.5);
      EXPECT_TRUE(std::isfinite(s)) << "spec '" << spec << "'";
      const auto g = mali::timestepping::make_forcing(f->spec(), geom);
      EXPECT_EQ(g->spec(), f->spec()) << "spec '" << spec << "'";
      expect_forcing_params_bitwise(*f, *g, spec);
    } catch (const mali::Error&) {
      // Rejected with the typed error: the only acceptable failure mode.
    }
  }
}

TEST_P(ForcingFuzz, RandomParametersRoundTripBitwise) {
  // Forcings built from random double bit patterns (finite ones) must
  // survive parse(f.spec()) with every parameter bit-for-bit intact —
  // the stronger guarantee behind the spec-string equality above.
  std::mt19937_64 rng(GetParam() * 2654435761u + 1);
  const mali::mesh::IceGeometry geom;
  std::uniform_int_distribution<int> kind(0, 2);
  const auto rand_double = [&rng]() {
    for (;;) {
      const std::uint64_t u = rng();
      double v;
      std::memcpy(&v, &u, sizeof v);
      if (std::isfinite(v)) return v;
    }
  };
  for (int it = 0; it < 200; ++it) {
    std::string spec;
    switch (kind(rng)) {
      case 0:
        spec = "constant:offset=" + mali::util::format_double(rand_double());
        break;
      case 1:
        spec = "ramp:anomaly=" + mali::util::format_double(rand_double()) +
               ",start=" + mali::util::format_double(rand_double()) +
               ",end=" + mali::util::format_double(rand_double());
        break;
      default:
        spec = "cycle:amplitude=" + mali::util::format_double(rand_double()) +
               ",period=" +
               mali::util::format_double(std::fabs(rand_double()) + 1.0) +
               ",phase=" + mali::util::format_double(rand_double());
    }
    std::unique_ptr<mali::timestepping::Forcing> f;
    try {
      f = mali::timestepping::make_forcing(spec, geom);
    } catch (const mali::Error&) {
      continue;  // out-of-domain parameter (e.g. non-positive period)
    }
    const auto g = mali::timestepping::make_forcing(f->spec(), geom);
    EXPECT_EQ(g->spec(), f->spec()) << "spec '" << spec << "'";
    expect_forcing_params_bitwise(*f, *g, spec);
  }
}

TEST_P(ForcingFuzz, FormatDoubleRoundTripsRandomBitPatterns) {
  // The shortest-round-trip formatter must reproduce ANY finite double
  // bit-for-bit through strtod, including subnormals and -0.0.
  std::mt19937_64 rng(GetParam() * 0x9E3779B97F4A7C15ull + 3);
  for (int it = 0; it < 5000; ++it) {
    const std::uint64_t u = rng();
    double v;
    std::memcpy(&v, &u, sizeof v);
    if (!std::isfinite(v)) continue;
    const std::string s = mali::util::format_double(v);
    const double back = std::strtod(s.c_str(), nullptr);
    std::uint64_t ub;
    std::memcpy(&ub, &back, sizeof ub);
    EXPECT_EQ(u, ub) << "v=" << v << " formatted '" << s << "'";
  }
  // The signed-zero pair, explicitly.
  EXPECT_EQ(mali::util::format_double(0.0), "0");
  EXPECT_EQ(mali::util::format_double(-0.0), "-0");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForcingFuzz,
                         ::testing::Values(5u, 17u, 29u, 41u));

// ---- SIMD element batching on random perturbed hex geometry ----
//
// The batched fused kernels run the *same* lane-wise arithmetic at every
// width, so widths 2/4/8 (including ragged tails with dead lanes) must match
// the width-1 instantiation to <= 1e-14 per dof on arbitrary well-formed
// inputs — random nodal velocities, random Glen parameters, randomly
// perturbed element geometry, thermal and isothermal viscosity.

namespace simd_fuzz {

constexpr std::size_t kNodes = 8;
constexpr std::size_t kQPs = 8;

struct ChainData {
  std::size_t n_cells = 0;
  pk::View<double, 3> UNodal;    // (Cp, N, 2)
  pk::View<double, 3> coords;    // (Cp, N, 3)
  pk::View<double, 3> ref_grad;  // (Q, N, 3)
  pk::View<double, 2> ref_val;   // (Q, N)
  pk::View<double, 1> qp_weight; // (Q)
  pk::View<double, 3> force;     // (Cp, Q, 2)
  pk::View<double, 2> flow_factor;  // (Cp, Q) only when thermal
  double glen_A = 1.0e-16;
  double glen_n = 3.0;
};

/// Random cells: a translated, half-scaled reference cube per cell with a
/// small per-node perturbation (|delta| <= 0.08 keeps det J positive), plus
/// random velocities / forces / Glen parameters.
inline ChainData make_chain_data(std::mt19937_64& rng, std::size_t n_cells,
                                 bool thermal) {
  ChainData d;
  d.n_cells = n_cells;
  const std::size_t cp = fem::padded_cells(n_cells);
  d.UNodal = pk::View<double, 3>("fuzz_UNodal", cp, kNodes, 2);
  d.coords = pk::View<double, 3>("fuzz_coords", cp, kNodes, 3);
  d.ref_grad = pk::View<double, 3>("fuzz_ref_grad", kQPs, kNodes, 3);
  d.ref_val = pk::View<double, 2>("fuzz_ref_val", kQPs, kNodes);
  d.qp_weight = pk::View<double, 1>("fuzz_qp_weight", kQPs);
  d.force = pk::View<double, 3>("fuzz_force", cp, kQPs, 2);
  if (thermal) {
    d.flow_factor = pk::View<double, 2>("fuzz_flow_factor", cp, kQPs);
  }

  const auto qps = fem::gauss_hex(2);
  for (std::size_t qp = 0; qp < kQPs; ++qp) {
    d.qp_weight(qp) = qps[qp].weight;
    for (std::size_t k = 0; k < kNodes; ++k) {
      const auto g = fem::Hex8Basis::gradient(static_cast<int>(k), qps[qp].xi,
                                              qps[qp].eta, qps[qp].zeta);
      for (int j = 0; j < 3; ++j) d.ref_grad(qp, k, j) = g[j];
      d.ref_val(qp, k) = fem::Hex8Basis::value(static_cast<int>(k), qps[qp].xi,
                                               qps[qp].eta, qps[qp].zeta);
    }
  }

  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  std::uniform_real_distribution<double> log_a(-17.0, -16.0);
  std::uniform_real_distribution<double> exp_n(2.5, 4.0);
  d.glen_A = std::pow(10.0, log_a(rng));
  d.glen_n = exp_n(rng);
  for (std::size_t c = 0; c < cp; ++c) {
    const std::size_t src = std::min(c, n_cells - 1);  // ghost rows replicate
    for (std::size_t k = 0; k < kNodes; ++k) {
      const auto ref = fem::Hex8Basis::node_coord(static_cast<int>(k));
      if (c < n_cells) {
        d.coords(c, k, 0) = 1.25 * static_cast<double>(c) + 0.5 * ref[0] +
                            0.08 * unit(rng);
        d.coords(c, k, 1) = 0.5 * ref[1] + 0.08 * unit(rng);
        d.coords(c, k, 2) = 0.5 * ref[2] + 0.08 * unit(rng);
        d.UNodal(c, k, 0) = 100.0 * unit(rng);
        d.UNodal(c, k, 1) = 100.0 * unit(rng);
      } else {
        for (int j = 0; j < 3; ++j) d.coords(c, k, j) = d.coords(src, k, j);
        for (int v = 0; v < 2; ++v) d.UNodal(c, k, v) = d.UNodal(src, k, v);
      }
    }
    for (std::size_t qp = 0; qp < kQPs; ++qp) {
      if (c < n_cells) {
        d.force(c, qp, 0) = 1.0e3 * unit(rng);
        d.force(c, qp, 1) = 1.0e3 * unit(rng);
        if (thermal) {
          d.flow_factor(c, qp) = 1.0e-17 + 1.0e-16 * std::fabs(unit(rng));
        }
      } else {
        d.force(c, qp, 0) = d.force(src, qp, 0);
        d.force(c, qp, 1) = d.force(src, qp, 1);
        if (thermal) d.flow_factor(c, qp) = d.flow_factor(src, qp);
      }
    }
  }
  return d;
}

template <int W>
pk::View<double, 3> run_chain(const ChainData& d) {
  pk::View<double, 3> out("fuzz_res", fem::padded_cells(d.n_cells), kNodes, 2);
  physics::FusedStokesChainBatched<W> chain;
  chain.UNodal = d.UNodal;
  chain.coords = d.coords;
  chain.ref_grad = d.ref_grad;
  chain.ref_val = d.ref_val;
  chain.qp_weight = d.qp_weight;
  chain.force_passive = d.force;
  chain.flow_factor = d.flow_factor;
  chain.Residual = out;
  chain.glen_A = d.glen_A;
  chain.glen_n = d.glen_n;
  chain.numNodes = kNodes;
  chain.numQPs = kQPs;
  chain.prepare();
  // Exact-n dispatch: widths that do not divide n_cells exercise the
  // masked-tail path (dead lanes compute on zeros, stores are masked).
  pk::parallel_for("fuzz_chain",
                   pk::SimdRangePolicy<W, pk::Serial>(d.n_cells), chain);
  return out;
}

template <int W>
pk::View<double, 3> run_tangent(const ChainData& d, const pk::View<double, 1>& u,
                                const pk::View<double, 1>& x,
                                const pk::View<std::size_t, 2>& cell_nodes) {
  pk::View<double, 3> out("fuzz_tan", fem::padded_cells(d.n_cells), kNodes, 2);
  physics::StokesFOTangentBatched<W> tan;
  tan.cell_nodes = cell_nodes;
  tan.coords = d.coords;
  tan.flow_factor = d.flow_factor;
  tan.U = u;
  tan.X = x;
  tan.ref_grad = d.ref_grad;
  tan.qp_weight = d.qp_weight;
  tan.Tangent = out;
  tan.glen_A = d.glen_A;
  tan.glen_n = d.glen_n;
  tan.numNodes = static_cast<int>(kNodes);
  tan.numQPs = static_cast<int>(kQPs);
  tan.prepare();
  pk::parallel_for("fuzz_tangent",
                   pk::SimdRangePolicy<W, pk::Serial>(d.n_cells), tan);
  return out;
}

inline void expect_match(const pk::View<double, 3>& ref,
                         const pk::View<double, 3>& got, std::size_t n_cells,
                         const char* what) {
  for (std::size_t c = 0; c < n_cells; ++c) {
    for (std::size_t k = 0; k < kNodes; ++k) {
      for (int v = 0; v < 2; ++v) {
        const double r = ref(c, k, v);
        const double g = got(c, k, v);
        const double tol = 1.0e-14 * std::max(1.0, std::fabs(r));
        EXPECT_NEAR(r, g, tol)
            << what << " cell " << c << " node " << k << " comp " << v;
      }
    }
  }
}

}  // namespace simd_fuzz

class SimdFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(SimdFuzz, BatchedResidualMatchesWidthOneOnRandomHexes) {
  std::mt19937_64 rng(GetParam() * 0x9E3779B97F4A7C15ull + 11);
  // Cell counts chosen so every width sees full batches AND ragged tails.
  for (const std::size_t n_cells : {3ul, 8ul, 11ul, 17ul}) {
    for (const bool thermal : {false, true}) {
      const auto d = simd_fuzz::make_chain_data(rng, n_cells, thermal);
      const auto ref = simd_fuzz::run_chain<1>(d);
      simd_fuzz::expect_match(ref, simd_fuzz::run_chain<2>(d), n_cells,
                              thermal ? "resid W=2 thermal" : "resid W=2");
      simd_fuzz::expect_match(ref, simd_fuzz::run_chain<4>(d), n_cells,
                              thermal ? "resid W=4 thermal" : "resid W=4");
      simd_fuzz::expect_match(ref, simd_fuzz::run_chain<8>(d), n_cells,
                              thermal ? "resid W=8 thermal" : "resid W=8");
    }
  }
}

TEST_P(SimdFuzz, BatchedTangentMatchesWidthOneOnRandomHexes) {
  std::mt19937_64 rng(GetParam() * 2654435761u + 7);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  for (const std::size_t n_cells : {5ul, 13ul}) {
    for (const bool thermal : {false, true}) {
      const auto d = simd_fuzz::make_chain_data(rng, n_cells, thermal);
      // Disjoint connectivity: cell c owns nodes [8c, 8c+8), so the global
      // state/direction vectors are a straight reshape of the cell data.
      const std::size_t cp = fem::padded_cells(n_cells);
      pk::View<std::size_t, 2> cell_nodes("fuzz_cell_nodes", cp,
                                          simd_fuzz::kNodes);
      pk::View<double, 1> u("fuzz_u", 2 * n_cells * simd_fuzz::kNodes);
      pk::View<double, 1> x("fuzz_x", 2 * n_cells * simd_fuzz::kNodes);
      for (std::size_t c = 0; c < cp; ++c) {
        const std::size_t src = std::min(c, n_cells - 1);
        for (std::size_t k = 0; k < simd_fuzz::kNodes; ++k) {
          cell_nodes(c, k) = src * simd_fuzz::kNodes + k;
        }
      }
      for (std::size_t i = 0; i < u.extent(0); ++i) {
        u(i) = 100.0 * unit(rng);
        x(i) = unit(rng);
      }
      const auto ref = simd_fuzz::run_tangent<1>(d, u, x, cell_nodes);
      simd_fuzz::expect_match(ref,
                              simd_fuzz::run_tangent<2>(d, u, x, cell_nodes),
                              n_cells, "tangent W=2");
      simd_fuzz::expect_match(ref,
                              simd_fuzz::run_tangent<4>(d, u, x, cell_nodes),
                              n_cells, "tangent W=4");
      simd_fuzz::expect_match(ref,
                              simd_fuzz::run_tangent<8>(d, u, x, cell_nodes),
                              n_cells, "tangent W=8");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdFuzz,
                         ::testing::Values(3u, 19u, 31u, 53u));
