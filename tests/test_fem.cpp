// FEM substrate tests: basis functions, quadrature exactness, geometric
// workset invariants (volumes, gradient consistency), and the DOF map.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>

#include "fem/cell_geometry.hpp"
#include "fem/dof_map.hpp"
#include "fem/hex8.hpp"
#include "fem/quadrature.hpp"
#include "mesh/extruded_mesh.hpp"

using namespace mali;
using fem::Hex8Basis;
using fem::Quad4Basis;

TEST(Hex8, KroneckerPropertyAtNodes) {
  for (int i = 0; i < 8; ++i) {
    const auto ci = Hex8Basis::node_coord(i);
    for (int j = 0; j < 8; ++j) {
      EXPECT_NEAR(Hex8Basis::value(j, ci[0], ci[1], ci[2]), i == j ? 1.0 : 0.0,
                  1e-14);
    }
  }
}

class Hex8RandomPoint : public ::testing::TestWithParam<int> {};

TEST_P(Hex8RandomPoint, PartitionOfUnityAndGradientSum) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  const double xi = dist(rng), eta = dist(rng), zeta = dist(rng);
  double sum = 0.0, gx = 0.0, gy = 0.0, gz = 0.0;
  for (int k = 0; k < 8; ++k) {
    sum += Hex8Basis::value(k, xi, eta, zeta);
    const auto g = Hex8Basis::gradient(k, xi, eta, zeta);
    gx += g[0];
    gy += g[1];
    gz += g[2];
  }
  EXPECT_NEAR(sum, 1.0, 1e-14);
  EXPECT_NEAR(gx, 0.0, 1e-14);
  EXPECT_NEAR(gy, 0.0, 1e-14);
  EXPECT_NEAR(gz, 0.0, 1e-14);
}

TEST_P(Hex8RandomPoint, GradientMatchesFiniteDifference) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 1000);
  std::uniform_real_distribution<double> dist(-0.9, 0.9);
  const double xi = dist(rng), eta = dist(rng), zeta = dist(rng);
  const double h = 1e-6;
  for (int k = 0; k < 8; ++k) {
    const auto g = Hex8Basis::gradient(k, xi, eta, zeta);
    EXPECT_NEAR(g[0],
                (Hex8Basis::value(k, xi + h, eta, zeta) -
                 Hex8Basis::value(k, xi - h, eta, zeta)) /
                    (2 * h),
                1e-8);
    EXPECT_NEAR(g[1],
                (Hex8Basis::value(k, xi, eta + h, zeta) -
                 Hex8Basis::value(k, xi, eta - h, zeta)) /
                    (2 * h),
                1e-8);
    EXPECT_NEAR(g[2],
                (Hex8Basis::value(k, xi, eta, zeta + h) -
                 Hex8Basis::value(k, xi, eta, zeta - h)) /
                    (2 * h),
                1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Hex8RandomPoint, ::testing::Range(0, 8));

TEST(Quad4, PartitionOfUnity) {
  for (double xi = -1.0; xi <= 1.0; xi += 0.4) {
    for (double eta = -1.0; eta <= 1.0; eta += 0.4) {
      double s = 0.0;
      for (int k = 0; k < 4; ++k) s += Quad4Basis::value(k, xi, eta);
      EXPECT_NEAR(s, 1.0, 1e-14);
    }
  }
}

// Gauss quadrature integrates polynomials of degree <= 2n-1 exactly.
class GaussExactness : public ::testing::TestWithParam<int> {};

TEST_P(GaussExactness, Integrates1D) {
  const int n = GetParam();
  const auto g = fem::gauss_1d(n);
  ASSERT_EQ(static_cast<int>(g.size()), n);
  for (int p = 0; p <= 2 * n - 1; ++p) {
    double num = 0.0;
    for (const auto& [x, w] : g) num += w * std::pow(x, p);
    const double exact = (p % 2 == 0) ? 2.0 / (p + 1) : 0.0;
    EXPECT_NEAR(num, exact, 1e-13) << "degree " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussExactness, ::testing::Values(1, 2, 3));

TEST(GaussHex, WeightsSumToVolume) {
  const auto qps = fem::gauss_hex(2);
  ASSERT_EQ(qps.size(), 8u);  // the paper's numQPs
  double w = 0.0;
  for (const auto& q : qps) w += q.weight;
  EXPECT_NEAR(w, 8.0, 1e-13);
}

TEST(GaussHex, IntegratesTrilinearExactly) {
  const auto qps = fem::gauss_hex(2);
  // f = (1+x)(2+y)(3-z): trilinear, exact integral = 2*4*6*... compute:
  // int(1+x) = 2, int(2+y) = 4, int(3-z) = 6 over [-1,1] each.
  double num = 0.0;
  for (const auto& q : qps) {
    num += q.weight * (1 + q.xi) * (2 + q.eta) * (3 - q.zeta);
  }
  EXPECT_NEAR(num, 48.0, 1e-12);
}

// ---- geometry workset on a real extruded mesh ----

class GeometryWorksetTest : public ::testing::Test {
 protected:
  GeometryWorksetTest()
      : base(std::make_shared<mesh::QuadGrid>(geom,
                                              mesh::QuadGridConfig{150.0e3})),
        msh(base, geom, mesh::ExtrudedMeshConfig{4}),
        ws(fem::build_geometry(msh, geom)) {}
  mesh::IceGeometry geom{};
  std::shared_ptr<mesh::QuadGrid> base;
  mesh::ExtrudedMesh msh;
  fem::GeometryWorkset ws;
};

TEST_F(GeometryWorksetTest, Shapes) {
  EXPECT_EQ(ws.n_cells, msh.n_cells());
  EXPECT_EQ(ws.num_nodes, 8);
  EXPECT_EQ(ws.num_qps, 8);
  // Cell-indexed arrays are lane-padded for SIMD batching: the ghost rows
  // replicate the last real cell so full-width pack loads stay in-bounds.
  EXPECT_EQ(ws.n_cells_padded, fem::padded_cells(ws.n_cells));
  EXPECT_EQ(ws.wBF.extent(0), ws.n_cells_padded);
  EXPECT_EQ(ws.wGradBF.extent(3), 3u);
  EXPECT_EQ(ws.n_basal_faces, base->n_cells());
}

TEST_F(GeometryWorksetTest, PositiveJacobians) {
  for (std::size_t c = 0; c < ws.n_cells; ++c) {
    for (int q = 0; q < ws.num_qps; ++q) {
      EXPECT_GT(ws.detJ(c, q), 0.0) << "cell " << c << " qp " << q;
    }
  }
}

TEST_F(GeometryWorksetTest, WbfSumsToCellVolume) {
  // sum_{k,q} wBF = integral of sum_k N_k = cell volume; compare with the
  // column-prism volume dx*dx*(H/layers) within a tolerance for bed slope.
  for (std::size_t c = 0; c < ws.n_cells; c += 13) {
    double vol = 0.0;
    for (int k = 0; k < 8; ++k) {
      for (int q = 0; q < 8; ++q) vol += ws.wBF(c, k, q);
    }
    double detvol = 0.0;
    const auto qps = fem::gauss_hex(2);
    for (int q = 0; q < 8; ++q) detvol += ws.detJ(c, q) * qps[static_cast<std::size_t>(q)].weight;
    EXPECT_NEAR(vol, detvol, 1e-6 * std::abs(detvol));
    EXPECT_GT(vol, 0.0);
  }
}

TEST_F(GeometryWorksetTest, GradientsAnnihilateConstants) {
  // sum_k gradBF(c,k,q,d) = gradient of the constant-1 interpolant = 0.
  for (std::size_t c = 0; c < ws.n_cells; c += 17) {
    for (int q = 0; q < 8; ++q) {
      for (int d = 0; d < 3; ++d) {
        double g = 0.0;
        for (int k = 0; k < 8; ++k) g += ws.gradBF(c, k, q, d);
        EXPECT_NEAR(g, 0.0, 1e-12);
      }
    }
  }
}

TEST_F(GeometryWorksetTest, GradientsReproduceLinearFields) {
  // Interpolating f = a.x should give grad = a at every qp.
  const double a[3] = {0.3, -1.2, 2.5};
  for (std::size_t c = 0; c < ws.n_cells; c += 19) {
    for (int q = 0; q < 8; ++q) {
      double g[3] = {0, 0, 0};
      for (int k = 0; k < 8; ++k) {
        const double f = a[0] * ws.coords(c, k, 0) + a[1] * ws.coords(c, k, 1) +
                         a[2] * ws.coords(c, k, 2);
        for (int d = 0; d < 3; ++d) g[d] += f * ws.gradBF(c, k, q, d);
      }
      for (int d = 0; d < 3; ++d) EXPECT_NEAR(g[d], a[d], 1e-9);
    }
  }
}

TEST_F(GeometryWorksetTest, WGradBFIsWeightedGradBF) {
  const auto qps = fem::gauss_hex(2);
  for (std::size_t c = 0; c < ws.n_cells; c += 23) {
    for (int k = 0; k < 8; ++k) {
      for (int q = 0; q < 8; ++q) {
        const double w = ws.detJ(c, q) * qps[static_cast<std::size_t>(q)].weight;
        for (int d = 0; d < 3; ++d) {
          EXPECT_NEAR(ws.wGradBF(c, k, q, d), ws.gradBF(c, k, q, d) * w,
                      1e-9 * std::abs(w) + 1e-12);
        }
      }
    }
  }
}

TEST_F(GeometryWorksetTest, BasalFaceAreasSumToBaseArea) {
  // Bottom faces tile the (slightly sloped) bed; their areas should be close
  // to n_base_cells * dx^2.
  double area = 0.0;
  for (std::size_t f = 0; f < ws.n_basal_faces; ++f) {
    for (int k = 0; k < 4; ++k) {
      for (int q = 0; q < ws.face_qps; ++q) area += ws.basal_wBF(f, k, q);
    }
  }
  const double flat = static_cast<double>(base->n_cells()) * base->dx() * base->dx();
  EXPECT_NEAR(area / flat, 1.0, 0.02);
}

TEST_F(GeometryWorksetTest, BasalBetaWithinConfiguredRange) {
  for (std::size_t f = 0; f < ws.n_basal_faces; ++f) {
    EXPECT_GE(ws.basal_beta(f), geom.config().beta_stream);
    EXPECT_LE(ws.basal_beta(f), geom.config().beta_interior);
  }
}

// ---- DofMap ----

class DofMapTest : public ::testing::Test {
 protected:
  DofMapTest()
      : base(std::make_shared<mesh::QuadGrid>(geom,
                                              mesh::QuadGridConfig{200.0e3})),
        msh(base, geom, mesh::ExtrudedMeshConfig{3}),
        dofs(msh) {}
  mesh::IceGeometry geom{};
  std::shared_ptr<mesh::QuadGrid> base;
  mesh::ExtrudedMesh msh;
  fem::DofMap dofs;
};

TEST_F(DofMapTest, Counts) {
  EXPECT_EQ(dofs.n_nodes(), msh.n_nodes());
  EXPECT_EQ(dofs.n_dofs(), 2 * msh.n_nodes());
  EXPECT_EQ(dofs.dirichlet_dofs().size(),
            2 * base->n_margin_nodes() * msh.levels());
}

TEST_F(DofMapTest, DirichletFlagsConsistent) {
  for (std::size_t d : dofs.dirichlet_dofs()) EXPECT_TRUE(dofs.is_dirichlet_dof(d));
  std::size_t count = 0;
  for (std::size_t d = 0; d < dofs.n_dofs(); ++d) {
    count += dofs.is_dirichlet_dof(d) ? 1 : 0;
  }
  EXPECT_EQ(count, dofs.dirichlet_dofs().size());
}

TEST_F(DofMapTest, SparsityContainsDiagonalAndIsSymmetricPattern) {
  const auto& rp = dofs.row_ptr();
  const auto& cols = dofs.cols();
  ASSERT_EQ(rp.size(), dofs.n_dofs() + 1);
  auto has = [&](std::size_t r, std::size_t c) {
    for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
      if (cols[k] == c) return true;
    }
    return false;
  };
  for (std::size_t r = 0; r < dofs.n_dofs(); r += 7) {
    EXPECT_TRUE(has(r, r)) << "diagonal missing in row " << r;
    for (std::size_t k = rp[r]; k < rp[r + 1]; k += 5) {
      EXPECT_TRUE(has(cols[k], r)) << "pattern asymmetry";
    }
  }
}

TEST_F(DofMapTest, ColumnsSortedWithinRows) {
  const auto& rp = dofs.row_ptr();
  const auto& cols = dofs.cols();
  for (std::size_t r = 0; r < dofs.n_dofs(); ++r) {
    for (std::size_t k = rp[r] + 1; k < rp[r + 1]; ++k) {
      EXPECT_LT(cols[k - 1], cols[k]);
    }
  }
}

TEST_F(DofMapTest, RowsCoupleBothComponents) {
  // Each node's two dofs have identical column sets.
  const auto& rp = dofs.row_ptr();
  const auto& cols = dofs.cols();
  for (std::size_t n = 0; n < dofs.n_nodes(); n += 11) {
    const std::size_t r0 = fem::DofMap::dof(n, 0);
    const std::size_t r1 = fem::DofMap::dof(n, 1);
    ASSERT_EQ(rp[r0 + 1] - rp[r0], rp[r1 + 1] - rp[r1]);
    for (std::size_t k = 0; k < rp[r0 + 1] - rp[r0]; ++k) {
      EXPECT_EQ(cols[rp[r0] + k], cols[rp[r1] + k]);
    }
  }
}
