// Solver resilience layer, end to end:
//
//   * FaultSpec grammar, kind/site compatibility, and round-trip;
//   * deterministic seeded injection (per-site counters, stable target dof);
//   * guard decorators detect NaN/Inf at every site with the correct typed
//     SolverFault (type, site, first offending dof) and pass clean
//     evaluations through untouched;
//   * the Newton recovery ladder: every fault kind x site x Jacobian mode
//     either recovers (solution within 1e-5 of the clean run) or fails
//     loudly with the matching SolverFault — never a silent NaN;
//   * typed non-finite Newton exits (satellite: no iterating to the cap on
//     NaN), and Krylov non-finite breakdown reporting;
//   * SolverCheckpoint: bit-exact round trip (NaN / -0.0 / denormals) and
//     a readable on-disk mirror of the last good Newton state;
//   * continuation back-stepping: an inner divergence restores the
//     pre-step state and retries at the geometric mean (halved log-space
//     reduction); a retry that also diverges stops the walk early;
//   * the clean path is bit-identical with the ladder armed or not.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "linalg/block_jacobi.hpp"
#include "linalg/gmres.hpp"
#include "linalg/krylov.hpp"
#include "linalg/linear_operator.hpp"
#include "linalg/preconditioner.hpp"
#include "nonlinear/continuation.hpp"
#include "nonlinear/newton.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/comm_fault.hpp"
#include "resilience/fault.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/guards.hpp"
#include "resilience/recovery.hpp"

using namespace mali;
using namespace mali::resilience;
using physics::StokesFOConfig;
using physics::StokesFOProblem;

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

StokesFOConfig mms_config(linalg::JacobianMode mode) {
  StokesFOConfig cfg;
  cfg.dx_m = 250.0e3;
  cfg.n_layers = 4;
  cfg.mms.enabled = true;
  cfg.jacobian = mode;
  return cfg;
}

struct SolveOutcome {
  nonlinear::NewtonResult newton;
  double mean_velocity = 0.0;
};

/// Runs the MMS Newton solve, optionally with injection / guards / the
/// recovery ladder.  Both Jacobian modes use the same 2x2 block-Jacobi
/// preconditioner so outcomes are comparable.
SolveOutcome run_mms(linalg::JacobianMode mode, FaultInjector* injector,
                     bool guards, bool recovery,
                     const std::string& checkpoint_path = "") {
  StokesFOProblem p(mms_config(mode));
  linalg::BlockJacobiPreconditioner M(2);
  nonlinear::NewtonConfig ncfg;
  ncfg.jacobian = mode;
  if (recovery) {
    ncfg.recovery.enabled = true;
    ncfg.recovery.checkpoint_path = checkpoint_path;
    ncfg.recovery.precond_ladder = {
        [] { return std::make_unique<linalg::JacobiPreconditioner>(); },
        [] { return std::make_unique<linalg::BlockJacobiPreconditioner>(2); },
    };
  }
  ncfg.recovery.injector = injector;

  GuardedProblem guarded(p, {}, injector);
  GuardedPreconditioner guarded_M(M, injector);
  nonlinear::NonlinearProblem& prob =
      guards ? static_cast<nonlinear::NonlinearProblem&>(guarded) : p;
  linalg::Preconditioner& precond =
      guards ? static_cast<linalg::Preconditioner&>(guarded_M) : M;

  std::vector<double> U(p.n_dofs(), 0.0);
  SolveOutcome out;
  out.newton = nonlinear::NewtonSolver(ncfg).solve(prob, precond, U);
  out.mean_velocity = p.mean_velocity(U);
  return out;
}

/// Scalar toy problem F(u) = u - parameter (solution u == parameter) whose
/// residual is poisoned with NaN whenever the parameter sits inside
/// (window_lo, window_hi) — the continuation back-step tests walk through
/// that window.
class ScalarProblem : public nonlinear::NonlinearProblem {
 public:
  double parameter = 1.0;
  double window_lo = 0.0, window_hi = 0.0;  ///< empty window by default

  [[nodiscard]] std::size_t n_dofs() const override { return 1; }
  void residual(const std::vector<double>& U,
                std::vector<double>& F) override {
    F.resize(1);
    F[0] = poisoned() ? kNan : U[0] - parameter;
  }
  void residual_and_jacobian(const std::vector<double>& U,
                             std::vector<double>& F,
                             linalg::CrsMatrix& J) override {
    residual(U, F);
    J.set(0, 0, 1.0);
  }
  [[nodiscard]] linalg::CrsMatrix create_matrix() const override {
    return linalg::CrsMatrix({0, 1}, {0});
  }

 private:
  [[nodiscard]] bool poisoned() const {
    return parameter > window_lo && parameter < window_hi;
  }
};

/// F(u) = u with a wrong-sign Jacobian: every Newton direction points
/// uphill, so the line search stalls on every step — the persistent
/// quality trigger that pushes the ladder all the way to the
/// checkpoint-restore rung.
class UphillProblem : public nonlinear::NonlinearProblem {
 public:
  [[nodiscard]] std::size_t n_dofs() const override { return 1; }
  void residual(const std::vector<double>& U,
                std::vector<double>& F) override {
    F.resize(1);
    F[0] = U[0];
  }
  void residual_and_jacobian(const std::vector<double>& U,
                             std::vector<double>& F,
                             linalg::CrsMatrix& J) override {
    residual(U, F);
    J.set(0, 0, -1.0);  // wrong sign on purpose
  }
  [[nodiscard]] linalg::CrsMatrix create_matrix() const override {
    return linalg::CrsMatrix({0, 1}, {0});
  }
};

/// n x n identity-graph operator whose apply output is poisoned at one dof.
class PoisonedOperator : public linalg::LinearOperator {
 public:
  PoisonedOperator(std::size_t n, std::size_t bad_dof, double value)
      : n_(n), bad_(bad_dof), value_(value) {}
  [[nodiscard]] std::size_t rows() const override { return n_; }
  [[nodiscard]] std::size_t cols() const override { return n_; }
  void apply(const std::vector<double>& x,
             std::vector<double>& y) const override {
    y = x;
    y[bad_] = value_;
  }
  [[nodiscard]] const char* name() const override { return "poisoned"; }

 private:
  std::size_t n_, bad_;
  double value_;
};

}  // namespace

// ---------------------------------------------------------------------------
// FaultSpec grammar
// ---------------------------------------------------------------------------

TEST(FaultSpec, ParsesAndRoundTrips) {
  const FaultSpec s = fault_spec_from_string("nan:residual:2");
  EXPECT_EQ(s.kind, FaultKind::kNanPoison);
  EXPECT_EQ(s.site, FaultSite::kResidual);
  EXPECT_EQ(s.at_evaluation, 2u);
  EXPECT_FALSE(s.repeat);
  EXPECT_EQ(to_string(s), "nan:residual:2");

  const FaultSpec r = fault_spec_from_string("inf:operator-apply:5:repeat");
  EXPECT_EQ(r.kind, FaultKind::kInfPoison);
  EXPECT_EQ(r.site, FaultSite::kOperatorApply);
  EXPECT_TRUE(r.repeat);
  EXPECT_EQ(to_string(r), "inf:operator-apply:5:repeat");

  // Evaluation defaults to 0 when omitted.
  EXPECT_EQ(fault_spec_from_string("stagnation:linear-solve").at_evaluation,
            0u);
}

TEST(FaultSpec, RejectsMalformedAndIncompatibleSpecs) {
  EXPECT_THROW(fault_spec_from_string("nan"), Error);
  EXPECT_THROW(fault_spec_from_string("bogus:residual"), Error);
  EXPECT_THROW(fault_spec_from_string("nan:bogus-site"), Error);
  EXPECT_THROW(fault_spec_from_string("nan:residual:1:sometimes"), Error);
  // Kind/site compatibility: poison wants an output site, stagnation wants
  // the linear solve, precond-fail wants preconditioner setup.
  EXPECT_THROW(fault_spec_from_string("nan:linear-solve"), Error);
  EXPECT_THROW(fault_spec_from_string("stagnation:residual"), Error);
  EXPECT_THROW(fault_spec_from_string("precond-fail:jacobian"), Error);
}

// ---------------------------------------------------------------------------
// Deterministic injection
// ---------------------------------------------------------------------------

TEST(FaultInjector, FiresAtTheConfiguredEvaluationOnly) {
  FaultInjector inj(fault_spec_from_string("nan:residual:2"));
  EXPECT_FALSE(inj.fire(FaultSite::kResidual));          // eval 0
  EXPECT_FALSE(inj.fire(FaultSite::kOperatorApply));     // other site
  EXPECT_FALSE(inj.fire(FaultSite::kResidual));          // eval 1
  EXPECT_TRUE(inj.fire(FaultSite::kResidual));           // eval 2 fires
  EXPECT_FALSE(inj.fire(FaultSite::kResidual));          // single-shot
  EXPECT_EQ(inj.fired(), 1);
  EXPECT_EQ(inj.count(FaultSite::kResidual), 4u);
  EXPECT_EQ(inj.count(FaultSite::kOperatorApply), 1u);
  EXPECT_TRUE(std::isnan(inj.poison()));
}

TEST(FaultInjector, RepeatFiresFromTheConfiguredEvaluationOn) {
  FaultInjector inj(fault_spec_from_string("inf:residual:1:repeat"));
  EXPECT_FALSE(inj.fire(FaultSite::kResidual));
  EXPECT_TRUE(inj.fire(FaultSite::kResidual));
  EXPECT_TRUE(inj.fire(FaultSite::kResidual));
  EXPECT_EQ(inj.fired(), 2);
  EXPECT_TRUE(std::isinf(inj.poison()));
}

TEST(FaultInjector, TargetDofIsSeededAndStable) {
  FaultSpec spec = fault_spec_from_string("nan:residual:0");
  const FaultInjector a(spec), b(spec);
  EXPECT_EQ(a.target_dof(1000), b.target_dof(1000));
  EXPECT_LT(a.target_dof(1000), 1000u);
  // A different seed moves the target (with overwhelming probability for
  // this particular pair).
  spec.seed = 12345;
  const FaultInjector c(spec);
  EXPECT_NE(a.target_dof(1000000), c.target_dof(1000000));
}

TEST(FaultInjector, MemberSaltDivergesPerMemberAndKeepsLegacyBits) {
  // The ensemble engine runs many members against the same seed; the
  // member salt must move the fault site between members (otherwise every
  // member of an injected ensemble corrupts the identical dof and the
  // sweep measures one fault, not N).  Member 0 is the un-salted legacy
  // path: its target must be bit-for-bit what a memberless spec produces.
  FaultSpec spec = fault_spec_from_string("nan:residual:0");
  const FaultInjector legacy(spec);
  spec.member = 0;
  const FaultInjector member0(spec);
  for (const std::size_t n : {7u, 1000u, 1000000u}) {
    EXPECT_EQ(legacy.target_dof(n), member0.target_dof(n)) << n;
  }

  // Distinct members must hit distinct dofs somewhere in a large space
  // (equal targets for all of these pairs would mean the salt is dead).
  const std::size_t n = 1000000;
  std::set<std::size_t> targets;
  for (unsigned m = 0; m < 8; ++m) {
    FaultSpec s = fault_spec_from_string("nan:residual:0");
    s.member = m;
    targets.insert(FaultInjector(s).target_dof(n));
  }
  EXPECT_GT(targets.size(), 6u);

  // Salting is deterministic: same member, same target.
  FaultSpec s1 = fault_spec_from_string("nan:residual:0");
  s1.member = 3;
  EXPECT_EQ(FaultInjector(s1).target_dof(n), FaultInjector(s1).target_dof(n));
}

// ---------------------------------------------------------------------------
// Guard decorators
// ---------------------------------------------------------------------------

TEST(Guards, DetectInjectedResidualPoisonWithTypedFault) {
  ScalarProblem p;
  p.parameter = 0.0;
  FaultInjector inj(fault_spec_from_string("nan:residual:0"));
  GuardedProblem guarded(p, {}, &inj);
  std::vector<double> U{1.0}, F;
  try {
    guarded.residual(U, F);
    FAIL() << "guard did not throw";
  } catch (const SolverFaultError& e) {
    EXPECT_EQ(e.fault().type, FaultType::kNonFiniteResidual);
    EXPECT_EQ(e.fault().site, FaultSite::kResidual);
    EXPECT_EQ(e.fault().dof, inj.target_dof(1));
    EXPECT_TRUE(std::isnan(e.fault().value));
    EXPECT_EQ(e.fault().evaluation, 0u);
  }
}

TEST(Guards, DetectOrganicOperatorApplyPoisonAtTheRightDof) {
  auto op = std::make_unique<PoisonedOperator>(8, 5, kInf);
  GuardedOperator guarded(std::move(op), {}, nullptr);
  std::vector<double> x(8, 1.0), y;
  try {
    guarded.apply(x, y);
    FAIL() << "guard did not throw";
  } catch (const SolverFaultError& e) {
    EXPECT_EQ(e.fault().type, FaultType::kNonFiniteOperatorApply);
    EXPECT_EQ(e.fault().site, FaultSite::kOperatorApply);
    EXPECT_EQ(e.fault().dof, 5u);
    EXPECT_TRUE(std::isinf(e.fault().value));
  }
}

TEST(Guards, DetectInjectedJacobianPoison) {
  ScalarProblem p;
  FaultInjector inj(fault_spec_from_string("inf:jacobian:0"));
  GuardedProblem guarded(p, {}, &inj);
  std::vector<double> U{0.5}, F;
  auto J = guarded.create_matrix();
  EXPECT_THROW(guarded.residual_and_jacobian(U, F, J), SolverFaultError);
}

TEST(Guards, BoundCheckRejectsDivergedInput) {
  ScalarProblem p;
  GuardConfig gcfg;
  gcfg.max_solution_norm = 1.0e6;
  GuardedProblem guarded(p, gcfg);
  std::vector<double> U{1.0e7}, F;
  try {
    guarded.residual(U, F);
    FAIL() << "guard did not throw";
  } catch (const SolverFaultError& e) {
    EXPECT_EQ(e.fault().type, FaultType::kSolutionDiverged);
    EXPECT_DOUBLE_EQ(e.fault().value, 1.0e7);
  }
}

TEST(Guards, CleanEvaluationsPassThroughUntouched) {
  ScalarProblem p;
  p.parameter = 2.0;
  GuardedProblem guarded(p);
  std::vector<double> U{5.0}, F_guarded, F_plain;
  guarded.residual(U, F_guarded);
  p.residual(U, F_plain);
  ASSERT_EQ(F_guarded.size(), F_plain.size());
  EXPECT_EQ(F_guarded[0], F_plain[0]);
  EXPECT_EQ(guarded.residual_evaluations(), 1u);
}

// ---------------------------------------------------------------------------
// Typed Newton exits and Krylov breakdown reporting
// ---------------------------------------------------------------------------

TEST(TypedExits, NewtonReturnsTypedFaultOnNonFiniteNormInsteadOfIterating) {
  // Organic NaN with no guards and no recovery: the solver must exit with
  // a typed record immediately, not run to max_iters on garbage.
  ScalarProblem p;
  p.parameter = 1.0e-3;
  p.window_lo = 0.0;
  p.window_hi = 1.0;  // always poisoned
  linalg::JacobiPreconditioner M;
  std::vector<double> U{0.0};
  const auto r =
      nonlinear::NewtonSolver(nonlinear::NewtonConfig{}).solve(p, M, U);
  EXPECT_TRUE(r.faulted);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.fault.type, FaultType::kNonFiniteResidualNorm);
  EXPECT_EQ(r.iterations, 0);
}

TEST(TypedExits, GmresReportsNonFiniteBreakdownInsteadOfConverging) {
  const std::size_t n = 4;
  const PoisonedOperator A(n, 2, kNan);
  linalg::IdentityPreconditioner M;
  std::vector<double> b(n, 1.0), x;
  const linalg::Gmres gmres{linalg::GmresConfig{}};
  const auto r = gmres.solve(A, M, b, x);
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.breakdown);
  EXPECT_NE(r.reason.find("non-finite"), std::string::npos);
  EXPECT_EQ(r.iterations, 0u);  // detected before any Arnoldi work
}

TEST(TypedExits, CgAndBiCgStabReportNonFiniteBreakdown) {
  const std::size_t n = 4;
  const PoisonedOperator A(n, 1, kInf);
  linalg::IdentityPreconditioner M;
  std::vector<double> b(n, 1.0), x;
  const auto cg =
      linalg::ConjugateGradient(linalg::KrylovConfig{}).solve(A, M, b, x);
  EXPECT_TRUE(cg.breakdown);
  EXPECT_FALSE(cg.converged);
  x.clear();
  const auto bi = linalg::BiCgStab(linalg::KrylovConfig{}).solve(A, M, b, x);
  EXPECT_TRUE(bi.breakdown);
  EXPECT_FALSE(bi.converged);
}

// ---------------------------------------------------------------------------
// Recovery matrix: every fault kind x site x Jacobian mode
// ---------------------------------------------------------------------------

namespace {

struct MatrixCase {
  const char* spec;
  linalg::JacobianMode mode;
  bool guard_fault;  ///< detected by a guard (vs the linear-solve site)
};

const MatrixCase kMatrixCases[] = {
    {"nan:residual:2", linalg::JacobianMode::kAssembled, true},
    {"inf:residual:2", linalg::JacobianMode::kAssembled, true},
    {"nan:jacobian:1", linalg::JacobianMode::kAssembled, true},
    {"inf:jacobian:1", linalg::JacobianMode::kAssembled, true},
    {"stagnation:linear-solve:1", linalg::JacobianMode::kAssembled, false},
    {"precond-fail:precond-setup:1", linalg::JacobianMode::kAssembled, true},
    {"nan:residual:2", linalg::JacobianMode::kMatrixFree, true},
    {"inf:residual:2", linalg::JacobianMode::kMatrixFree, true},
    {"nan:operator-apply:3", linalg::JacobianMode::kMatrixFree, true},
    {"inf:operator-apply:3", linalg::JacobianMode::kMatrixFree, true},
    {"stagnation:linear-solve:1", linalg::JacobianMode::kMatrixFree, false},
    {"precond-fail:precond-setup:1", linalg::JacobianMode::kMatrixFree, true},
};

}  // namespace

TEST(RecoveryMatrix, EveryFaultKindAndSiteRecoversToTheCleanSolution) {
  for (const auto mode :
       {linalg::JacobianMode::kAssembled, linalg::JacobianMode::kMatrixFree}) {
    const SolveOutcome clean = run_mms(mode, nullptr, false, false);
    ASSERT_TRUE(clean.newton.converged);
    for (const auto& c : kMatrixCases) {
      if (c.mode != mode) continue;
      SCOPED_TRACE(std::string(c.spec) + " / " + linalg::to_string(mode));
      FaultInjector inj(fault_spec_from_string(c.spec));
      const SolveOutcome hurt = run_mms(mode, &inj, true, true);
      EXPECT_EQ(inj.fired(), 1);
      EXPECT_TRUE(hurt.newton.converged);
      EXPECT_FALSE(hurt.newton.faulted);
      // Recovered to the clean solution within far less than the 1e-5
      // acceptance band.
      EXPECT_NEAR(hurt.mean_velocity / clean.mean_velocity, 1.0, 1e-5);
      // The ladder actually engaged and every attempt is accounted for.
      ASSERT_FALSE(hurt.newton.recovery.empty());
      EXPECT_GE(hurt.newton.recovery.steps_recovered, 1);
      EXPECT_EQ(hurt.newton.recovery.faults_detected, c.guard_fault ? 1 : 0);
      for (const auto& a : hurt.newton.recovery.attempts) {
        EXPECT_TRUE(a.succeeded);
        EXPECT_NE(a.trigger.type, FaultType::kNone);
      }
    }
  }
}

TEST(RecoveryMatrix, TriggerAwareStartRungs) {
  // Stagnation starts at grow-krylov, precond failure at the
  // preconditioner ladder — not at the generic re-damp rung.
  FaultInjector stag(fault_spec_from_string("stagnation:linear-solve:1"));
  const auto r1 =
      run_mms(linalg::JacobianMode::kAssembled, &stag, true, true).newton;
  ASSERT_FALSE(r1.recovery.empty());
  EXPECT_TRUE(r1.recovery.tried(RecoveryRung::kGrowKrylov));
  EXPECT_FALSE(r1.recovery.tried(RecoveryRung::kRedampStep));

  FaultInjector pf(fault_spec_from_string("precond-fail:precond-setup:1"));
  const auto r2 =
      run_mms(linalg::JacobianMode::kAssembled, &pf, true, true).newton;
  ASSERT_FALSE(r2.recovery.empty());
  EXPECT_TRUE(r2.recovery.tried(RecoveryRung::kClimbPreconditioner));
}

TEST(RecoveryMatrix, FailsLoudlyWithoutTheLadder) {
  // Same injected fault, recovery disabled: the typed error must reach the
  // caller — no silent NaN propagation, no recovery on the sly.
  FaultInjector inj(fault_spec_from_string("nan:residual:2"));
  try {
    run_mms(linalg::JacobianMode::kAssembled, &inj, true, false);
    FAIL() << "guard fault did not propagate";
  } catch (const SolverFaultError& e) {
    EXPECT_EQ(e.fault().type, FaultType::kNonFiniteResidual);
    EXPECT_EQ(e.fault().site, FaultSite::kResidual);
  }
}

TEST(RecoveryMatrix, InjectedRunsAreDeterministic) {
  FaultInjector a(fault_spec_from_string("nan:residual:2"));
  FaultInjector b(fault_spec_from_string("nan:residual:2"));
  const auto ra = run_mms(linalg::JacobianMode::kAssembled, &a, true, true);
  const auto rb = run_mms(linalg::JacobianMode::kAssembled, &b, true, true);
  ASSERT_EQ(ra.newton.history.size(), rb.newton.history.size());
  for (std::size_t i = 0; i < ra.newton.history.size(); ++i) {
    EXPECT_EQ(ra.newton.history[i], rb.newton.history[i]) << "step " << i;
  }
  ASSERT_EQ(ra.newton.recovery.size(), rb.newton.recovery.size());
  for (std::size_t i = 0; i < ra.newton.recovery.size(); ++i) {
    EXPECT_EQ(ra.newton.recovery.attempts[i].rung,
              rb.newton.recovery.attempts[i].rung);
    EXPECT_EQ(ra.newton.recovery.attempts[i].trigger.dof,
              rb.newton.recovery.attempts[i].trigger.dof);
  }
  EXPECT_EQ(ra.mean_velocity, rb.mean_velocity);
}

TEST(RecoveryMatrix, InitialResidualFaultIsRetried) {
  // Fire on the very first residual evaluation (newton_step 0): the
  // pre-loop retry loop must absorb it.
  FaultInjector inj(fault_spec_from_string("nan:residual:0"));
  const auto out = run_mms(linalg::JacobianMode::kAssembled, &inj, true, true);
  EXPECT_TRUE(out.newton.converged);
  ASSERT_FALSE(out.newton.recovery.empty());
  EXPECT_EQ(out.newton.recovery.attempts.front().newton_step, 0);
  EXPECT_TRUE(out.newton.recovery.attempts.front().succeeded);
}

TEST(RecoveryLadder, PersistentStallWalksToCheckpointRestore) {
  // A wrong-sign Jacobian stalls the line search on every attempt; the
  // ladder must escalate grow-krylov -> (skipped rungs) -> restore, call
  // on_restore, and finally accept the inexact step when the per-step
  // budget runs out — bounded, logged, no infinite loop.
  UphillProblem p;
  linalg::JacobiPreconditioner M;
  nonlinear::NewtonConfig ncfg;
  ncfg.max_iters = 1;
  ncfg.recovery.enabled = true;
  ncfg.recovery.max_attempts_per_step = 3;
  int restores = 0;
  ncfg.recovery.on_restore = [&](SolverCheckpoint&) { ++restores; };
  std::vector<double> U{1.0};
  const auto r = nonlinear::NewtonSolver(ncfg).solve(p, M, U);
  EXPECT_TRUE(r.line_search_stalled);
  EXPECT_FALSE(r.faulted);
  EXPECT_TRUE(r.recovery.tried(RecoveryRung::kGrowKrylov));
  EXPECT_TRUE(r.recovery.tried(RecoveryRung::kRestoreCheckpoint));
  // Inapplicable rungs were skipped: no preconditioner ladder was
  // configured and the solve is already assembled.
  EXPECT_FALSE(r.recovery.tried(RecoveryRung::kClimbPreconditioner));
  EXPECT_FALSE(r.recovery.tried(RecoveryRung::kAssembledFallback));
  EXPECT_GE(restores, 1);
  EXPECT_LE(static_cast<int>(r.recovery.size()),
            ncfg.recovery.max_attempts_per_step);
}

// ---------------------------------------------------------------------------
// Clean-path bit-identity
// ---------------------------------------------------------------------------

TEST(CleanPath, BitIdenticalWithRecoveryArmedAndWithGuards) {
  const auto base = run_mms(linalg::JacobianMode::kAssembled, nullptr,
                            false, false);
  const auto armed = run_mms(linalg::JacobianMode::kAssembled, nullptr,
                             false, true);
  const auto guarded = run_mms(linalg::JacobianMode::kAssembled, nullptr,
                               true, true);
  ASSERT_EQ(base.newton.history.size(), armed.newton.history.size());
  ASSERT_EQ(base.newton.history.size(), guarded.newton.history.size());
  for (std::size_t i = 0; i < base.newton.history.size(); ++i) {
    EXPECT_EQ(base.newton.history[i], armed.newton.history[i]) << i;
    EXPECT_EQ(base.newton.history[i], guarded.newton.history[i]) << i;
  }
  EXPECT_EQ(base.mean_velocity, armed.mean_velocity);
  EXPECT_EQ(base.mean_velocity, guarded.mean_velocity);
  EXPECT_TRUE(armed.newton.recovery.empty());
  EXPECT_TRUE(guarded.newton.recovery.empty());
  EXPECT_EQ(base.newton.total_linear_iters, armed.newton.total_linear_iters);
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

TEST(Checkpoint, RoundTripsBitExactly) {
  SolverCheckpoint c;
  c.U = {0.0, -0.0, kNan, kInf, -kInf, 5e-324 /* denormal */, 1.0 / 3.0};
  c.residual_norm = 1.23456789e-7;
  c.parameter = 1.0e-10;
  c.newton_step = 5;
  c.valid = true;
  const std::string path = "test_resilience_ckpt.bin";
  c.save(path);
  const SolverCheckpoint r = load_checkpoint(path);
  std::remove(path.c_str());

  ASSERT_TRUE(r.valid);
  ASSERT_EQ(r.U.size(), c.U.size());
  // Bit-exact: memcmp, not ==, so -0.0 and NaN payloads count.
  EXPECT_EQ(std::memcmp(r.U.data(), c.U.data(),
                        c.U.size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&r.residual_norm, &c.residual_norm, sizeof(double)),
            0);
  EXPECT_DOUBLE_EQ(r.parameter, c.parameter);
  EXPECT_EQ(r.newton_step, c.newton_step);
}

TEST(Checkpoint, LoadRejectsMissingAndMalformedFiles) {
  EXPECT_THROW(load_checkpoint("no_such_checkpoint_file.bin"), Error);
  const std::string path = "test_resilience_bad_ckpt.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a checkpoint", f);
  std::fclose(f);
  EXPECT_THROW(load_checkpoint(path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, NewtonMirrorsLastGoodStateToDisk) {
  const std::string path = "test_resilience_newton_ckpt.bin";
  const auto out =
      run_mms(linalg::JacobianMode::kAssembled, nullptr, false, true, path);
  ASSERT_TRUE(out.newton.converged);
  const SolverCheckpoint c = load_checkpoint(path);
  std::remove(path.c_str());
  EXPECT_TRUE(c.valid);
  EXPECT_GT(c.newton_step, 0);
  // The mirrored state is the best accepted iterate: its norm appears in
  // the Newton history verbatim.
  bool found = false;
  for (const double h : out.newton.history) {
    if (std::memcmp(&h, &c.residual_norm, sizeof(double)) == 0) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(c.U.size(),
            StokesFOProblem(mms_config(linalg::JacobianMode::kAssembled))
                .n_dofs());
}

// ---------------------------------------------------------------------------
// Continuation back-stepping
// ---------------------------------------------------------------------------

TEST(ContinuationBackstep, RetriesAtTheGeometricMeanAndFinishes) {
  ScalarProblem p;
  p.window_lo = 8.0e-5;   // the walk's 1e-4 step lands in the window...
  p.window_hi = 2.0e-4;   // ...but the geometric-mean retry (3.16e-4) not
  linalg::JacobiPreconditioner M;
  nonlinear::ContinuationConfig ccfg;
  ccfg.start_parameter = 1.0e-2;
  ccfg.target_parameter = 1.0e-5;
  ccfg.reduction = 0.1;
  std::vector<double> U{0.0};
  const auto r = nonlinear::continuation_solve(
      p, M, [&](double e) { p.parameter = e; }, U, ccfg);

  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.stopped_early);
  EXPECT_EQ(r.backsteps, 1);
  ASSERT_EQ(r.backstep_steps.size(), 1u);
  ASSERT_EQ(r.parameters.size(), r.inner.size());
  // The recorded retry ran at sqrt(last_good * failed) — the halved
  // (log-space) reduction.
  const auto k = static_cast<std::size_t>(r.backstep_steps[0]);
  EXPECT_NEAR(r.parameters[k], std::sqrt(1.0e-3 * 1.0e-4),
              1e-12 * r.parameters[k]);
  EXPECT_DOUBLE_EQ(r.final_parameter, 1.0e-5);
  // The walk ends converged at the target with the physical solution.
  EXPECT_NEAR(U[0], 1.0e-5, 1e-10);
}

TEST(ContinuationBackstep, StopsEarlyWhenTheRetryAlsoDiverges) {
  ScalarProblem p;
  p.window_lo = 5.0e-5;  // swallows both the 1e-4 step and the 3.16e-4
  p.window_hi = 5.0e-4;  // geometric-mean retry
  linalg::JacobiPreconditioner M;
  nonlinear::ContinuationConfig ccfg;
  ccfg.start_parameter = 1.0e-2;
  ccfg.target_parameter = 1.0e-6;
  ccfg.reduction = 0.1;
  std::vector<double> U{0.0};
  const auto r = nonlinear::continuation_solve(
      p, M, [&](double e) { p.parameter = e; }, U, ccfg);

  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.stopped_early);
  EXPECT_EQ(r.backsteps, 1);
  // The problem is left at the last good parameter, with the last good
  // solution restored (the 1e-3 solve's answer, not poisoned garbage).
  EXPECT_DOUBLE_EQ(p.parameter, 1.0e-3);
  EXPECT_TRUE(std::isfinite(U[0]));
  EXPECT_NEAR(U[0], 1.0e-3, 1e-9);
}

TEST(ContinuationBackstep, StopsWithoutRetryWhenTheFirstStepDiverges) {
  ScalarProblem p;
  p.window_lo = 5.0e-3;  // the start parameter itself is poisoned
  p.window_hi = 5.0e-2;
  linalg::JacobiPreconditioner M;
  nonlinear::ContinuationConfig ccfg;
  ccfg.start_parameter = 1.0e-2;
  ccfg.target_parameter = 1.0e-6;
  ccfg.reduction = 0.1;
  std::vector<double> U{0.0};
  const auto r = nonlinear::continuation_solve(
      p, M, [&](double e) { p.parameter = e; }, U, ccfg);
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.stopped_early);
  EXPECT_EQ(r.backsteps, 0);  // nothing good to back-step toward
}

// ---------------------------------------------------------------------------
// RecoveryLog formatting (the CLI failure report)
// ---------------------------------------------------------------------------

TEST(RecoveryLog, ToStringAndTailNameTheRungsAndTriggers) {
  FaultInjector inj(fault_spec_from_string("nan:residual:2"));
  const auto out = run_mms(linalg::JacobianMode::kAssembled, &inj, true, true);
  ASSERT_FALSE(out.newton.recovery.empty());
  const std::string s = out.newton.recovery.to_string();
  EXPECT_NE(s.find("redamp-step"), std::string::npos);
  EXPECT_NE(s.find("non-finite-residual"), std::string::npos);
  EXPECT_FALSE(out.newton.recovery.tail(1).empty());
}

// ---------------------------------------------------------------------------
// Comm-layer fault taxonomy (DESIGN.md §16): the "comm:"-prefixed spec
// grammar, its round-trip, and the deterministic injector.  The legacy
// (un-prefixed) solver grammar must be completely untouched by the
// extension — the CLI dispatches on the prefix.
// ---------------------------------------------------------------------------

TEST(CommFaultSpec, PrefixDispatchSeparatesTheTwoGrammars) {
  EXPECT_TRUE(resilience::is_comm_fault_spec("comm:drop:halo-send"));
  EXPECT_TRUE(resilience::is_comm_fault_spec("comm:corrupt:allreduce:3"));
  EXPECT_FALSE(resilience::is_comm_fault_spec("nan:residual"));
  EXPECT_FALSE(resilience::is_comm_fault_spec("drop:halo-send"));
  EXPECT_FALSE(resilience::is_comm_fault_spec(""));
  // The legacy grammar still parses exactly as before.
  const auto legacy = resilience::fault_spec_from_string("nan:residual:2");
  EXPECT_EQ(legacy.kind, resilience::FaultKind::kNanPoison);
  EXPECT_EQ(legacy.at_evaluation, 2u);
}

TEST(CommFaultSpec, ParsesEveryKindAndSiteAndRoundTrips) {
  const char* kinds[] = {"drop", "corrupt", "delay", "rank-death",
                         "straggler"};
  const char* sites[] = {"halo-send", "halo-recv", "allreduce", "barrier"};
  for (const char* k : kinds) {
    for (const char* s : sites) {
      const std::string text =
          std::string("comm:") + k + ":" + s + ":5";
      const auto spec = resilience::comm_fault_spec_from_string(text);
      EXPECT_EQ(resilience::to_string(spec.kind), std::string(k));
      EXPECT_EQ(resilience::to_string(spec.site), std::string(s));
      EXPECT_EQ(spec.at_evaluation, 5u);
      EXPECT_FALSE(spec.repeat);
      // to_string -> from_string is the identity on the parsed fields.
      const auto again =
          resilience::comm_fault_spec_from_string(resilience::to_string(spec));
      EXPECT_EQ(again.kind, spec.kind);
      EXPECT_EQ(again.site, spec.site);
      EXPECT_EQ(again.at_evaluation, spec.at_evaluation);
      EXPECT_EQ(again.repeat, spec.repeat);
    }
  }
}

TEST(CommFaultSpec, DefaultsAndRepeatTrailer) {
  const auto bare = resilience::comm_fault_spec_from_string("comm:drop:barrier");
  EXPECT_EQ(bare.at_evaluation, 0u);
  EXPECT_FALSE(bare.repeat);
  const auto rep = resilience::comm_fault_spec_from_string(
      "comm:straggler:halo-recv:0:repeat");
  EXPECT_EQ(rep.kind, resilience::CommFaultKind::kStraggler);
  EXPECT_TRUE(rep.repeat);
  EXPECT_EQ(resilience::to_string(rep), "comm:straggler:halo-recv:0:repeat");
}

TEST(CommFaultSpec, MalformedSpecsAreTypedErrors) {
  for (const char* bad :
       {"comm:", "comm:drop", "comm:bogus:halo-send", "comm:drop:bogus",
        "comm:drop:halo-send:1:sometimes", "comm:drop:halo-send:1:repeat:x",
        "nan:residual"}) {
    EXPECT_THROW((void)resilience::comm_fault_spec_from_string(bad),
                 mali::Error)
        << "spec '" << bad << "' must be rejected";
  }
}

TEST(CommFaultInjector, CountsPerSiteAndFiresAtTheConfiguredEvaluation) {
  resilience::CommFaultSpec spec;
  spec.kind = resilience::CommFaultKind::kDrop;
  spec.site = resilience::CommSite::kAllreduce;
  spec.at_evaluation = 2;
  resilience::CommFaultInjector inj(spec);
  // Evaluations of OTHER sites never fire and never advance this site.
  EXPECT_FALSE(inj.fire(resilience::CommSite::kHaloSend));
  EXPECT_FALSE(inj.fire(resilience::CommSite::kBarrier));
  EXPECT_FALSE(inj.fire(resilience::CommSite::kAllreduce));  // eval 0
  EXPECT_FALSE(inj.fire(resilience::CommSite::kAllreduce));  // eval 1
  EXPECT_TRUE(inj.fire(resilience::CommSite::kAllreduce));   // eval 2: fires
  EXPECT_FALSE(inj.fire(resilience::CommSite::kAllreduce));  // one-shot
  EXPECT_EQ(inj.fired(), 1);
  EXPECT_EQ(inj.count(resilience::CommSite::kAllreduce), 4u);
  EXPECT_EQ(inj.count(resilience::CommSite::kHaloSend), 1u);

  resilience::CommFaultSpec rep = spec;
  rep.repeat = true;
  resilience::CommFaultInjector inj2(rep);
  int fired = 0;
  for (int i = 0; i < 6; ++i) {
    if (inj2.fire(resilience::CommSite::kAllreduce)) ++fired;
  }
  EXPECT_EQ(fired, 4) << "repeat fires at every evaluation >= at_evaluation";
}

TEST(CommFaultInjector, VictimChoiceIsStableSeededAndMemberDecorrelated) {
  resilience::CommFaultSpec spec;
  resilience::CommFaultInjector a(spec), b(spec);
  for (const int n : {1, 2, 4, 7, 64}) {
    const int victim = a.target_rank(n);
    EXPECT_EQ(victim, b.target_rank(n)) << "victim must be instance-stable";
    EXPECT_GE(victim, 0);
    EXPECT_LT(victim, n);
  }
  // The member salt decorrelates ensemble members: across a handful of
  // member ids at least one must pick a different victim at 7 ranks.
  const int base = a.target_rank(7);
  bool differs = false;
  for (unsigned m = 1; m <= 8 && !differs; ++m) {
    resilience::CommFaultSpec salted = spec;
    salted.member = m;
    differs = resilience::CommFaultInjector(salted).target_rank(7) != base;
  }
  EXPECT_TRUE(differs);
  // Counting evaluations never moves the victim (stable mid-run).
  (void)a.fire(resilience::CommSite::kAllreduce);
  EXPECT_EQ(a.target_rank(7), base);
}
