// GPU performance-model tests: architecture descriptors, the register-
// allocation/occupancy model (Table II's allocation pattern must reproduce
// exactly), and execution-model invariants.

#include <gtest/gtest.h>

#include "core/kernel_traces.hpp"
#include "core/study.hpp"
#include "gpusim/arch.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/exec_model.hpp"
#include "gpusim/reg_alloc.hpp"
#include "perf/data_movement.hpp"

using namespace mali;
using namespace mali::gpusim;
using core::KernelKind;
using physics::KernelVariant;

TEST(GpuArch, PublishedSpecs) {
  const auto a100 = make_a100();
  EXPECT_NEAR(a100.hbm_bw_bytes_per_s, 1.555e12, 1e10);
  EXPECT_NEAR(a100.fp64_flops, 9.7e12, 1e11);
  EXPECT_EQ(a100.l2_bytes, 40ull << 20);
  EXPECT_EQ(a100.n_sm, 108);
  EXPECT_EQ(a100.warp_size, 32);
  EXPECT_FALSE(a100.has_accum_vgprs);

  const auto gcd = make_mi250x_gcd();
  EXPECT_NEAR(gcd.hbm_bw_bytes_per_s, 1.6e12, 1e10);
  EXPECT_NEAR(gcd.fp64_flops, 23.9e12, 1e11);
  EXPECT_EQ(gcd.l2_bytes, 8ull << 20);
  EXPECT_EQ(gcd.n_sm, 110);
  EXPECT_EQ(gcd.warp_size, 64);
  EXPECT_TRUE(gcd.has_accum_vgprs);
  // "each MI250X GCD provides more than twice peak FLOP rate for FP64,
  // comparable bandwidth" — the paper's architecture comparison.
  EXPECT_GT(gcd.fp64_flops / a100.fp64_flops, 2.0);
  EXPECT_NEAR(gcd.hbm_bw_bytes_per_s / a100.hbm_bw_bytes_per_s, 1.0, 0.1);
}

// ---- Table II register-allocation pattern (exact reproduction) ----

struct Table2Case {
  pk::LaunchConfig launch;
  int jac_arch, jac_accum;
  int res_arch, res_accum;
};

class Table2Alloc : public ::testing::TestWithParam<Table2Case> {};

TEST_P(Table2Alloc, MatchesPaperVgprs) {
  const auto& tc = GetParam();
  const auto gcd = make_mi250x_gcd();
  const auto jac =
      core::kernel_model_info(KernelKind::kJacobian, KernelVariant::kOptimized);
  const auto res =
      core::kernel_model_info(KernelKind::kResidual, KernelVariant::kOptimized);
  const auto lj = model_launch(gcd, tc.launch, jac.default_block_size(gcd),
                               jac.candidates(gcd));
  const auto lr = model_launch(gcd, tc.launch, res.default_block_size(gcd),
                               res.candidates(gcd));
  EXPECT_EQ(lj.alloc.arch_vgprs, tc.jac_arch);
  EXPECT_EQ(lj.alloc.accum_vgprs, tc.jac_accum);
  EXPECT_EQ(lr.alloc.arch_vgprs, tc.res_arch);
  EXPECT_EQ(lr.alloc.accum_vgprs, tc.res_accum);
}

// Paper Table II: Jacobian {arch, accum} and Residual {arch, accum}.
INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table2Alloc,
    ::testing::Values(Table2Case{{}, 128, 0, 84, 4},
                      Table2Case{{128, 2}, 128, 128, 128, 0},
                      Table2Case{{128, 4}, 128, 0, 84, 4},
                      Table2Case{{256, 2}, 128, 128, 128, 0},
                      Table2Case{{1024, 2}, 128, 0, 84, 4}));

TEST(RegAlloc, NvidiaDefaultsUnconstrained) {
  const auto a100 = make_a100();
  EXPECT_EQ(register_budget(a100, {}, 128), 255);
  EXPECT_EQ(register_budget(a100, {256, 2}, 128), 128);
}

TEST(RegAlloc, OccupancyLimitedByRegisters) {
  const auto a100 = make_a100();
  // 255 regs/thread with 128-thread blocks: 65536/(255*128) = 2 blocks.
  const auto l = model_launch(a100, {}, 128, {{255, 0, 0}});
  EXPECT_EQ(l.blocks_per_sm, 2);
  EXPECT_EQ(l.threads_per_sm, 256);
  EXPECT_EQ(l.concurrent_threads, 256 * 108);
}

TEST(RegAlloc, OccupancyLimitedByThreadSlots) {
  const auto a100 = make_a100();
  const auto l = model_launch(a100, {}, 1024, {{32, 0, 0}});
  EXPECT_EQ(l.blocks_per_sm, 2);  // 2048 threads / 1024
  EXPECT_DOUBLE_EQ(l.occupancy, 1.0);
}

TEST(RegAlloc, LaunchConfigBlockSizeOverridesDefault) {
  const auto gcd = make_mi250x_gcd();
  const auto l = model_launch(gcd, {512, 1}, 256, {{64, 0, 0}});
  EXPECT_EQ(l.block_size, 512);
}

// ---- execution-model invariants ----

class ExecModelInvariants : public ::testing::Test {
 protected:
  static constexpr std::size_t kCells = 32768;
  core::OptimizationStudy study{[] {
    core::StudyConfig cfg;
    cfg.n_cells = kCells;
    return cfg;
  }()};
};

TEST_F(ExecModelInvariants, MinBytesMatchesClosedForm) {
  for (auto kind : {KernelKind::kResidual, KernelKind::kJacobian}) {
    const auto sim = study.simulate(study.a100(), kind,
                                    KernelVariant::kOptimized);
    const std::size_t analytic = perf::stokes_fo_resid_min_bytes(
        kCells, 8, 8, core::scalar_bytes(kind));
    EXPECT_EQ(sim.min_bytes, analytic) << core::to_string(kind);
  }
}

TEST_F(ExecModelInvariants, JacobianMovesSixteenXResidualMinimum) {
  const auto jac =
      study.simulate(study.a100(), KernelKind::kJacobian, KernelVariant::kOptimized);
  const auto res =
      study.simulate(study.a100(), KernelKind::kResidual, KernelVariant::kOptimized);
  const double ratio = static_cast<double>(jac.min_bytes) /
                       static_cast<double>(res.min_bytes);
  // "the Jacobian kernel is expected to move 16 times more data" — with the
  // double-typed wBF/wGradBF in the mix the exact ratio is a bit below 17.
  EXPECT_GT(ratio, 4.0);
  EXPECT_LT(ratio, 17.0);
  EXPECT_GT(static_cast<double>(jac.hbm_bytes) /
                static_cast<double>(res.hbm_bytes),
            4.0);
}

TEST_F(ExecModelInvariants, EfficienciesInUnitInterval) {
  for (const auto& arch : study.archs()) {
    for (auto kind : {KernelKind::kResidual, KernelKind::kJacobian}) {
      for (auto v : {KernelVariant::kBaseline, KernelVariant::kOptimized}) {
        const auto s = study.simulate(arch, kind, v);
        EXPECT_GT(s.e_time(), 0.0);
        EXPECT_LE(s.e_time(), 1.0 + 1e-9);
        EXPECT_GT(s.e_dm(), 0.0);
        EXPECT_LE(s.e_dm(), 1.0 + 1e-9);
        EXPECT_GE(s.time_s, s.min_time_s);
        EXPECT_GE(s.hbm_bytes, s.min_bytes);
        EXPECT_LT(s.achieved_bw, arch.hbm_bw_bytes_per_s);
      }
    }
  }
}

TEST_F(ExecModelInvariants, OptimizedBeatsBaselineEverywhere) {
  for (const auto& arch : study.archs()) {
    for (auto kind : {KernelKind::kResidual, KernelKind::kJacobian}) {
      const auto base = study.simulate(arch, kind, KernelVariant::kBaseline);
      const auto opt = study.simulate(arch, kind, KernelVariant::kOptimized,
                                      arch.has_accum_vgprs
                                          ? pk::LaunchConfig{128, 2}
                                          : pk::LaunchConfig{});
      EXPECT_LT(opt.time_s, base.time_s)
          << arch.name << " " << core::to_string(kind);
      EXPECT_LE(opt.hbm_bytes, base.hbm_bytes);
      // The paper's headline: 2x-4x per-kernel speedups.
      const double speedup = base.time_s / opt.time_s;
      EXPECT_GT(speedup, 1.8) << arch.name << " " << core::to_string(kind);
      EXPECT_LT(speedup, 4.5) << arch.name << " " << core::to_string(kind);
    }
  }
}

TEST_F(ExecModelInvariants, OptimizedNearApplicationBound) {
  for (const auto& arch : study.archs()) {
    const auto res = study.simulate(arch, KernelKind::kResidual,
                                    KernelVariant::kOptimized,
                                    arch.has_accum_vgprs
                                        ? pk::LaunchConfig{128, 2}
                                        : pk::LaunchConfig{});
    EXPECT_GT(res.e_dm(), 0.9) << arch.name
                               << ": optimized Residual should achieve "
                                  "near-minimal data movement";
  }
}

TEST_F(ExecModelInvariants, AblationsLieBetweenBaselineAndOptimized) {
  const auto& arch = study.a100();
  const auto base =
      study.simulate(arch, KernelKind::kJacobian, KernelVariant::kBaseline);
  const auto opt =
      study.simulate(arch, KernelKind::kJacobian, KernelVariant::kOptimized);
  for (auto v : {KernelVariant::kLoopOptOnly, KernelVariant::kFusedOnly,
                 KernelVariant::kLocalAccumOnly}) {
    const auto s = study.simulate(arch, KernelKind::kJacobian, v);
    EXPECT_LE(s.time_s, base.time_s * 1.05) << physics::to_string(v);
    EXPECT_GE(s.time_s, opt.time_s * 0.95) << physics::to_string(v);
  }
}

TEST_F(ExecModelInvariants, ScaledSimulationApproximatesFull) {
  core::StudyConfig full_cfg;
  full_cfg.n_cells = kCells;
  full_cfg.sim.scale = 1.0;
  core::StudyConfig scaled_cfg;
  scaled_cfg.n_cells = kCells;
  scaled_cfg.sim.scale = 0.25;
  const core::OptimizationStudy full(full_cfg), scaled(scaled_cfg);
  const auto sf = full.simulate(full.a100(), KernelKind::kResidual,
                                KernelVariant::kBaseline);
  const auto ss = scaled.simulate(scaled.a100(), KernelKind::kResidual,
                                  KernelVariant::kBaseline);
  EXPECT_NEAR(static_cast<double>(ss.hbm_bytes) /
                  static_cast<double>(sf.hbm_bytes),
              1.0, 0.15);
}

TEST_F(ExecModelInvariants, LatencyFloorDominatesTinyKernels) {
  core::StudyConfig cfg;
  cfg.n_cells = 1024;
  const core::OptimizationStudy tiny(cfg);
  const auto s = tiny.simulate(tiny.a100(), KernelKind::kResidual,
                               KernelVariant::kOptimized);
  EXPECT_GE(s.time_s, tiny.a100().kernel_latency_s);
}

TEST_F(ExecModelInvariants, ProfilerCountersRoundTrip) {
  const auto s = study.simulate(study.mi250x_gcd(), KernelKind::kJacobian,
                                KernelVariant::kOptimized);
  const auto c = ProfilerCounters::from_sim(s);
  // The appendix's rocprof formula must reconstruct the modeled bytes
  // (up to 64B transaction rounding).
  EXPECT_NEAR(static_cast<double>(c.rocprof_bytes()),
              static_cast<double>(s.hbm_bytes), 128.0);
  EXPECT_NEAR(static_cast<double>(c.dram_bytes_sum),
              static_cast<double>(s.hbm_bytes), 1.0);
}

TEST(ExecModel, EmptyTraceThrows) {
  TraceRecorder rec;
  const ExecModel model;
  const auto info =
      core::kernel_model_info(KernelKind::kResidual, KernelVariant::kOptimized);
  EXPECT_THROW(model.simulate(make_a100(), rec, info, 100), mali::Error);
}

TEST(GpuArch, PvcExtensionSpecs) {
  const auto pvc = mali::gpusim::make_pvc_stack();
  EXPECT_FALSE(pvc.has_accum_vgprs);
  EXPECT_EQ(pvc.warp_size, 16);               // SIMD16 sub-groups
  EXPECT_GT(pvc.l2_bytes, 100ull << 20);      // the 204 MB Rambo cache
  EXPECT_NEAR(pvc.hbm_bw_bytes_per_s, 1.64e12, 1e10);
  // The huge L2 must absorb the baseline's accumulators: baseline e_DM on
  // PVC far above the GCD's.
  mali::core::StudyConfig cfg;
  cfg.n_cells = 32768;
  const mali::core::OptimizationStudy study(cfg);
  const auto pvc_sim = mali::gpusim::ExecModel(cfg.sim).simulate(
      pvc,
      mali::core::record_kernel_trace(KernelKind::kJacobian,
                                      KernelVariant::kBaseline, cfg.n_cells),
      mali::core::kernel_model_info(KernelKind::kJacobian,
                                    KernelVariant::kBaseline),
      cfg.n_cells);
  const auto gcd_sim = study.simulate(study.mi250x_gcd(),
                                      KernelKind::kJacobian,
                                      KernelVariant::kBaseline);
  EXPECT_GT(pvc_sim.e_dm(), gcd_sim.e_dm() + 0.2);
}
