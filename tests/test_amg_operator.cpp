// Operator-probed semicoarsening AMG (the `amg` ctest tier).
//
// The contract under test: on the manufactured FO Stokes problem the
// colored probing reconstructs the assembled Jacobian entrywise from a
// constant number of matrix-free operator applies; the AMG built on the
// probed matrix preconditions the JFNK Newton run onto the same trajectory
// as the assembled+AMG reference; and the Chebyshev smoother keeps the fine
// level matrix-free without giving up the multigrid iteration counts.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "linalg/chebyshev.hpp"
#include "linalg/gmres.hpp"
#include "linalg/krylov.hpp"
#include "linalg/linear_operator.hpp"
#include "linalg/operator_probing.hpp"
#include "linalg/semicoarsening_amg.hpp"
#include "nonlinear/newton.hpp"
#include "perf/data_movement.hpp"
#include "physics/stokes_fo_problem.hpp"

using namespace mali;
using namespace mali::linalg;
using physics::StokesFOConfig;
using physics::StokesFOProblem;

namespace {

StokesFOConfig mms_config(JacobianMode mode) {
  StokesFOConfig cfg;
  cfg.dx_m = 250.0e3;
  cfg.n_layers = 4;
  cfg.mms.enabled = true;
  cfg.jacobian = mode;
  return cfg;
}

struct SolveOutcome {
  nonlinear::NewtonResult newton;
  double mean_velocity = 0.0;
};

SolveOutcome run_mms_newton(JacobianMode mode, Preconditioner& M) {
  StokesFOProblem p(mms_config(mode));
  nonlinear::NewtonConfig ncfg;
  ncfg.jacobian = mode;
  const nonlinear::NewtonSolver newton(ncfg);
  std::vector<double> U(p.n_dofs(), 0.0);
  SolveOutcome out;
  out.newton = newton.solve(p, M, U);
  out.mean_velocity = p.mean_velocity(U);
  return out;
}

/// Row-wise infinity norm of A (scale for the entrywise comparison: FO
/// Jacobian entries span ~18 orders of magnitude across Dirichlet-scaled
/// rows, so a global tolerance is meaningless).
std::vector<double> row_scales(const CrsMatrix& A) {
  std::vector<double> s(A.n_rows(), 0.0);
  for (std::size_t r = 0; r < A.n_rows(); ++r) {
    for (std::size_t k = A.row_ptr()[r]; k < A.row_ptr()[r + 1]; ++k) {
      s[r] = std::max(s[r], std::abs(A.values()[k]));
    }
    if (s[r] == 0.0) s[r] = 1.0;
  }
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// Probing reconstructs the assembled matrix.
// ---------------------------------------------------------------------------

TEST(OperatorProbing, ProbedMatrixMatchesAssembledOnMms) {
  StokesFOProblem p(mms_config(JacobianMode::kAssembled));
  const auto U = p.analytic_initial_guess();
  std::vector<double> F;
  auto J = p.create_matrix();
  p.residual_and_jacobian(U, F, J);

  const auto op = p.jacobian_operator(U);
  ASSERT_NE(op, nullptr);
  const StructuredProbing probing(p.extrusion_info());
  const CrsMatrix probed = probing.probe(*op);

  ASSERT_EQ(probed.n_rows(), J.n_rows());
  const auto scale = row_scales(J);
  // The matrix-free apply agrees with the assembled SpMV to FP
  // reassociation (DESIGN.md §9); the probe reads the operator exactly, so
  // the entrywise match inherits that budget.
  constexpr double kRelTol = 1e-9;
  // (a) every assembled entry is recovered;
  for (std::size_t r = 0; r < J.n_rows(); ++r) {
    for (std::size_t k = J.row_ptr()[r]; k < J.row_ptr()[r + 1]; ++k) {
      const std::size_t c = J.cols()[k];
      ASSERT_NEAR(probed.get(r, c), J.values()[k], kRelTol * scale[r])
          << "entry (" << r << ", " << c << ")";
    }
  }
  // (b) structural-graph entries outside the assembled sparsity probe to ~0.
  for (std::size_t r = 0; r < probed.n_rows(); ++r) {
    for (std::size_t k = probed.row_ptr()[r]; k < probed.row_ptr()[r + 1];
         ++k) {
      const std::size_t c = probed.cols()[k];
      if (J.get(r, c) == 0.0) {
        ASSERT_LE(std::abs(probed.values()[k]), kRelTol * scale[r])
            << "spurious entry (" << r << ", " << c << ")";
      }
    }
  }
}

TEST(OperatorProbing, ProbeCountIsConstantAndBounded) {
  StokesFOProblem p(mms_config(JacobianMode::kMatrixFree));
  const StructuredProbing probing(p.extrusion_info());
  const auto dpn =
      static_cast<std::size_t>(p.extrusion_info().dofs_per_node);
  EXPECT_LE(probing.n_probes(), 27 * dpn);
  EXPECT_GT(probing.n_probes(), 0u);
  EXPECT_EQ(probing.n_dofs(), p.n_dofs());
}

// ---------------------------------------------------------------------------
// SemicoarseningAmg::compute(const LinearOperator&).
// ---------------------------------------------------------------------------

TEST(AmgOperator, ComputeUnwrapsAssembledOperator) {
  // An operator that wraps a CRS matrix must short-circuit the probing:
  // zero probe applies, and the V-cycle identical to the assembled path.
  StokesFOProblem p(mms_config(JacobianMode::kAssembled));
  const auto U = p.analytic_initial_guess();
  std::vector<double> F;
  auto J = p.create_matrix();
  p.residual_and_jacobian(U, F, J);

  SemicoarseningAmg direct(p.extrusion_info());
  direct.compute(J);
  SemicoarseningAmg wrapped(p.extrusion_info());
  wrapped.compute(AssembledOperator(J));
  EXPECT_EQ(wrapped.probe_applies(), 0u);
  EXPECT_FALSE(wrapped.fine_matrix_free());

  std::vector<double> r(p.n_dofs());
  for (std::size_t i = 0; i < r.size(); ++i) {
    r[i] = std::sin(0.13 * static_cast<double>(i) + 0.5);
  }
  std::vector<double> z1, z2;
  direct.apply(r, z1);
  wrapped.apply(r, z2);
  for (std::size_t i = 0; i < r.size(); ++i) {
    ASSERT_EQ(z1[i], z2[i]) << "dof " << i;
  }
}

TEST(AmgOperator, ProbedHierarchyReportsItsSetupCost) {
  StokesFOProblem p(mms_config(JacobianMode::kMatrixFree));
  const auto U = p.analytic_initial_guess();
  const auto op = p.jacobian_operator(U);
  ASSERT_NE(op, nullptr);

  SemicoarseningAmg amg(p.extrusion_info());
  amg.compute(*op);
  const StructuredProbing probing(p.extrusion_info());
  EXPECT_EQ(amg.probe_applies(), probing.n_probes());
  EXPECT_LE(amg.probe_applies(),
            27 * static_cast<std::size_t>(p.extrusion_info().dofs_per_node));
  // SGS smoother (default config): the fine level runs on the probed
  // matrix, not the live operator.
  EXPECT_FALSE(amg.fine_matrix_free());
  EXPECT_GE(amg.n_levels(), 1u);
  EXPECT_EQ(amg.fine_matrix().n_rows(), p.n_dofs());
}

// ---------------------------------------------------------------------------
// JFNK + probed AMG trajectory == assembled + AMG.
// ---------------------------------------------------------------------------

TEST(AmgOperator, JfnkAmgMatchesAssembledAmgTrajectory) {
  StokesFOProblem probe_src(mms_config(JacobianMode::kAssembled));
  SemicoarseningAmg amg_asm(probe_src.extrusion_info());
  const auto assembled =
      run_mms_newton(JacobianMode::kAssembled, amg_asm);

  SemicoarseningAmg amg_mf(probe_src.extrusion_info());
  const auto mf = run_mms_newton(JacobianMode::kMatrixFree, amg_mf);

  ASSERT_TRUE(assembled.newton.converged);
  ASSERT_TRUE(mf.newton.converged);
  EXPECT_EQ(mf.newton.iterations, assembled.newton.iterations);
  EXPECT_NEAR(mf.mean_velocity / assembled.mean_velocity, 1.0, 1e-8);

  // Acceptance band: GMRES totals within 10% of the assembled reference.
  const auto a = static_cast<double>(assembled.newton.total_linear_iters);
  const auto m = static_cast<double>(mf.newton.total_linear_iters);
  EXPECT_LE(std::abs(m - a), std::max(1.0, 0.10 * a))
      << "assembled " << assembled.newton.total_linear_iters
      << " vs matrix-free " << mf.newton.total_linear_iters;
  EXPECT_EQ(assembled.newton.linear_failures, 0);
  EXPECT_EQ(mf.newton.linear_failures, 0);
}

TEST(AmgOperator, ChebyshevFineLevelStaysMatrixFreeAndConverges) {
  // Force a real multilevel hierarchy (coarse_max_dofs below the fine dof
  // count) so the Chebyshev smoother actually smooths, then check the JFNK
  // run still lands inside the acceptance band.
  AmgConfig acfg;
  acfg.smoother = AmgSmoother::kChebyshev;
  acfg.coarse_max_dofs = 100;

  StokesFOProblem probe_src(mms_config(JacobianMode::kAssembled));
  AmgConfig scfg;  // SGS reference on the same shrunken hierarchy
  scfg.coarse_max_dofs = 100;
  SemicoarseningAmg amg_asm(probe_src.extrusion_info(), scfg);
  const auto assembled =
      run_mms_newton(JacobianMode::kAssembled, amg_asm);

  SemicoarseningAmg amg_cheb(probe_src.extrusion_info(), acfg);
  const auto mf = run_mms_newton(JacobianMode::kMatrixFree, amg_cheb);

  ASSERT_TRUE(assembled.newton.converged);
  ASSERT_TRUE(mf.newton.converged);
  EXPECT_TRUE(amg_cheb.fine_matrix_free())
      << "Chebyshev + probed path must keep level 0 on the live operator";
  EXPECT_EQ(mf.newton.iterations, assembled.newton.iterations);
  EXPECT_NEAR(mf.mean_velocity / assembled.mean_velocity, 1.0, 1e-8);
  // Chebyshev is a different smoother, so iteration counts differ from SGS
  // — but the multigrid quality must hold: no more than a small multiple of
  // the reference, and far below single-level preconditioning.
  EXPECT_LE(mf.newton.total_linear_iters,
            3 * assembled.newton.total_linear_iters + 8);
}

// ---------------------------------------------------------------------------
// Chebyshev smoother in isolation.
// ---------------------------------------------------------------------------

TEST(Chebyshev, PreconditionsSpdSystem) {
  const std::size_t n = 160;
  std::vector<std::size_t> rp{0}, cols;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) cols.push_back(i - 1);
    cols.push_back(i);
    if (i + 1 < n) cols.push_back(i + 1);
    rp.push_back(cols.size());
  }
  CrsMatrix A(rp, cols);
  for (std::size_t i = 0; i < n; ++i) {
    A.set(i, i, 2.5);
    if (i > 0) A.set(i, i - 1, -1.0);
    if (i + 1 < n) A.set(i, i + 1, -1.0);
  }

  ChebyshevSmoother cheb;
  cheb.compute(A);
  EXPECT_GT(cheb.lambda_max(), 0.0);
  EXPECT_GT(cheb.lambda_min(), 0.0);
  EXPECT_LT(cheb.lambda_min(), cheb.lambda_max());

  std::vector<double> b(n), x_cheb, x_id;
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = std::cos(0.21 * static_cast<double>(i));
  }
  const ConjugateGradient cg({1e-10, 2000});
  const auto rc = cg.solve(A, cheb, b, x_cheb);
  IdentityPreconditioner id;
  const auto ri = cg.solve(A, id, b, x_id);
  ASSERT_TRUE(rc.converged);
  ASSERT_TRUE(ri.converged);
  EXPECT_LT(rc.iterations, ri.iterations)
      << "a degree-3 Chebyshev application must beat no preconditioning";
}

TEST(Chebyshev, OperatorPathMatchesAssembledPath) {
  const std::size_t n = 40;
  std::vector<std::size_t> rp(n + 1), cols(n);
  for (std::size_t i = 0; i < n; ++i) {
    rp[i + 1] = i + 1;
    cols[i] = i;
  }
  CrsMatrix A(rp, cols);
  for (std::size_t i = 0; i < n; ++i) {
    A.set(i, i, 1.0 + static_cast<double>(i % 5));
  }

  ChebyshevSmoother assembled;
  assembled.compute(A);
  ChebyshevSmoother wrapped;
  wrapped.compute(AssembledOperator(A));

  std::vector<double> r(n), z1, z2;
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = std::sin(static_cast<double>(i));
  }
  assembled.apply(r, z1);
  wrapped.apply(r, z2);
  for (std::size_t i = 0; i < n; ++i) ASSERT_DOUBLE_EQ(z1[i], z2[i]);
}

// ---------------------------------------------------------------------------
// perf::AmgCycleModel sanity.
// ---------------------------------------------------------------------------

TEST(AmgCycleModel, ProbeSetupAndVcycleBytesAreConsistent) {
  perf::AmgCycleModel m;
  m.fine_apply_bytes = 1'000'000;
  m.probe_applies = 54;
  m.level_rows = {10000, 2500, 640};
  m.level_nnz = {270000, 67000, 17000};

  // Assembled/SGS mode: no probe applies, fine level streams its matrix.
  perf::AmgCycleModel assembled = m;
  assembled.probe_applies = 0;
  assembled.fine_matrix_free = false;
  EXPECT_EQ(assembled.setup_bytes(),
            assembled.level_stream_bytes(0) + assembled.level_stream_bytes(1) +
                assembled.level_stream_bytes(2));
  EXPECT_GT(assembled.vcycle_bytes(), 0u);

  // Probed/Chebyshev mode: setup pays the probe applies; the fine level's
  // smoother work goes through the operator apply.
  perf::AmgCycleModel probed = m;
  probed.fine_matrix_free = true;
  EXPECT_EQ(probed.setup_bytes(),
            54 * m.fine_apply_bytes + probed.level_stream_bytes(0) +
                probed.level_stream_bytes(1) + probed.level_stream_bytes(2));
  // The fine-level smoother bytes must reference the operator apply, not
  // the CRS stream.
  EXPECT_EQ(probed.smoother_bytes(0),
            static_cast<std::size_t>(probed.cheb_degree) * m.fine_apply_bytes +
                3 * m.level_rows[0] * sizeof(double));
  EXPECT_EQ(probed.residual_bytes(0), m.fine_apply_bytes);
  EXPECT_EQ(probed.residual_bytes(1), probed.level_stream_bytes(1));
}
