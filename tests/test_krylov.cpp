// Tests for the additional Krylov solvers (CG, BiCGStab) and the 2x2
// block-Jacobi preconditioner, including cross-solver agreement on the real
// ice-sheet Jacobian.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/block_jacobi.hpp"
#include "linalg/gmres.hpp"
#include "linalg/krylov.hpp"
#include "linalg/pipelined_krylov.hpp"
#include "linalg/semicoarsening_amg.hpp"
#include "physics/stokes_fo_problem.hpp"

using namespace mali::linalg;

namespace {

CrsMatrix spd_laplacian(std::size_t n) {
  std::vector<std::size_t> rp{0}, cols;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) cols.push_back(i - 1);
    cols.push_back(i);
    if (i + 1 < n) cols.push_back(i + 1);
    rp.push_back(cols.size());
  }
  CrsMatrix A(rp, cols);
  for (std::size_t i = 0; i < n; ++i) {
    A.set(i, i, 2.1);
    if (i > 0) A.set(i, i - 1, -1.0);
    if (i + 1 < n) A.set(i, i + 1, -1.0);
  }
  return A;
}

std::vector<double> rand_vec(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(-1, 1);
  std::vector<double> v(n);
  for (auto& x : v) x = d(rng);
  return v;
}

double rel_res(const CrsMatrix& A, const std::vector<double>& x,
               const std::vector<double>& b) {
  std::vector<double> r;
  A.apply(x, r);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
  return norm2(r) / norm2(b);
}

/// The nonsymmetric convection-skew tridiagonal the BiCgStab test uses.
CrsMatrix convection_matrix(std::size_t n) {
  std::vector<std::size_t> rp{0}, cols;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) cols.push_back(i - 1);
    cols.push_back(i);
    if (i + 1 < n) cols.push_back(i + 1);
    rp.push_back(cols.size());
  }
  CrsMatrix A(rp, cols);
  for (std::size_t i = 0; i < n; ++i) {
    A.set(i, i, 2.4);
    if (i > 0) A.set(i, i - 1, -1.4);
    if (i + 1 < n) A.set(i, i + 1, -0.6);
  }
  return A;
}

/// Serial inner product that counts its reductions — the unit-level stand-in
/// for the distributed communicator's collective counter.  One dot/norm is
/// one scalar reduction; one dot_batch (and one post/finish pair, which
/// routes through dot_batch) is ONE batched reduction regardless of width.
class CountingInnerProduct final : public InnerProduct {
 public:
  [[nodiscard]] double dot(const std::vector<double>& x,
                           const std::vector<double>& y) const override {
    ++scalar_reductions;
    return mali::linalg::dot(x, y);
  }
  void dot_batch(const std::vector<DotPair>& pairs,
                 std::vector<double>& out) const override {
    ++batched_reductions;
    out.resize(pairs.size());
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      out[k] = mali::linalg::dot(*pairs[k].x, *pairs[k].y);
    }
  }
  mutable std::size_t scalar_reductions = 0;
  mutable std::size_t batched_reductions = 0;
};

}  // namespace

TEST(ConjugateGradient, SolvesSpdSystem) {
  auto A = spd_laplacian(200);
  JacobiPreconditioner M;
  M.compute(A);
  const auto b = rand_vec(200, 1);
  std::vector<double> x;
  const auto r = ConjugateGradient({1e-10, 2000}).solve(A, M, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(rel_res(A, x, b), 1e-9);
}

TEST(ConjugateGradient, ZeroRhs) {
  auto A = spd_laplacian(10);
  IdentityPreconditioner M;
  std::vector<double> b(10, 0.0), x(10, 3.0);
  const auto r = ConjugateGradient().solve(A, M, b, x);
  EXPECT_TRUE(r.converged);
  for (double v : x) EXPECT_EQ(v, 0.0);
}

TEST(ConjugateGradient, FiniteTerminationOnSmallSystem) {
  // Exact-arithmetic CG terminates in at most n iterations.
  auto A = spd_laplacian(12);
  IdentityPreconditioner M;
  const auto b = rand_vec(12, 3);
  std::vector<double> x;
  const auto r = ConjugateGradient({1e-12, 50}).solve(A, M, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 13u);
}

// An indefinite operator must NOT abort the run: the solver reports the
// breakdown (p^T A p <= 0) through the result and returns the true residual
// of whatever iterate it had.  (test_krylov_failures exercises the full
// failure-contract matrix.)
TEST(ConjugateGradient, ReportsBreakdownOnIndefiniteMatrix) {
  std::vector<std::size_t> rp{0, 1, 2}, cols{0, 1};
  CrsMatrix A(rp, cols);
  A.set(0, 0, 1.0);
  A.set(1, 1, -1.0);  // indefinite
  IdentityPreconditioner M;
  std::vector<double> b = {1.0, 1.0}, x;
  KrylovResult r;
  EXPECT_NO_THROW(r = ConjugateGradient().solve(A, M, b, x));
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.breakdown);
  EXPECT_FALSE(r.reason.empty());
  // The reported residual is the true ||b - A x|| / ||b|| at exit.
  std::vector<double> Ax;
  A.apply(x, Ax);
  const double true_rel =
      std::hypot(b[0] - Ax[0], b[1] - Ax[1]) / std::hypot(b[0], b[1]);
  EXPECT_NEAR(r.rel_residual, true_rel, 1e-14);
}

TEST(BiCgStab, SolvesNonsymmetricSystem) {
  const std::size_t n = 150;
  std::vector<std::size_t> rp{0}, cols;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) cols.push_back(i - 1);
    cols.push_back(i);
    if (i + 1 < n) cols.push_back(i + 1);
    rp.push_back(cols.size());
  }
  CrsMatrix A(rp, cols);
  for (std::size_t i = 0; i < n; ++i) {
    A.set(i, i, 2.4);
    if (i > 0) A.set(i, i - 1, -1.4);   // convection skew
    if (i + 1 < n) A.set(i, i + 1, -0.6);
  }
  Ilu0Preconditioner M;
  M.compute(A);
  const auto b = rand_vec(n, 5);
  std::vector<double> x;
  const auto r = BiCgStab({1e-10, 2000}).solve(A, M, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(rel_res(A, x, b), 1e-8);
}

TEST(BlockJacobi, InvertsBlockDiagonalExactly) {
  // A block-diagonal matrix is solved exactly in one application.
  const std::size_t nb = 20;
  std::vector<std::size_t> rp{0}, cols;
  for (std::size_t b = 0; b < nb; ++b) {
    for (int i = 0; i < 2; ++i) {
      cols.push_back(2 * b);
      cols.push_back(2 * b + 1);
      rp.push_back(cols.size());
    }
  }
  CrsMatrix A(rp, cols);
  std::mt19937 rng(9);
  std::uniform_real_distribution<double> d(-1, 1);
  for (std::size_t b = 0; b < nb; ++b) {
    const double a11 = 3.0 + d(rng), a12 = d(rng), a21 = d(rng),
                 a22 = 3.0 + d(rng);
    A.set(2 * b, 2 * b, a11);
    A.set(2 * b, 2 * b + 1, a12);
    A.set(2 * b + 1, 2 * b, a21);
    A.set(2 * b + 1, 2 * b + 1, a22);
  }
  BlockJacobiPreconditioner M(2);
  M.compute(A);
  const auto bvec = rand_vec(2 * nb, 17);
  std::vector<double> z;
  M.apply(bvec, z);
  EXPECT_LT(rel_res(A, z, bvec), 1e-12);
}

TEST(BlockJacobi, RejectsMismatchedSize) {
  auto A = spd_laplacian(5);
  BlockJacobiPreconditioner M(2);
  EXPECT_THROW(M.compute(A), mali::Error);
}

TEST(BlockJacobi, BeatsPointJacobiOnVelocityJacobian) {
  mali::physics::StokesFOConfig cfg;
  cfg.dx_m = 250.0e3;
  cfg.n_layers = 4;
  mali::physics::StokesFOProblem p(cfg);
  const auto U = p.analytic_initial_guess();
  std::vector<double> F;
  auto J = p.create_matrix();
  p.residual_and_jacobian(U, F, J);

  GmresConfig gc;
  gc.rel_tol = 1e-6;
  gc.max_iters = 3000;
  gc.restart = 150;
  const Gmres gmres(gc);

  JacobiPreconditioner pj;
  pj.compute(J);
  std::vector<double> x1;
  const auto r1 = gmres.solve(J, pj, F, x1);

  BlockJacobiPreconditioner bj(2);
  bj.compute(J);
  std::vector<double> x2;
  const auto r2 = gmres.solve(J, bj, F, x2);

  EXPECT_TRUE(r2.converged);
  EXPECT_LE(r2.iterations, r1.iterations)
      << "2x2 nodal blocks capture the u-v coupling";
}

// ---------------------------------------------------------------------------
// Pipelined-vs-classic equivalence battery: the pipelined solvers are
// mathematically the same iterations (classical instead of modified
// Gram-Schmidt in GMRES; rearranged-but-equivalent recurrences in CG), so
// on the same matrices they must match the classic solvers to rounding —
// iteration parity within +/-2 and residual agreement <= 1e-10.
// ---------------------------------------------------------------------------

TEST(PipelinedKrylov, PipeCgMatchesClassicOnSpdSystem) {
  auto A = spd_laplacian(200);
  JacobiPreconditioner M;
  M.compute(A);
  const auto b = rand_vec(200, 1);
  const KrylovConfig kc{1e-10, 2000};
  std::vector<double> xc, xp;
  const auto rc = ConjugateGradient(kc).solve(A, M, b, xc);
  const auto rp = PipelinedCg(kc).solve(A, M, b, xp);
  ASSERT_TRUE(rc.converged);
  ASSERT_TRUE(rp.converged);
  EXPECT_NEAR(static_cast<double>(rc.iterations),
              static_cast<double>(rp.iterations), 2.0);
  EXPECT_LT(std::abs(rc.rel_residual - rp.rel_residual), 1e-10);
  EXPECT_LT(rel_res(A, xp, b), 1e-9);
  for (std::size_t i = 0; i < xc.size(); ++i) {
    EXPECT_NEAR(xc[i], xp[i], 1e-8);
  }
}

TEST(PipelinedKrylov, PipeGmresMatchesClassicOnConvectionSystem) {
  const std::size_t n = 150;
  auto A = convection_matrix(n);
  Ilu0Preconditioner M;
  M.compute(A);
  const auto b = rand_vec(n, 5);
  GmresConfig gc;
  gc.rel_tol = 1e-10;
  gc.max_iters = 2000;
  gc.restart = 100;
  std::vector<double> xc, xp;
  const auto rc = Gmres(gc).solve(A, M, b, xc);
  const auto rp = PipelinedGmres(gc).solve(A, M, b, xp);
  ASSERT_TRUE(rc.converged);
  ASSERT_TRUE(rp.converged);
  EXPECT_NEAR(static_cast<double>(rc.iterations),
              static_cast<double>(rp.iterations), 2.0);
  EXPECT_LT(std::abs(rc.rel_residual - rp.rel_residual), 1e-10);
  EXPECT_LT(rel_res(A, xp, b), 1e-9);
}

TEST(PipelinedKrylov, PipeGmresMatchesClassicOnIceJacobian) {
  mali::physics::StokesFOConfig cfg;
  cfg.dx_m = 250.0e3;
  cfg.n_layers = 4;
  mali::physics::StokesFOProblem p(cfg);
  const auto U = p.analytic_initial_guess();
  std::vector<double> F;
  auto J = p.create_matrix();
  p.residual_and_jacobian(U, F, J);

  SemicoarseningAmg amg(p.extrusion_info());
  amg.compute(J);

  GmresConfig gc;
  gc.rel_tol = 1e-10;
  gc.max_iters = 3000;
  gc.restart = 200;
  std::vector<double> xc, xp;
  const auto rc = Gmres(gc).solve(J, amg, F, xc);
  const auto rp = PipelinedGmres(gc).solve(J, amg, F, xp);
  ASSERT_TRUE(rc.converged);
  ASSERT_TRUE(rp.converged);
  EXPECT_NEAR(static_cast<double>(rc.iterations),
              static_cast<double>(rp.iterations), 2.0);
  EXPECT_LT(std::abs(rc.rel_residual - rp.rel_residual), 1e-10);
  double diff = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < xc.size(); ++i) {
    diff += (xc[i] - xp[i]) * (xc[i] - xp[i]);
    norm += xc[i] * xc[i];
  }
  EXPECT_LT(std::sqrt(diff / norm), 1e-6);
}

// The headline contract, pinned at the unit level with a counting inner
// product (the dist tests pin the same invariant against the communicator's
// collective counter): pipelined GMRES issues exactly ONE batched reduction
// per Arnoldi iteration, while the classic solver issues j+3 scalar
// reductions at step j.  Cycle constants: ||b||, the restart residual norm,
// and the true-residual confirm are scalar norms in both solvers.
TEST(PipelinedKrylov, OneFusedReductionPerGmresIteration) {
  const std::size_t n = 150;
  auto A = convection_matrix(n);
  Ilu0Preconditioner M;
  M.compute(A);
  const auto b = rand_vec(n, 5);
  GmresConfig gc;
  gc.rel_tol = 1e-10;
  gc.max_iters = 2000;
  gc.restart = 100;  // single cycle for the count formulas below

  CountingInnerProduct count;
  gc.inner = &count;
  std::vector<double> x;
  const auto rp = PipelinedGmres(gc).solve(A, M, b, x);
  ASSERT_TRUE(rp.converged);
  ASSERT_LE(rp.iterations, gc.restart);  // formulas assume one cycle
  EXPECT_EQ(count.batched_reductions, rp.iterations);
  EXPECT_EQ(count.scalar_reductions, 3u);  // ||b|| + cycle norm + confirm

  CountingInnerProduct count_classic;
  gc.inner = &count_classic;
  std::vector<double> xc;
  const auto rc = Gmres(gc).solve(A, M, b, xc);
  ASSERT_TRUE(rc.converged);
  ASSERT_LE(rc.iterations, gc.restart);
  EXPECT_EQ(count_classic.batched_reductions, 0u);
  // sum_{j=0}^{it-1} (j+3) per-iteration reductions + the 3 cycle norms.
  const std::size_t it = rc.iterations;
  EXPECT_EQ(count_classic.scalar_reductions, it * (it + 5) / 2 + 3);
}

TEST(PipelinedKrylov, OneFusedReductionPerCgIteration) {
  auto A = spd_laplacian(200);
  JacobiPreconditioner M;
  M.compute(A);
  const auto b = rand_vec(200, 1);
  KrylovConfig kc{1e-10, 2000};
  CountingInnerProduct count;
  kc.inner = &count;
  std::vector<double> x;
  const auto r = PipelinedCg(kc).solve(A, M, b, x);
  ASSERT_TRUE(r.converged);
  // One fused batch per update pass, plus the final pass that detects
  // convergence at the top of the loop before updating.
  EXPECT_EQ(count.batched_reductions, r.iterations + 1);
  EXPECT_EQ(count.scalar_reductions, 2u);  // ||b|| + true-residual confirm
}

TEST(CrossSolver, GmresBicgstabAmgAgreeOnIceJacobian) {
  mali::physics::StokesFOConfig cfg;
  cfg.dx_m = 250.0e3;
  cfg.n_layers = 4;
  mali::physics::StokesFOProblem p(cfg);
  const auto U = p.analytic_initial_guess();
  std::vector<double> F;
  auto J = p.create_matrix();
  p.residual_and_jacobian(U, F, J);

  SemicoarseningAmg amg(p.extrusion_info());
  amg.compute(J);

  std::vector<double> xg, xb;
  const auto rg = Gmres({1e-10, 3000, 200}).solve(J, amg, F, xg);
  const auto rb = BiCgStab({1e-10, 3000}).solve(J, amg, F, xb);
  ASSERT_TRUE(rg.converged);
  ASSERT_TRUE(rb.converged);
  double diff = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < xg.size(); ++i) {
    diff += (xg[i] - xb[i]) * (xg[i] - xb[i]);
    norm += xg[i] * xg[i];
  }
  EXPECT_LT(std::sqrt(diff / norm), 1e-6);
}
