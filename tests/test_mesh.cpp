// Mesh substrate tests: synthetic Antarctica geometry properties, quad base
// grid invariants, and extruded hexahedral mesh topology.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "mesh/extruded_mesh.hpp"
#include "mesh/ice_geometry.hpp"
#include "mesh/quad_grid.hpp"

using namespace mali::mesh;

TEST(IceGeometry, ThickAtCenterZeroOutside) {
  IceGeometry g;
  EXPECT_NEAR(g.thickness(0, 0), g.config().center_thickness_m, 1.0);
  const double far = 3.0 * g.config().radius_m;
  EXPECT_EQ(g.thickness(far, far), 0.0);
  EXPECT_FALSE(g.has_ice(far, 0.0));
  EXPECT_TRUE(g.has_ice(0.0, 0.0));
}

TEST(IceGeometry, VialovProfileDecreasesOutward) {
  IceGeometry g;
  double prev = g.thickness(0, 0);
  for (double r = 0.1; r <= 0.9; r += 0.1) {
    const double h = g.thickness(r * g.config().radius_m * 0.8, 0.0);
    EXPECT_LE(h, prev + 1e-9) << "at r=" << r;
    prev = h;
  }
}

TEST(IceGeometry, MinThicknessFloorInsideMask) {
  IceGeometry g;
  // Just inside the margin the cliff floor applies.
  const double theta = 0.3;
  const double L = g.extent(theta);
  const double x = 0.999 * L * std::cos(theta);
  const double y = 0.999 * L * std::sin(theta);
  ASSERT_TRUE(g.has_ice(x, y));
  EXPECT_GE(g.thickness(x, y), g.config().min_thickness_m);
}

TEST(IceGeometry, SurfaceIsBedPlusThickness) {
  IceGeometry g;
  const double x = 2.0e5, y = -1.5e5;
  EXPECT_DOUBLE_EQ(g.surface(x, y), g.bed(x, y) + g.thickness(x, y));
}

TEST(IceGeometry, LobedMarginVariesWithAngle) {
  IceGeometry g;
  double lo = g.extent(0.0), hi = lo;
  for (double t = 0.0; t < 6.28; t += 0.05) {
    lo = std::min(lo, g.extent(t));
    hi = std::max(hi, g.extent(t));
  }
  EXPECT_GT(hi / lo, 1.1) << "margin should be visibly lobed";
  EXPECT_GT(lo, 0.0);
}

TEST(IceGeometry, SurfaceGradientMatchesDirectFD) {
  IceGeometry g;
  const double x = 3.1e5, y = 2.2e5, h = 0.5e3;
  double dx = 0, dy = 0;
  g.surface_gradient(x, y, dx, dy);
  EXPECT_NEAR(dx, (g.surface(x + h, y) - g.surface(x - h, y)) / (2 * h), 1e-12);
  EXPECT_NEAR(dy, (g.surface(x, y + h) - g.surface(x, y - h)) / (2 * h), 1e-12);
}

TEST(IceGeometry, BasalFrictionBounded) {
  IceGeometry g;
  for (double t = 0; t < 6.28; t += 0.3) {
    for (double rel = 0.05; rel < 1.0; rel += 0.2) {
      const double r = rel * g.extent(t);
      const double b = g.basal_friction(r * std::cos(t), r * std::sin(t));
      EXPECT_GE(b, g.config().beta_stream);
      EXPECT_LE(b, g.config().beta_interior);
    }
  }
}

TEST(IceGeometry, FlotationCriterion) {
  // Deep bed + thin marginal ice: floating shelves appear and carry zero
  // basal friction; thick interior ice stays grounded.
  IceGeometryConfig cfg;
  cfg.bed_amplitude_m = 1200.0;  // deep troughs below sea level
  cfg.min_thickness_m = 40.0;
  IceGeometry g(cfg);
  std::size_t floating = 0, grounded = 0;
  for (double t = 0.0; t < 6.28; t += 0.05) {
    for (double rel = 0.9; rel < 1.0; rel += 0.02) {
      const double r = rel * g.extent(t);
      const double x = r * std::cos(t), y = r * std::sin(t);
      if (!g.has_ice(x, y)) continue;
      if (g.is_floating(x, y)) {
        ++floating;
        EXPECT_EQ(g.basal_friction(x, y), 0.0);
      } else {
        ++grounded;
        EXPECT_GT(g.basal_friction(x, y), 0.0);
      }
    }
  }
  EXPECT_GT(floating, 0u) << "deep-bed margin must have floating shelves";
  EXPECT_GT(grounded, 0u);
  // The 3.6 km divide can never float over a 1.2 km-amplitude bed.
  EXPECT_FALSE(g.is_floating(0.0, 0.0));
  // Bed above sea level can never float.
  IceGeometry flat(IceGeometryConfig{});
  for (double t = 0.0; t < 6.28; t += 0.3) {
    const double x = 0.3 * flat.extent(t) * std::cos(t);
    const double y = 0.3 * flat.extent(t) * std::sin(t);
    if (flat.bed(x, y) >= 0.0) EXPECT_FALSE(flat.is_floating(x, y));
  }
}

TEST(IceGeometry, SmbPositiveInlandNegativeAtMargin) {
  IceGeometry g;
  EXPECT_GT(g.surface_mass_balance(0, 0), 0.0);
  const double L = g.extent(0.0);
  EXPECT_LT(g.surface_mass_balance(0.98 * L, 0.0), 0.0);
}

// ---- QuadGrid ----

class QuadGridTest : public ::testing::Test {
 protected:
  IceGeometry geom{};
  QuadGrid grid{geom, QuadGridConfig{100.0e3}};
};

TEST_F(QuadGridTest, HasCellsAndNodes) {
  EXPECT_GT(grid.n_cells(), 100u);
  EXPECT_GT(grid.n_nodes(), grid.n_cells());  // quads: nodes > cells for disks
}

TEST_F(QuadGridTest, CellNodesAreValidAndDistinct) {
  for (std::size_t c = 0; c < grid.n_cells(); ++c) {
    std::set<std::size_t> nodes;
    for (int k = 0; k < 4; ++k) {
      const std::size_t n = grid.cell_node(c, k);
      ASSERT_LT(n, grid.n_nodes());
      nodes.insert(n);
    }
    EXPECT_EQ(nodes.size(), 4u);
  }
}

TEST_F(QuadGridTest, CellsAreCcwUnitSquares) {
  const double dx = grid.dx();
  for (std::size_t c = 0; c < grid.n_cells(); ++c) {
    const auto n0 = grid.cell_node(c, 0);
    const auto n1 = grid.cell_node(c, 1);
    const auto n2 = grid.cell_node(c, 2);
    const auto n3 = grid.cell_node(c, 3);
    EXPECT_NEAR(grid.node_x(n1) - grid.node_x(n0), dx, 1e-6);
    EXPECT_NEAR(grid.node_y(n3) - grid.node_y(n0), dx, 1e-6);
    EXPECT_NEAR(grid.node_x(n2) - grid.node_x(n3), dx, 1e-6);
    EXPECT_NEAR(grid.node_y(n2) - grid.node_y(n1), dx, 1e-6);
  }
}

TEST_F(QuadGridTest, EveryNodeBelongsToSomeCell) {
  std::vector<bool> used(grid.n_nodes(), false);
  for (std::size_t c = 0; c < grid.n_cells(); ++c) {
    for (int k = 0; k < 4; ++k) used[grid.cell_node(c, k)] = true;
  }
  for (std::size_t n = 0; n < grid.n_nodes(); ++n) EXPECT_TRUE(used[n]);
}

TEST_F(QuadGridTest, MarginNodesExistAndFormBoundary) {
  const std::size_t margins = grid.n_margin_nodes();
  EXPECT_GT(margins, 0u);
  EXPECT_LT(margins, grid.n_nodes());
  // Margin nodes are far from the center on average.
  double rmin = 1e30;
  for (std::size_t n = 0; n < grid.n_nodes(); ++n) {
    if (grid.is_margin_node(n)) {
      rmin = std::min(rmin, std::hypot(grid.node_x(n), grid.node_y(n)));
    }
  }
  EXPECT_GT(rmin, 0.2 * geom.config().radius_m);
}

TEST_F(QuadGridTest, CellCentroidsHaveIce) {
  for (std::size_t c = 0; c < grid.n_cells(); ++c) {
    double x, y;
    grid.cell_centroid(c, x, y);
    EXPECT_TRUE(geom.has_ice(x, y)) << "cell " << c;
  }
}

TEST(QuadGrid, FinerResolutionScalesQuadratically) {
  IceGeometry geom;
  const QuadGrid coarse(geom, {200.0e3});
  const QuadGrid fine(geom, {100.0e3});
  const double ratio = static_cast<double>(fine.n_cells()) /
                       static_cast<double>(coarse.n_cells());
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
}

TEST(QuadGrid, PaperScaleCellCount) {
  // At 16 km with 20 layers the paper's workset is ~256K hexahedra; our
  // synthetic continent is sized to land in that regime.
  IceGeometry geom;
  const QuadGrid grid(geom, {16.0e3});
  const std::size_t hexes = grid.n_cells() * 20;
  EXPECT_GT(hexes, 150000u);
  EXPECT_LT(hexes, 500000u);
}

// ---- ExtrudedMesh ----

class ExtrudedMeshTest : public ::testing::Test {
 protected:
  ExtrudedMeshTest()
      : base(std::make_shared<QuadGrid>(geom, QuadGridConfig{150.0e3})),
        mesh(base, geom, ExtrudedMeshConfig{5}) {}
  IceGeometry geom{};
  std::shared_ptr<QuadGrid> base;
  ExtrudedMesh mesh;
};

TEST_F(ExtrudedMeshTest, Counts) {
  EXPECT_EQ(mesh.n_cells(), base->n_cells() * 5);
  EXPECT_EQ(mesh.n_nodes(), base->n_nodes() * 6);
  EXPECT_EQ(mesh.levels(), 6u);
}

TEST_F(ExtrudedMeshTest, NodeIdRoundTrip) {
  for (std::size_t col = 0; col < base->n_nodes(); ++col) {
    for (std::size_t lev = 0; lev < mesh.levels(); ++lev) {
      const std::size_t n = mesh.node_id(col, lev);
      EXPECT_EQ(mesh.column_of(n), col);
      EXPECT_EQ(mesh.level_of(n), lev);
    }
  }
}

TEST_F(ExtrudedMeshTest, CellIdRoundTrip) {
  for (std::size_t bc = 0; bc < base->n_cells(); ++bc) {
    for (std::size_t layer = 0; layer < 5; ++layer) {
      const std::size_t c = mesh.cell_id(bc, layer);
      EXPECT_EQ(mesh.base_cell_of(c), bc);
      EXPECT_EQ(mesh.layer_of(c), layer);
    }
  }
}

TEST_F(ExtrudedMeshTest, ZIncreasesWithLevel) {
  for (std::size_t col = 0; col < base->n_nodes(); ++col) {
    for (std::size_t lev = 0; lev + 1 < mesh.levels(); ++lev) {
      EXPECT_LT(mesh.node_z(mesh.node_id(col, lev)),
                mesh.node_z(mesh.node_id(col, lev + 1)));
    }
  }
}

TEST_F(ExtrudedMeshTest, ColumnSpansBedToSurface) {
  for (std::size_t col = 0; col < base->n_nodes(); col += 7) {
    const double x = base->node_x(col), y = base->node_y(col);
    const double h = std::max(geom.thickness(x, y), geom.config().min_thickness_m);
    EXPECT_NEAR(mesh.node_z(mesh.node_id(col, 0)), geom.bed(x, y), 1e-6);
    EXPECT_NEAR(mesh.node_z(mesh.node_id(col, mesh.levels() - 1)),
                geom.bed(x, y) + h, 1e-6);
  }
}

TEST_F(ExtrudedMeshTest, HexConnectivityTopBottom) {
  for (std::size_t c = 0; c < mesh.n_cells(); c += 11) {
    for (int k = 0; k < 4; ++k) {
      const std::size_t bottom = mesh.cell_node(c, k);
      const std::size_t top = mesh.cell_node(c, k + 4);
      EXPECT_EQ(mesh.column_of(bottom), mesh.column_of(top));
      EXPECT_EQ(mesh.level_of(bottom) + 1, mesh.level_of(top));
    }
  }
}

TEST_F(ExtrudedMeshTest, BoundarySets) {
  std::size_t basal = 0, surf = 0, dir = 0;
  for (std::size_t n = 0; n < mesh.n_nodes(); ++n) {
    basal += mesh.is_basal_node(n) ? 1 : 0;
    surf += mesh.is_surface_node(n) ? 1 : 0;
    dir += mesh.is_dirichlet_node(n) ? 1 : 0;
  }
  EXPECT_EQ(basal, base->n_nodes());
  EXPECT_EQ(surf, base->n_nodes());
  EXPECT_EQ(dir, base->n_margin_nodes() * mesh.levels());
}

TEST_F(ExtrudedMeshTest, BasalCellsAreLayerZero) {
  const auto cells = mesh.basal_cells();
  EXPECT_EQ(cells.size(), base->n_cells());
  for (std::size_t c : cells) EXPECT_EQ(mesh.layer_of(c), 0u);
}
