// MatrixMarket I/O round-trips and the host/device mirror semantics.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>

#include "linalg/matrix_market.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "portability/mirror.hpp"

using namespace mali;
using namespace mali::linalg;

namespace {

std::string tmp(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

CrsMatrix small_matrix() {
  CrsMatrix A({0, 2, 4, 5}, {0, 2, 0, 1, 2});
  A.set(0, 0, 4.0);
  A.set(0, 2, -1.5);
  A.set(1, 0, 2.25);
  A.set(1, 1, 3.0);
  A.set(2, 2, 1.0e-12);
  return A;
}

}  // namespace

TEST(MatrixMarket, MatrixRoundTrip) {
  const auto A = small_matrix();
  const auto path = tmp("a.mtx");
  write_matrix_market(path, A);
  const auto B = read_matrix_market(path);
  ASSERT_EQ(B.n_rows(), A.n_rows());
  ASSERT_EQ(B.nnz(), A.nnz());
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(B.get(r, c), A.get(r, c)) << r << "," << c;
    }
  }
  std::remove(path.c_str());
}

TEST(MatrixMarket, VectorRoundTrip) {
  const std::vector<double> v = {1.0, -2.5, 3.25e-7, 0.0, 9.9e11};
  const auto path = tmp("v.mtx");
  write_matrix_market(path, v);
  const auto w = read_matrix_market_vector(path);
  ASSERT_EQ(w.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_DOUBLE_EQ(w[i], v[i]);
  std::remove(path.c_str());
}

TEST(MatrixMarket, DuplicateEntriesAreSummed) {
  const auto path = tmp("dup.mtx");
  {
    std::ofstream os(path);
    os << "%%MatrixMarket matrix coordinate real general\n";
    os << "2 2 3\n";
    os << "1 1 2.0\n1 1 3.0\n2 2 1.0\n";
  }
  const auto A = read_matrix_market(path);
  EXPECT_DOUBLE_EQ(A.get(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(A.get(1, 1), 1.0);
  EXPECT_EQ(A.nnz(), 2u);
  std::remove(path.c_str());
}

TEST(MatrixMarket, RejectsNonMatrixFiles) {
  const auto path = tmp("bad.mtx");
  {
    std::ofstream os(path);
    os << "not a matrix\n1 1 1\n";
  }
  EXPECT_THROW(read_matrix_market(path), mali::Error);
  std::remove(path.c_str());
  EXPECT_THROW(read_matrix_market(tmp("missing.mtx")), mali::Error);
}

TEST(MatrixMarket, IceJacobianRoundTripPreservesSpMV) {
  physics::StokesFOConfig cfg;
  cfg.dx_m = 300.0e3;
  cfg.n_layers = 3;
  physics::StokesFOProblem p(cfg);
  const auto U = p.analytic_initial_guess();
  std::vector<double> F;
  auto J = p.create_matrix();
  p.residual_and_jacobian(U, F, J);

  const auto path = tmp("jac.mtx");
  write_matrix_market(path, J);
  const auto J2 = read_matrix_market(path);
  std::remove(path.c_str());

  std::mt19937 rng(4);
  std::uniform_real_distribution<double> d(-1, 1);
  std::vector<double> x(J.n_rows());
  for (auto& v : x) v = d(rng);
  std::vector<double> y1, y2;
  J.apply(x, y1);
  J2.apply(x, y2);
  for (std::size_t i = 0; i < y1.size(); ++i) {
    EXPECT_NEAR(y2[i], y1[i], 1e-9 * std::max(1.0, std::abs(y1[i])));
  }
}

TEST(Mirror, MirrorViewIsAlias) {
  pk::View<double, 2> dev("dev", 3, 4);
  auto host = pk::create_mirror_view(dev);
  EXPECT_TRUE(host.same_data(dev));
  host(1, 2) = 42.0;
  EXPECT_EQ(dev(1, 2), 42.0);
  pk::deep_copy(host, dev);  // alias: must be a no-op, not an error
}

TEST(Mirror, CreateMirrorIsFreshAllocation) {
  pk::View<double, 3> dev("dev", 2, 3, 4);
  dev.fill(7.0);
  auto host = pk::create_mirror(dev);
  EXPECT_FALSE(host.same_data(dev));
  EXPECT_EQ(host.extent(0), 2u);
  EXPECT_EQ(host.extent(2), 4u);
  EXPECT_EQ(host(0, 0, 0), 0.0);  // fresh zero-initialized storage
  pk::deep_copy(host, dev);
  EXPECT_EQ(host(1, 2, 3), 7.0);
}

TEST(Mirror, DeepCopyValueFill) {
  pk::View<int, 1> v("v", 5);
  pk::deep_copy(v, 3);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(v(i), 3);
}

TEST(Mirror, RoundTripHostDeviceIdiom) {
  // The canonical Kokkos idiom compiles and behaves.
  pk::View<double, 2> dev("field", 4, 4);
  auto h = pk::create_mirror(dev);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      h(i, j) = static_cast<double>(i * 10 + j);
    }
  }
  pk::deep_copy(dev, h);
  EXPECT_EQ(dev(3, 1), 31.0);
  auto h2 = pk::create_mirror(dev);
  pk::deep_copy(h2, dev);
  EXPECT_EQ(h2(2, 2), 22.0);
}
