// Semicoarsening AMG tests: hierarchy structure on extruded graphs,
// Galerkin coarse-operator properties, and V-cycle/GMRES convergence on an
// anisotropic model problem (the regime MDSC-AMG targets).

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/gmres.hpp"
#include "linalg/semicoarsening_amg.hpp"

using namespace mali::linalg;

namespace {

/// Anisotropic 3D Laplacian on an (nx x ny x nz) extruded grid with one dof
/// per node (dofs_per_node = 1) and strong vertical coupling (epsv >> 1
/// mimics thin ice layers).  Node id = column * nz + level.
struct ExtrudedProblem {
  CrsMatrix A;
  ExtrusionInfo info;
};

ExtrudedProblem make_extruded_laplacian(std::size_t nx, std::size_t ny,
                                        std::size_t nz, double epsv) {
  const std::size_t n_cols = nx * ny;
  const std::size_t n = n_cols * nz;
  auto node = [nz](std::size_t col, std::size_t lev) { return col * nz + lev; };
  auto col_id = [nx](std::size_t i, std::size_t j) { return j * nx + i; };

  std::vector<std::vector<std::pair<std::size_t, double>>> rows(n);
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      for (std::size_t k = 0; k < nz; ++k) {
        const std::size_t r = node(col_id(i, j), k);
        double diag = 0.0;
        auto link = [&](std::size_t c, double w) {
          rows[r].push_back({c, -w});
          diag += w;
        };
        if (i > 0) link(node(col_id(i - 1, j), k), 1.0);
        if (i + 1 < nx) link(node(col_id(i + 1, j), k), 1.0);
        if (j > 0) link(node(col_id(i, j - 1), k), 1.0);
        if (j + 1 < ny) link(node(col_id(i, j + 1), k), 1.0);
        if (k > 0) link(node(col_id(i, j), k - 1), epsv);
        if (k + 1 < nz) link(node(col_id(i, j), k + 1), epsv);
        rows[r].push_back({r, diag + 0.05});  // slight shift: nonsingular
      }
    }
  }
  std::vector<std::size_t> rp{0}, cols;
  std::vector<double> vals;
  for (auto& row : rows) {
    std::sort(row.begin(), row.end());
    for (auto& [c, v] : row) {
      cols.push_back(c);
      vals.push_back(v);
    }
    rp.push_back(cols.size());
  }
  CrsMatrix A(rp, cols);
  for (std::size_t r = 0, k = 0; r < n; ++r) {
    for (std::size_t p = rp[r]; p < rp[r + 1]; ++p, ++k) {
      A.add(r, cols[p], vals[k]);
    }
  }

  ExtrusionInfo info;
  info.n_nodes = n;
  info.levels = nz;
  info.dofs_per_node = 1;
  info.dx = 1.0;
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      info.column_x.push_back(static_cast<double>(i));
      info.column_y.push_back(static_cast<double>(j));
    }
  }
  return {std::move(A), std::move(info)};
}

std::vector<double> random_vec(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

double rel_residual(const CrsMatrix& A, const std::vector<double>& x,
                    const std::vector<double>& b) {
  std::vector<double> r;
  A.apply(x, r);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
  return norm2(r) / norm2(b);
}

}  // namespace

TEST(SemicoarseningAmg, BuildsVerticalThenHorizontalHierarchy) {
  auto prob = make_extruded_laplacian(12, 12, 16, 100.0);
  AmgConfig cfg;
  cfg.coarse_max_dofs = 50;
  SemicoarseningAmg amg(prob.info, cfg);
  amg.compute(prob.A);
  // 16 vertical levels halve: 16->8->4->2->1 (4 vertical coarsenings), then
  // horizontal 2x2 phases.
  ASSERT_GE(amg.n_levels(), 5u);
  EXPECT_EQ(amg.level_dofs(0), 12u * 12u * 16u);
  EXPECT_EQ(amg.level_dofs(1), 12u * 12u * 8u);
  EXPECT_EQ(amg.level_dofs(2), 12u * 12u * 4u);
  EXPECT_EQ(amg.level_dofs(3), 12u * 12u * 2u);
  EXPECT_EQ(amg.level_dofs(4), 12u * 12u * 1u);
  if (amg.n_levels() > 5) {
    EXPECT_LT(amg.level_dofs(5), amg.level_dofs(4));
  }
}

TEST(SemicoarseningAmg, OddLevelCountRoundsUp) {
  auto prob = make_extruded_laplacian(6, 6, 5, 50.0);
  AmgConfig cfg;
  cfg.coarse_max_dofs = 20;
  SemicoarseningAmg amg(prob.info, cfg);
  amg.compute(prob.A);
  EXPECT_EQ(amg.level_dofs(1), 6u * 6u * 3u);  // ceil(5/2)
  EXPECT_EQ(amg.level_dofs(2), 6u * 6u * 2u);
}

TEST(SemicoarseningAmg, SingleApplicationReducesResidual) {
  auto prob = make_extruded_laplacian(10, 10, 8, 100.0);
  SemicoarseningAmg amg(prob.info, AmgConfig{});
  amg.compute(prob.A);
  const auto b = random_vec(prob.A.n_rows(), 5);
  std::vector<double> z;
  amg.apply(b, z);
  EXPECT_LT(rel_residual(prob.A, z, b), 0.5)
      << "one V-cycle should knock down most of the residual";
}

class AmgAnisotropy : public ::testing::TestWithParam<double> {};

TEST_P(AmgAnisotropy, GmresWithAmgConvergesFast) {
  const double epsv = GetParam();
  auto prob = make_extruded_laplacian(12, 12, 10, epsv);
  SemicoarseningAmg amg(prob.info, AmgConfig{});
  amg.compute(prob.A);
  const auto b = random_vec(prob.A.n_rows(), 17);
  std::vector<double> x;
  GmresConfig cfg;
  cfg.rel_tol = 1e-8;
  cfg.max_iters = 200;
  const auto r = Gmres(cfg).solve(prob.A, amg, b, x);
  EXPECT_TRUE(r.converged) << "epsv=" << epsv;
  EXPECT_LT(r.iterations, 60u) << "epsv=" << epsv;
  EXPECT_LT(rel_residual(prob.A, x, b), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Anisotropies, AmgAnisotropy,
                         ::testing::Values(1.0, 10.0, 100.0, 1000.0));

TEST(SemicoarseningAmg, BeatsJacobiPreconditioning) {
  auto prob = make_extruded_laplacian(14, 14, 12, 200.0);
  const auto b = random_vec(prob.A.n_rows(), 23);
  GmresConfig cfg;
  cfg.rel_tol = 1e-8;
  cfg.max_iters = 2000;
  cfg.restart = 300;

  JacobiPreconditioner jac;
  jac.compute(prob.A);
  std::vector<double> xj;
  const auto rj = Gmres(cfg).solve(prob.A, jac, b, xj);

  SemicoarseningAmg amg(prob.info, AmgConfig{});
  amg.compute(prob.A);
  std::vector<double> xa;
  const auto ra = Gmres(cfg).solve(prob.A, amg, b, xa);

  EXPECT_TRUE(ra.converged);
  EXPECT_LT(ra.iterations * 3, rj.iterations + 1)
      << "AMG should need far fewer iterations than Jacobi";
}

TEST(SemicoarseningAmg, TwoDofPerNodeBlocksStaySeparate) {
  // Same operator duplicated on two components; AMG must converge equally.
  auto scalar = make_extruded_laplacian(8, 8, 6, 80.0);
  const std::size_t n = scalar.A.n_rows();
  // Expand to 2 dofs/node with component-diagonal coupling.
  std::vector<std::size_t> rp{0}, cols;
  const auto& srp = scalar.A.row_ptr();
  const auto& scols = scalar.A.cols();
  const auto& svals = scalar.A.values();
  for (std::size_t r = 0; r < n; ++r) {
    for (int c = 0; c < 2; ++c) {
      for (std::size_t k = srp[r]; k < srp[r + 1]; ++k) {
        cols.push_back(2 * scols[k] + static_cast<std::size_t>(c));
      }
      // keep columns sorted: they are, since scols sorted and stride 2.
      rp.push_back(cols.size());
    }
  }
  CrsMatrix A2(rp, cols);
  for (std::size_t r = 0; r < n; ++r) {
    for (int c = 0; c < 2; ++c) {
      for (std::size_t k = srp[r]; k < srp[r + 1]; ++k) {
        A2.set(2 * r + static_cast<std::size_t>(c),
               2 * scols[k] + static_cast<std::size_t>(c), svals[k]);
      }
    }
  }
  ExtrusionInfo info = scalar.info;
  info.dofs_per_node = 2;
  SemicoarseningAmg amg(info, AmgConfig{});
  amg.compute(A2);
  const auto b = random_vec(A2.n_rows(), 31);
  std::vector<double> x;
  GmresConfig cfg;
  cfg.rel_tol = 1e-8;
  cfg.max_iters = 300;
  const auto r = Gmres(cfg).solve(A2, amg, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations, 80u);
}

TEST(SemicoarseningAmg, VCycleErrorPropagationContracts) {
  // Power iteration on the error operator E = I - M^{-1} A: the dominant
  // convergence factor of the stand-alone V-cycle must be well below 1 on
  // the anisotropic model problem (semicoarsening matched to the strong
  // vertical coupling).
  auto prob = make_extruded_laplacian(10, 10, 12, 200.0);
  SemicoarseningAmg amg(prob.info, AmgConfig{});
  amg.compute(prob.A);
  const std::size_t n = prob.A.n_rows();
  auto e = random_vec(n, 77);
  double rho = 1.0;
  std::vector<double> Ae, z;
  for (int it = 0; it < 25; ++it) {
    prob.A.apply(e, Ae);
    amg.apply(Ae, z);
    double norm_new = 0.0, norm_old = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      norm_old += e[i] * e[i];
      e[i] -= z[i];
      norm_new += e[i] * e[i];
    }
    rho = std::sqrt(norm_new / norm_old);
    // Renormalize to avoid underflow.
    const double s = 1.0 / std::sqrt(norm_new);
    for (auto& v : e) v *= s;
  }
  EXPECT_LT(rho, 0.7) << "V-cycle convergence factor too weak";
  EXPECT_GT(rho, 0.0);
}

TEST(SemicoarseningAmg, ApplyBeforeComputeThrows) {
  auto prob = make_extruded_laplacian(4, 4, 4, 10.0);
  SemicoarseningAmg amg(prob.info, AmgConfig{});
  std::vector<double> z;
  EXPECT_THROW(amg.apply(random_vec(prob.A.n_rows(), 1), z), mali::Error);
}
