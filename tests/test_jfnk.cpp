// JFNK end-to-end: Newton with the matrix-free Jacobian operator must
// converge on the manufactured FO Stokes problem to the same solution as
// the assembled path (rtol 1e-10 on the mean velocity — both paths walk
// the same Newton iterates up to FP reassociation when given the same
// preconditioner), with iteration counts inside a pinned band.
//
// Also the GMRES restart-path robustness regression: operators whose
// Krylov space is invariant after k < restart iterations trigger a happy
// breakdown (Arnoldi normalization ~ 0); the solver must fold the column
// and return the exact least-squares solution instead of dividing through.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "linalg/block_jacobi.hpp"
#include "linalg/gmres.hpp"
#include "linalg/linear_operator.hpp"
#include "linalg/preconditioner.hpp"
#include "nonlinear/newton.hpp"
#include "physics/stokes_fo_problem.hpp"

using namespace mali;
using physics::StokesFOConfig;
using physics::StokesFOProblem;

namespace {

StokesFOConfig mms_config(linalg::JacobianMode mode) {
  StokesFOConfig cfg;
  cfg.dx_m = 250.0e3;
  cfg.n_layers = 4;
  cfg.mms.enabled = true;
  cfg.jacobian = mode;
  return cfg;
}

struct SolveOutcome {
  nonlinear::NewtonResult newton;
  double mean_velocity = 0.0;
  double mms_error = 0.0;
};

/// Runs the MMS Newton solve with the given Jacobian mode; both modes use
/// the same 2x2 block-Jacobi preconditioner so the iterate paths are
/// comparable (the semicoarsening AMG needs the assembled matrix).
SolveOutcome run_mms(linalg::JacobianMode mode) {
  StokesFOProblem p(mms_config(mode));
  linalg::BlockJacobiPreconditioner M(2);
  nonlinear::NewtonConfig ncfg;
  ncfg.jacobian = mode;
  nonlinear::NewtonSolver newton(ncfg);
  std::vector<double> U(p.n_dofs(), 0.0);
  SolveOutcome out;
  out.newton = newton.solve(p, M, U);
  out.mean_velocity = p.mean_velocity(U);
  out.mms_error = p.mms_error(U);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Matrix-free Newton == assembled Newton on the manufactured problem.
// ---------------------------------------------------------------------------

TEST(Jfnk, MatrixFreeMatchesAssembledOnMms) {
  const auto assembled = run_mms(linalg::JacobianMode::kAssembled);
  const auto mf = run_mms(linalg::JacobianMode::kMatrixFree);

  ASSERT_TRUE(assembled.newton.converged);
  ASSERT_TRUE(mf.newton.converged);

  // Same solution: the operators agree to reassociation, so the Newton
  // iterates (and the converged mean velocity) agree far tighter than the
  // nonlinear tolerance.
  EXPECT_NEAR(mf.mean_velocity / assembled.mean_velocity, 1.0, 1e-10);

  // Both discretization errors are the same (the solver choice cannot
  // change what the mesh converges to).
  EXPECT_NEAR(mf.mms_error / assembled.mms_error, 1.0, 1e-8);

  // Pinned iteration band: identical preconditioning must give identical
  // Newton step counts and GMRES totals within a small reassociation slack.
  EXPECT_EQ(mf.newton.iterations, assembled.newton.iterations);
  const auto a = static_cast<double>(assembled.newton.total_linear_iters);
  const auto m = static_cast<double>(mf.newton.total_linear_iters);
  EXPECT_NEAR(m, a, std::max(2.0, 0.05 * a))
      << "assembled " << assembled.newton.total_linear_iters
      << " vs matrix-free " << mf.newton.total_linear_iters;
}

TEST(Jfnk, MatrixFreeNeverAllocatesTheMatrix) {
  // Smoke contract: the matrix-free Newton path runs end-to-end on a
  // problem without ever calling create_matrix().  Guarded by a counting
  // wrapper around the problem.
  class CountingProblem final : public nonlinear::NonlinearProblem {
   public:
    explicit CountingProblem(StokesFOProblem& p) : p_(p) {}
    [[nodiscard]] std::size_t n_dofs() const override { return p_.n_dofs(); }
    void residual(const std::vector<double>& U,
                  std::vector<double>& F) override {
      p_.residual(U, F);
    }
    void residual_and_jacobian(const std::vector<double>& U,
                               std::vector<double>& F,
                               linalg::CrsMatrix& J) override {
      ++assembled_calls;
      p_.residual_and_jacobian(U, F, J);
    }
    [[nodiscard]] linalg::CrsMatrix create_matrix() const override {
      ++create_calls;
      return p_.create_matrix();
    }
    [[nodiscard]] std::unique_ptr<linalg::LinearOperator> jacobian_operator(
        const std::vector<double>& U) override {
      return p_.jacobian_operator(U);
    }
    mutable int create_calls = 0;
    int assembled_calls = 0;

   private:
    StokesFOProblem& p_;
  };

  StokesFOProblem p(mms_config(linalg::JacobianMode::kMatrixFree));
  CountingProblem counting(p);
  linalg::BlockJacobiPreconditioner M(2);
  nonlinear::NewtonConfig ncfg;
  ncfg.jacobian = linalg::JacobianMode::kMatrixFree;
  nonlinear::NewtonSolver newton(ncfg);
  std::vector<double> U(p.n_dofs(), 0.0);
  const auto r = newton.solve(counting, M, U);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(counting.create_calls, 0);
  EXPECT_EQ(counting.assembled_calls, 0);
}

TEST(Jfnk, SolverRefusesMatrixFreeWithoutOperator) {
  // A problem that does not override jacobian_operator must be rejected
  // up front, not crash mid-solve.
  class NoOperatorProblem final : public nonlinear::NonlinearProblem {
   public:
    [[nodiscard]] std::size_t n_dofs() const override { return 2; }
    void residual(const std::vector<double>& U,
                  std::vector<double>& F) override {
      F = {U[0] - 1.0, U[1] + 2.0};
    }
    void residual_and_jacobian(const std::vector<double>&,
                               std::vector<double>&,
                               linalg::CrsMatrix&) override {}
    [[nodiscard]] linalg::CrsMatrix create_matrix() const override {
      return linalg::CrsMatrix({0, 1, 2}, {0, 1});
    }
  };

  NoOperatorProblem p;
  linalg::IdentityPreconditioner M;
  nonlinear::NewtonConfig ncfg;
  ncfg.jacobian = linalg::JacobianMode::kMatrixFree;
  nonlinear::NewtonSolver newton(ncfg);
  std::vector<double> U(2, 0.0);
  EXPECT_THROW(newton.solve(p, M, U), Error);
}

TEST(Jfnk, ModeRoundTrip) {
  using linalg::JacobianMode;
  EXPECT_EQ(linalg::jacobian_mode_from_string("assembled"),
            JacobianMode::kAssembled);
  EXPECT_EQ(linalg::jacobian_mode_from_string("matrix-free"),
            JacobianMode::kMatrixFree);
  EXPECT_EQ(linalg::jacobian_mode_from_string("matrixfree"),
            JacobianMode::kMatrixFree);
  EXPECT_EQ(linalg::jacobian_mode_from_string("mf"),
            JacobianMode::kMatrixFree);
  EXPECT_THROW((void)linalg::jacobian_mode_from_string("hessian"), Error);
  EXPECT_STREQ(linalg::to_string(JacobianMode::kAssembled), "assembled");
  EXPECT_STREQ(linalg::to_string(JacobianMode::kMatrixFree), "matrix-free");
}

// ---------------------------------------------------------------------------
// GMRES happy-breakdown regression (restart-path robustness).
// ---------------------------------------------------------------------------

namespace {

/// Diagonal operator with few distinct eigenvalues: the Krylov space is
/// invariant after (#distinct eigenvalues) iterations, so GMRES hits the
/// Arnoldi breakdown well before the restart length.
class FewEigenvalueOperator final : public linalg::LinearOperator {
 public:
  explicit FewEigenvalueOperator(std::vector<double> diag)
      : diag_(std::move(diag)) {}
  [[nodiscard]] std::size_t rows() const override { return diag_.size(); }
  [[nodiscard]] std::size_t cols() const override { return diag_.size(); }
  void apply(const std::vector<double>& x,
             std::vector<double>& y) const override {
    y.resize(diag_.size());
    for (std::size_t i = 0; i < diag_.size(); ++i) y[i] = diag_[i] * x[i];
  }
  [[nodiscard]] bool diagonal(std::vector<double>& d) const override {
    d = diag_;
    return true;
  }
  [[nodiscard]] const char* name() const override { return "few-eig"; }

 private:
  std::vector<double> diag_;
};

}  // namespace

TEST(GmresBreakdown, ExactConvergenceBeforeRestart) {
  // 120 dofs but only 3 distinct eigenvalues: GMRES converges exactly in
  // <= 3 iterations; iteration 3's Arnoldi vector has norm ~0.  Before the
  // breakdown guard this divided by ~1e-17 and poisoned the basis.
  constexpr std::size_t n = 120;
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = 1.0 + static_cast<double>(i % 3);
  const FewEigenvalueOperator A(diag);

  std::vector<double> b(n), x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = std::sin(static_cast<double>(i) + 1.0);
  }

  linalg::GmresConfig cfg;
  cfg.rel_tol = 1e-12;
  cfg.restart = 50;  // breakdown happens inside the first cycle
  const linalg::Gmres gmres(cfg);
  linalg::IdentityPreconditioner M;
  const auto r = gmres.solve(A, M, b, x);

  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 4u);
  EXPECT_LT(r.rel_residual, 1e-12);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(x[i], b[i] / diag[i], 1e-12) << "dof " << i;
    ASSERT_FALSE(std::isnan(x[i]));
  }
}

TEST(GmresBreakdown, IdentityOperatorConvergesInOneIteration) {
  // w = A v1 = v1 orthogonalizes to exactly zero: the hardest breakdown
  // (H[j][j+1] == 0.0, not merely tiny) on the very first Arnoldi step.
  constexpr std::size_t n = 17;
  const FewEigenvalueOperator A(std::vector<double>(n, 1.0));
  std::vector<double> b(n), x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<double>(i) - 8.0;

  const linalg::Gmres gmres(linalg::GmresConfig{});
  linalg::IdentityPreconditioner M;
  const auto r = gmres.solve(A, M, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 1u);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(x[i], b[i]);
}

TEST(GmresBreakdown, SurvivesRestartBoundary) {
  // Same invariant-subspace operator, restart shorter than the spectrum:
  // the cycle boundary and the breakdown interact (restart = 2, three
  // distinct eigenvalues): the solve needs a second cycle and must not
  // carry a poisoned basis across it.
  constexpr std::size_t n = 60;
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = 2.0 + static_cast<double>(i % 3);
  const FewEigenvalueOperator A(diag);
  std::vector<double> b(n, 1.0), x(n, 0.0);

  linalg::GmresConfig cfg;
  cfg.rel_tol = 1e-12;
  cfg.restart = 2;
  const linalg::Gmres gmres(cfg);
  linalg::IdentityPreconditioner M;
  const auto r = gmres.solve(A, M, b, x);
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(x[i], 1.0 / diag[i], 1e-11);
  }
}

// ---------------------------------------------------------------------------
// Newton linear-failure recording on the real problem.
// ---------------------------------------------------------------------------

TEST(Jfnk, RecordsLinearFailuresWhenGmresBudgetIsCrippled) {
  // Two GMRES iterations per Newton step cannot reach 1e-6 on the FO
  // Jacobian under block-Jacobi: every inner solve misses its tolerance.
  // The step is still attempted (inexact Newton), but each failure must be
  // recorded — previously lin.converged was dropped on the floor.
  StokesFOProblem p(mms_config(linalg::JacobianMode::kMatrixFree));
  linalg::BlockJacobiPreconditioner M(2);
  nonlinear::NewtonConfig ncfg;
  ncfg.jacobian = linalg::JacobianMode::kMatrixFree;
  ncfg.max_iters = 2;
  ncfg.gmres.max_iters = 2;
  const nonlinear::NewtonSolver newton(ncfg);
  std::vector<double> U(p.n_dofs(), 0.0);
  const auto r = newton.solve(p, M, U);
  EXPECT_GE(r.linear_failures, 1);
  EXPECT_TRUE(r.any_linear_failure());
  EXPECT_EQ(r.linear_failures, r.iterations);
}

TEST(Jfnk, HealthyRunRecordsNoFailures) {
  const auto out = run_mms(linalg::JacobianMode::kMatrixFree);
  ASSERT_TRUE(out.newton.converged);
  EXPECT_EQ(out.newton.linear_failures, 0);
  EXPECT_FALSE(out.newton.any_linear_failure());
  EXPECT_FALSE(out.newton.line_search_stalled);
}

TEST(GmresBreakdown, MatrixPathStillAgrees) {
  // The CrsMatrix overload routes through the same operator code path; a
  // diagonal CRS with repeated eigenvalues must behave identically.
  constexpr std::size_t n = 24;
  std::vector<std::size_t> row_ptr(n + 1), cols(n);
  for (std::size_t i = 0; i < n; ++i) {
    row_ptr[i + 1] = i + 1;
    cols[i] = i;
  }
  linalg::CrsMatrix A(row_ptr, cols);
  for (std::size_t i = 0; i < n; ++i) {
    A.set(i, i, i % 2 == 0 ? 3.0 : 5.0);
  }
  std::vector<double> b(n, 2.0), x(n, 0.0);
  const linalg::Gmres gmres(linalg::GmresConfig{});
  linalg::IdentityPreconditioner M;
  const auto r = gmres.solve(A, M, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 3u);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], 2.0 / (i % 2 == 0 ? 3.0 : 5.0), 1e-12);
  }
}
