// Domain-partitioning tests (strips and blocks) plus the multi-GPU halo
// model and the markdown report generator.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/report_generator.hpp"
#include "gpusim/multi_gpu.hpp"
#include "mesh/ice_geometry.hpp"
#include "mesh/partition.hpp"

using namespace mali;

namespace {

struct Fixture {
  mesh::IceGeometry geom{};
  mesh::QuadGrid grid{geom, mesh::QuadGridConfig{100.0e3}};
};

}  // namespace

TEST(Partition, StripsCoverEveryCellOnce) {
  Fixture f;
  const auto p = mesh::partition_strips(f.grid, 4);
  ASSERT_EQ(p.cell_owner.size(), f.grid.n_cells());
  std::size_t total = 0;
  for (auto c : p.owned_cells) total += c;
  EXPECT_EQ(total, f.grid.n_cells());
  for (int owner : p.cell_owner) {
    EXPECT_GE(owner, 0);
    EXPECT_LT(owner, 4);
  }
}

TEST(Partition, StripsAreBalanced) {
  Fixture f;
  const auto p = mesh::partition_strips(f.grid, 8);
  EXPECT_LT(p.imbalance(), 1.05) << "equal-count strips must balance";
}

TEST(Partition, SinglePartHasNoHalo) {
  Fixture f;
  const auto p = mesh::partition_strips(f.grid, 1);
  EXPECT_EQ(p.halo_columns[0], 0u);
  EXPECT_EQ(p.owned_cells[0], f.grid.n_cells());
}

TEST(Partition, HaloGrowsSubLinearlyWithParts) {
  // Strip halos are one column of nodes per internal boundary: roughly
  // constant per rank as the strip count grows (until strips get thin).
  Fixture f;
  const auto p2 = mesh::partition_strips(f.grid, 2);
  const auto p8 = mesh::partition_strips(f.grid, 8);
  EXPECT_GT(p2.max_halo_columns(), 0u);
  EXPECT_LT(p8.max_halo_columns(), 4 * p2.max_halo_columns());
}

TEST(Partition, BlocksCoverEveryCell) {
  Fixture f;
  const auto p = mesh::partition_blocks(f.grid, 3, 3);
  EXPECT_EQ(p.n_parts, 9);
  std::size_t total = 0;
  for (auto c : p.owned_cells) total += c;
  EXPECT_EQ(total, f.grid.n_cells());
  // Central block owns cells; the disk's corners may be lean but the
  // partition as a whole must not lose anything.
  EXPECT_GT(p.owned_cells[4], 0u);
}

TEST(Partition, OwnedColumnsPartitionTheNodes) {
  Fixture f;
  const auto p = mesh::partition_blocks(f.grid, 2, 2);
  std::size_t total = 0;
  for (auto c : p.owned_columns) total += c;
  EXPECT_EQ(total, f.grid.n_nodes());
}

TEST(Partition, HaloDisjointFromOwnedPerPart) {
  // halo + owned columns per part never exceeds total columns.
  Fixture f;
  const auto p = mesh::partition_strips(f.grid, 4);
  for (int part = 0; part < 4; ++part) {
    EXPECT_LE(p.owned_columns[static_cast<std::size_t>(part)] +
                  p.halo_columns[static_cast<std::size_t>(part)],
              f.grid.n_nodes());
  }
}

TEST(MultiGpu, HaloBytesFormula) {
  // 100 columns x 21 levels x 2 dofs x 8 bytes.
  EXPECT_DOUBLE_EQ(gpusim::halo_bytes(100, 21), 100.0 * 21 * 2 * 8);
}

TEST(MultiGpu, ScalingPointComposition) {
  gpusim::NetworkModel net;
  const auto single = gpusim::scaling_point(1, 3.0e-3, 0.0, net, 3.0e-3);
  EXPECT_DOUBLE_EQ(single.total_time_s, 3.0e-3);
  EXPECT_DOUBLE_EQ(single.efficiency, 1.0);

  const double bytes = 1.0e6;
  const auto multi = gpusim::scaling_point(16, 3.0e-3, bytes, net, 3.0e-3);
  EXPECT_GT(multi.total_time_s, single.total_time_s);
  EXPECT_LT(multi.efficiency, 1.0);
  EXPECT_NEAR(multi.halo_time_s,
              bytes / net.nic_bw_bytes_per_s +
                  net.message_latency_s * net.neighbors,
              1e-12);
}

TEST(ReportGenerator, ProducesAllSections) {
  core::StudyConfig cfg;
  cfg.n_cells = 16384;
  cfg.sim.scale = 0.25;
  const core::OptimizationStudy study(cfg);
  const auto md = core::generate_markdown_report(study);
  for (const char* needle :
       {"# MiniMALI optimization study", "Table III", "Fig. 3", "Fig. 5",
        "Table IV", "Table II", "Ablation", "Jacobian", "Residual",
        "NVIDIA A100", "AMD MI250X"}) {
    EXPECT_NE(md.find(needle), std::string::npos) << needle;
  }
}

TEST(ReportGenerator, SectionsCanBeDisabled) {
  core::StudyConfig cfg;
  cfg.n_cells = 16384;
  const core::OptimizationStudy study(cfg);
  core::ReportOptions opts;
  opts.include_ablation = false;
  opts.include_launch_bounds = false;
  const auto md = core::generate_markdown_report(study, opts);
  EXPECT_EQ(md.find("Ablation"), std::string::npos);
  EXPECT_EQ(md.find("LaunchBounds"), std::string::npos);
  EXPECT_NE(md.find("Table III"), std::string::npos);
}
