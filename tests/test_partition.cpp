// Domain-partitioning tests (strips and blocks) plus the multi-GPU halo
// model and the markdown report generator.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/report_generator.hpp"
#include "gpusim/multi_gpu.hpp"
#include "mesh/ice_geometry.hpp"
#include "mesh/partition.hpp"

using namespace mali;

namespace {

struct Fixture {
  mesh::IceGeometry geom{};
  mesh::QuadGrid grid{geom, mesh::QuadGridConfig{100.0e3}};
};

}  // namespace

TEST(Partition, StripsCoverEveryCellOnce) {
  Fixture f;
  const auto p = mesh::partition_strips(f.grid, 4);
  ASSERT_EQ(p.cell_owner.size(), f.grid.n_cells());
  std::size_t total = 0;
  for (auto c : p.owned_cells) total += c;
  EXPECT_EQ(total, f.grid.n_cells());
  for (int owner : p.cell_owner) {
    EXPECT_GE(owner, 0);
    EXPECT_LT(owner, 4);
  }
}

TEST(Partition, StripsAreBalanced) {
  Fixture f;
  const auto p = mesh::partition_strips(f.grid, 8);
  EXPECT_LT(p.imbalance(), 1.05) << "equal-count strips must balance";
}

TEST(Partition, SinglePartHasNoHalo) {
  Fixture f;
  const auto p = mesh::partition_strips(f.grid, 1);
  EXPECT_EQ(p.halo_columns[0], 0u);
  EXPECT_EQ(p.owned_cells[0], f.grid.n_cells());
}

TEST(Partition, HaloGrowsSubLinearlyWithParts) {
  // Strip halos are one column of nodes per internal boundary: roughly
  // constant per rank as the strip count grows (until strips get thin).
  Fixture f;
  const auto p2 = mesh::partition_strips(f.grid, 2);
  const auto p8 = mesh::partition_strips(f.grid, 8);
  EXPECT_GT(p2.max_halo_columns(), 0u);
  EXPECT_LT(p8.max_halo_columns(), 4 * p2.max_halo_columns());
}

TEST(Partition, BlocksCoverEveryCell) {
  Fixture f;
  const auto p = mesh::partition_blocks(f.grid, 3, 3);
  EXPECT_EQ(p.n_parts, 9);
  std::size_t total = 0;
  for (auto c : p.owned_cells) total += c;
  EXPECT_EQ(total, f.grid.n_cells());
  // Central block owns cells; the disk's corners may be lean but the
  // partition as a whole must not lose anything.
  EXPECT_GT(p.owned_cells[4], 0u);
}

TEST(Partition, OwnedColumnsPartitionTheNodes) {
  Fixture f;
  const auto p = mesh::partition_blocks(f.grid, 2, 2);
  std::size_t total = 0;
  for (auto c : p.owned_columns) total += c;
  EXPECT_EQ(total, f.grid.n_nodes());
}

TEST(Partition, HaloDisjointFromOwnedPerPart) {
  // halo + owned columns per part never exceeds total columns.
  Fixture f;
  const auto p = mesh::partition_strips(f.grid, 4);
  for (int part = 0; part < 4; ++part) {
    EXPECT_LE(p.owned_columns[static_cast<std::size_t>(part)] +
                  p.halo_columns[static_cast<std::size_t>(part)],
              f.grid.n_nodes());
  }
}

// ---------------------------------------------------------------------------
// Decomposition-structure invariants: the contracts the dist/ runtime's halo
// exchange plans are built on, checked for strips AND blocks across part
// counts including ones that do not divide the cell count evenly.
// ---------------------------------------------------------------------------

namespace {

std::vector<mesh::Partition> all_partitions(const mesh::QuadGrid& grid) {
  std::vector<mesh::Partition> ps;
  for (const int n : {1, 2, 4, 7}) {
    ps.push_back(mesh::partition_strips(grid, n));
  }
  ps.push_back(mesh::partition_blocks(grid, 2, 2));
  ps.push_back(mesh::partition_blocks(grid, 2, 3));
  ps.push_back(mesh::partition_blocks(grid, 1, 7));
  return ps;
}

}  // namespace

TEST(PartitionInvariants, EveryCellOwnedExactlyOnceAndInRange) {
  Fixture f;
  for (const auto& p : all_partitions(f.grid)) {
    ASSERT_EQ(p.cell_owner.size(), f.grid.n_cells());
    std::vector<std::size_t> per_part(static_cast<std::size_t>(p.n_parts), 0);
    for (const int o : p.cell_owner) {
      ASSERT_GE(o, 0);
      ASSERT_LT(o, p.n_parts);
      ++per_part[static_cast<std::size_t>(o)];
    }
    std::size_t total = 0;
    for (int q = 0; q < p.n_parts; ++q) {
      const auto qs = static_cast<std::size_t>(q);
      EXPECT_EQ(per_part[qs], p.owned_cells[qs]);
      EXPECT_EQ(p.part_cells[qs].size(), p.owned_cells[qs]);
      total += p.owned_cells[qs];
    }
    EXPECT_EQ(total, f.grid.n_cells()) << "sum owned_cells == n_cells";
  }
}

TEST(PartitionInvariants, HaloDisjointFromOwned) {
  Fixture f;
  for (const auto& p : all_partitions(f.grid)) {
    for (int q = 0; q < p.n_parts; ++q) {
      const auto qs = static_cast<std::size_t>(q);
      const std::set<std::size_t> owned(p.owned_column_ids[qs].begin(),
                                        p.owned_column_ids[qs].end());
      for (const std::size_t g : p.ghost_column_ids[qs]) {
        EXPECT_EQ(owned.count(g), 0u) << "ghost column " << g
                                      << " also owned by part " << q;
        EXPECT_NE(p.column_owner[g], q);
      }
      EXPECT_EQ(p.ghost_column_ids[qs].size(), p.halo_columns[qs]);
      EXPECT_EQ(p.owned_column_ids[qs].size(), p.owned_columns[qs]);
    }
  }
}

TEST(PartitionInvariants, SendRecvSymmetricAcrossRankPairs) {
  Fixture f;
  for (const auto& p : all_partitions(f.grid)) {
    for (int q = 0; q < p.n_parts; ++q) {
      const auto qs = static_cast<std::size_t>(q);
      for (std::size_t k = 0; k < p.neighbors[qs].size(); ++k) {
        const int r = p.neighbors[qs][k];
        ASSERT_NE(r, q) << "no self-neighbor";
        const auto rs = static_cast<std::size_t>(r);
        // Find q in r's neighbor list.
        std::size_t kk = p.neighbors[rs].size();
        for (std::size_t j = 0; j < p.neighbors[rs].size(); ++j) {
          if (p.neighbors[rs][j] == q) kk = j;
        }
        ASSERT_LT(kk, p.neighbors[rs].size())
            << "neighbor relation must be symmetric";
        // What q sends to r is exactly what r receives from q.
        EXPECT_EQ(p.send_columns[qs][k], p.recv_columns[rs][kk]);
        EXPECT_EQ(p.recv_columns[qs][k], p.send_columns[rs][kk]);
        // Sent columns are owned by the sender.
        for (const std::size_t g : p.send_columns[qs][k]) {
          EXPECT_EQ(p.column_owner[g], q);
        }
      }
    }
  }
}

TEST(PartitionInvariants, RecvListsCoverTheGhosts) {
  Fixture f;
  for (const auto& p : all_partitions(f.grid)) {
    for (int q = 0; q < p.n_parts; ++q) {
      const auto qs = static_cast<std::size_t>(q);
      std::set<std::size_t> recv;
      for (const auto& lst : p.recv_columns[qs]) {
        for (const std::size_t g : lst) {
          EXPECT_TRUE(recv.insert(g).second)
              << "column received from two neighbors";
        }
      }
      const std::set<std::size_t> ghosts(p.ghost_column_ids[qs].begin(),
                                         p.ghost_column_ids[qs].end());
      EXPECT_EQ(recv, ghosts);
    }
  }
}

TEST(PartitionInvariants, LocalColumnsAreOwnedThenGhost) {
  Fixture f;
  for (const auto& p : all_partitions(f.grid)) {
    for (int q = 0; q < p.n_parts; ++q) {
      const auto qs = static_cast<std::size_t>(q);
      const std::size_t n_owned = p.owned_column_ids[qs].size();
      ASSERT_EQ(p.local_columns[qs].size(),
                n_owned + p.ghost_column_ids[qs].size());
      for (std::size_t l = 0; l < n_owned; ++l) {
        EXPECT_EQ(p.local_columns[qs][l], p.owned_column_ids[qs][l]);
      }
      for (std::size_t l = n_owned; l < p.local_columns[qs].size(); ++l) {
        EXPECT_EQ(p.local_columns[qs][l],
                  p.ghost_column_ids[qs][l - n_owned]);
      }
      const auto g2l = p.global_to_local(q, f.grid.n_nodes());
      for (std::size_t l = 0; l < p.local_columns[qs].size(); ++l) {
        EXPECT_EQ(g2l[p.local_columns[qs][l]], static_cast<int>(l));
      }
    }
  }
}

TEST(PartitionInvariants, StripsSpreadRemainder) {
  // 7 does not divide the cell count evenly: every part still owns >= 1
  // cell and counts differ by at most one.
  Fixture f;
  const auto p = mesh::partition_strips(f.grid, 7);
  std::size_t lo = f.grid.n_cells(), hi = 0;
  for (const std::size_t c : p.owned_cells) {
    EXPECT_GE(c, 1u);
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_LE(hi - lo, 1u) << "remainder must be spread, not ceil-packed";
}

TEST(PartitionInvariants, StripsRejectMorePartsThanCells) {
  const mesh::IceGeometry geom{};
  const mesh::QuadGrid tiny(geom, mesh::QuadGridConfig{800.0e3});
  ASSERT_GT(tiny.n_cells(), 0u);
  EXPECT_THROW((void)mesh::partition_strips(
                   tiny, static_cast<int>(tiny.n_cells()) + 1),
               std::runtime_error);
}

TEST(PartitionInvariants, EmptyPartsHaveFiniteImbalanceAndValidLists) {
  // A block grid wider than the ice leaves corner parts empty: imbalance
  // stays finite and the empty parts get empty-but-valid plan entries.
  Fixture f;
  const auto p = mesh::partition_blocks(f.grid, 4, 4);
  const double imb = p.imbalance();
  EXPECT_TRUE(std::isfinite(imb));
  EXPECT_GE(imb, 1.0);
  for (int q = 0; q < p.n_parts; ++q) {
    const auto qs = static_cast<std::size_t>(q);
    if (p.owned_cells[qs] > 0) continue;
    EXPECT_EQ(p.owned_columns[qs], 0u);
    EXPECT_EQ(p.halo_columns[qs], 0u);
    EXPECT_TRUE(p.neighbors[qs].empty());
    EXPECT_TRUE(p.send_columns[qs].empty());
    EXPECT_TRUE(p.recv_columns[qs].empty());
  }
}

TEST(PartitionInvariants, NeighborCountsMatchAdjacency) {
  Fixture f;
  const auto strips = mesh::partition_strips(f.grid, 4);
  EXPECT_EQ(strips.max_neighbors(), 2) << "interior strips touch 2 parts";
  EXPECT_EQ(strips.neighbor_count(0), 1);
  const auto blocks = mesh::partition_blocks(f.grid, 3, 3);
  EXPECT_GE(blocks.max_neighbors(), 3)
      << "the center block of a 3x3 grid has >= 3 populated neighbors";
  EXPECT_LE(blocks.max_neighbors(), 8);
}

TEST(MultiGpu, ScalingPointUsesRealNeighborCount) {
  gpusim::NetworkModel net;
  const double bytes = 1.0e6;
  const auto two = gpusim::scaling_point(16, 3.0e-3, bytes, net, 3.0e-3, 2);
  const auto eight = gpusim::scaling_point(16, 3.0e-3, bytes, net, 3.0e-3, 8);
  EXPECT_EQ(two.neighbors, 2);
  EXPECT_EQ(eight.neighbors, 8);
  EXPECT_NEAR(eight.halo_time_s - two.halo_time_s,
              6.0 * net.message_latency_s, 1e-15);
  // Single GPU charges no exchange partners regardless.
  const auto one = gpusim::scaling_point(1, 3.0e-3, bytes, net, 3.0e-3, 8);
  EXPECT_EQ(one.neighbors, 0);
  EXPECT_DOUBLE_EQ(one.halo_time_s, 0.0);
}

TEST(MultiGpu, HaloBytesFormula) {
  // 100 columns x 21 levels x 2 dofs x 8 bytes.
  EXPECT_DOUBLE_EQ(gpusim::halo_bytes(100, 21), 100.0 * 21 * 2 * 8);
}

TEST(MultiGpu, ScalingPointComposition) {
  gpusim::NetworkModel net;
  const auto single = gpusim::scaling_point(1, 3.0e-3, 0.0, net, 3.0e-3);
  EXPECT_DOUBLE_EQ(single.total_time_s, 3.0e-3);
  EXPECT_DOUBLE_EQ(single.efficiency, 1.0);

  const double bytes = 1.0e6;
  const auto multi = gpusim::scaling_point(16, 3.0e-3, bytes, net, 3.0e-3);
  EXPECT_GT(multi.total_time_s, single.total_time_s);
  EXPECT_LT(multi.efficiency, 1.0);
  EXPECT_NEAR(multi.halo_time_s,
              bytes / net.nic_bw_bytes_per_s +
                  net.message_latency_s * net.neighbors,
              1e-12);
}

TEST(ReportGenerator, ProducesAllSections) {
  core::StudyConfig cfg;
  cfg.n_cells = 16384;
  cfg.sim.scale = 0.25;
  const core::OptimizationStudy study(cfg);
  const auto md = core::generate_markdown_report(study);
  for (const char* needle :
       {"# MiniMALI optimization study", "Table III", "Fig. 3", "Fig. 5",
        "Table IV", "Table II", "Ablation", "Jacobian", "Residual",
        "NVIDIA A100", "AMD MI250X"}) {
    EXPECT_NE(md.find(needle), std::string::npos) << needle;
  }
}

TEST(ReportGenerator, SectionsCanBeDisabled) {
  core::StudyConfig cfg;
  cfg.n_cells = 16384;
  const core::OptimizationStudy study(cfg);
  core::ReportOptions opts;
  opts.include_ablation = false;
  opts.include_launch_bounds = false;
  const auto md = core::generate_markdown_report(study, opts);
  EXPECT_EQ(md.find("Ablation"), std::string::npos);
  EXPECT_EQ(md.find("LaunchBounds"), std::string::npos);
  EXPECT_NE(md.find("Table III"), std::string::npos);
}
