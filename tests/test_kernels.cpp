// StokesFOResid kernel tests — the heart of the reproduction: every
// optimization variant must be numerically identical to the baseline for
// both evaluation types, and the SFad-computed Jacobian must match finite
// differences of the residual.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "ad/sfad.hpp"
#include "physics/eval_types.hpp"
#include "physics/stokes_fo_resid.hpp"
#include "portability/parallel.hpp"

using namespace mali;
using physics::StokesFOResid;
using Fad = physics::JacobianEval::ScalarT;

namespace {

template <class ScalarT>
struct KernelFixtureData {
  static constexpr std::size_t C = 16, N = 8, Q = 8;
  pk::View<ScalarT, 4> Ugrad{"Ugrad", C, Q, 2, 3};
  pk::View<ScalarT, 2> mu{"muLandIce", C, Q};
  pk::View<ScalarT, 3> force{"force", C, Q, 2};
  pk::View<double, 4> wGradBF{"wGradBF", C, N, Q, 3};
  pk::View<double, 3> wBF{"wBF", C, N, Q};
  pk::View<ScalarT, 3> Residual{"Residual", C, N, 2};

  explicit KernelFixtureData(unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (std::size_t c = 0; c < C; ++c) {
      for (std::size_t q = 0; q < Q; ++q) {
        assign(mu(c, q), 1.0 + 0.5 * dist(rng), static_cast<int>(q) % 16);
        for (int v = 0; v < 2; ++v) {
          assign(force(c, q, v), dist(rng), (static_cast<int>(q) + v) % 16);
          for (int d = 0; d < 3; ++d) {
            assign(Ugrad(c, q, v, d), dist(rng),
                   (static_cast<int>(q) + v + d) % 16);
          }
        }
        for (std::size_t k = 0; k < N; ++k) {
          wBF(c, k, q) = 0.5 + 0.1 * dist(rng);
          for (int d = 0; d < 3; ++d) wGradBF(c, k, q, d) = dist(rng);
        }
      }
    }
  }

  static void assign(ScalarT& dst, double v, int seed_dir) {
    if constexpr (ad::is_fad_v<ScalarT>) {
      dst = ScalarT(v, seed_dir);  // give derivatives nontrivial structure
      dst.fastAccessDx((seed_dir + 5) % 16) = 0.25 * v;
    } else {
      dst = v;
      (void)seed_dir;
    }
  }

  StokesFOResid<ScalarT> kernel() const {
    StokesFOResid<ScalarT> k;
    k.Ugrad = Ugrad;
    k.muLandIce = mu;
    k.force = force;
    k.wGradBF = wGradBF;
    k.wBF = wBF;
    k.Residual = Residual;
    k.numNodes = N;
    k.numQPs = Q;
    k.cond = false;
    return k;
  }
};

template <class ScalarT, class Tag>
std::vector<double> run_variant(const KernelFixtureData<ScalarT>& data) {
  auto k = data.kernel();
  data.Residual.fill(ScalarT(-999.0));  // poison: variants must overwrite
  pk::parallel_for("k", pk::RangePolicy<pk::Serial, Tag>(data.C), k);
  std::vector<double> out;
  for (std::size_t c = 0; c < data.C; ++c) {
    for (std::size_t n = 0; n < data.N; ++n) {
      for (int v = 0; v < 2; ++v) {
        const ScalarT& r = data.Residual(c, n, v);
        out.push_back(ad::value_of(r));
        if constexpr (ad::is_fad_v<ScalarT>) {
          for (int l = 0; l < 16; ++l) out.push_back(r.dx(l));
        }
      }
    }
  }
  return out;
}

template <class ScalarT>
void expect_all_variants_identical(unsigned seed, double tol) {
  KernelFixtureData<ScalarT> data(seed);
  const auto base = run_variant<ScalarT, physics::LandIce_3D_Tag>(data);
  const auto opt = run_variant<ScalarT, physics::LandIce_3D_Opt_Tag<8>>(data);
  const auto loop =
      run_variant<ScalarT, physics::LandIce_3D_LoopOptOnly_Tag<8>>(data);
  const auto fused = run_variant<ScalarT, physics::LandIce_3D_FusedOnly_Tag>(data);
  const auto local =
      run_variant<ScalarT, physics::LandIce_3D_LocalAccumOnly_Tag>(data);
  ASSERT_EQ(base.size(), opt.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    const double scale = std::max(1.0, std::abs(base[i]));
    EXPECT_NEAR(opt[i], base[i], tol * scale) << "optimized @" << i;
    EXPECT_NEAR(loop[i], base[i], tol * scale) << "loop-opt @" << i;
    EXPECT_NEAR(fused[i], base[i], tol * scale) << "fused @" << i;
    EXPECT_NEAR(local[i], base[i], tol * scale) << "local-accum @" << i;
  }
}

}  // namespace

class KernelEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(KernelEquivalence, ResidualVariantsAgree) {
  expect_all_variants_identical<double>(GetParam(), 1e-13);
}

TEST_P(KernelEquivalence, JacobianVariantsAgree) {
  expect_all_variants_identical<Fad>(GetParam(), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelEquivalence,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u));

TEST(Kernel, ResidualIsLinearInViscosityStress) {
  // With zero force the residual is linear in mu: doubling mu doubles it.
  KernelFixtureData<double> data(7);
  data.force.fill(0.0);
  const auto r1 = run_variant<double, physics::LandIce_3D_Opt_Tag<8>>(data);
  for (std::size_t c = 0; c < data.C; ++c) {
    for (std::size_t q = 0; q < data.Q; ++q) data.mu(c, q) *= 2.0;
  }
  const auto r2 = run_variant<double, physics::LandIce_3D_Opt_Tag<8>>(data);
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_NEAR(r2[i], 2.0 * r1[i], 1e-12 * std::max(1.0, std::abs(r1[i])));
  }
}

TEST(Kernel, ZeroInputsGiveZeroResidual) {
  KernelFixtureData<double> data(11);
  data.Ugrad.fill(0.0);
  data.mu.fill(0.0);
  data.force.fill(0.0);
  const auto r = run_variant<double, physics::LandIce_3D_Tag>(data);
  for (double v : r) EXPECT_EQ(v, 0.0);
}

TEST(Kernel, ForceOnlyContribution) {
  // With mu = 0, Residual(c,n,v) = sum_q force(c,q,v) * wBF(c,n,q).
  KernelFixtureData<double> data(13);
  data.mu.fill(0.0);
  const auto r = run_variant<double, physics::LandIce_3D_Opt_Tag<8>>(data);
  std::size_t idx = 0;
  for (std::size_t c = 0; c < data.C; ++c) {
    for (std::size_t n = 0; n < data.N; ++n) {
      for (int v = 0; v < 2; ++v) {
        double expect = 0.0;
        for (std::size_t q = 0; q < data.Q; ++q) {
          expect += data.force(c, q, v) * data.wBF(c, n, q);
        }
        EXPECT_NEAR(r[idx++], expect, 1e-12);
      }
    }
  }
}

TEST(Kernel, StressSymmetryBetweenComponents) {
  // Swapping the roles of u and v (Ugrad components and force components)
  // swaps the residual components — the FO stress form is symmetric.
  KernelFixtureData<double> a(17);
  KernelFixtureData<double> b(17);
  for (std::size_t c = 0; c < a.C; ++c) {
    for (std::size_t q = 0; q < a.Q; ++q) {
      // b: swap components and the x/y derivative directions.
      for (int d = 0; d < 3; ++d) {
        const int ds = d == 2 ? 2 : 1 - d;
        b.Ugrad(c, q, 0, d) = a.Ugrad(c, q, 1, ds);
        b.Ugrad(c, q, 1, d) = a.Ugrad(c, q, 0, ds);
      }
      b.force(c, q, 0) = a.force(c, q, 1);
      b.force(c, q, 1) = a.force(c, q, 0);
      for (std::size_t k = 0; k < a.N; ++k) {
        const double g0 = a.wGradBF(c, k, q, 0);
        b.wGradBF(c, k, q, 0) = a.wGradBF(c, k, q, 1);
        b.wGradBF(c, k, q, 1) = g0;
      }
    }
  }
  const auto ra = run_variant<double, physics::LandIce_3D_Opt_Tag<8>>(a);
  const auto rb = run_variant<double, physics::LandIce_3D_Opt_Tag<8>>(b);
  // ra[(c,n,0)] should equal rb[(c,n,1)] and vice versa.
  for (std::size_t i = 0; i < ra.size(); i += 2) {
    EXPECT_NEAR(ra[i], rb[i + 1], 1e-12 * std::max(1.0, std::abs(ra[i])));
    EXPECT_NEAR(ra[i + 1], rb[i], 1e-12 * std::max(1.0, std::abs(ra[i + 1])));
  }
}

// ---------------------------------------------------------------------------
// Non-default node counts.  numNodes is a runtime field: the tag-templated
// variants carry the count in their type, the runtime variants must honor
// it, and LocalAccumOnly (fixed kMaxNodes = 8 accumulators) must refuse
// larger elements instead of silently overrunning its stack arrays.
// ---------------------------------------------------------------------------

namespace {

struct VarNodeData {
  std::size_t C, N, Q;
  pk::View<double, 4> Ugrad;
  pk::View<double, 2> mu;
  pk::View<double, 3> force;
  pk::View<double, 4> wGradBF;
  pk::View<double, 3> wBF;
  pk::View<double, 3> Residual;

  VarNodeData(std::size_t c, std::size_t n, std::size_t q, unsigned seed)
      : C(c),
        N(n),
        Q(q),
        Ugrad("Ugrad", C, Q, 2, 3),
        mu("mu", C, Q),
        force("force", C, Q, 2),
        wGradBF("wGradBF", C, N, Q, 3),
        wBF("wBF", C, N, Q),
        Residual("Residual", C, N, 2) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (std::size_t cc = 0; cc < C; ++cc) {
      for (std::size_t qq = 0; qq < Q; ++qq) {
        mu(cc, qq) = 1.0 + 0.5 * dist(rng);
        for (int v = 0; v < 2; ++v) {
          force(cc, qq, v) = dist(rng);
          for (int d = 0; d < 3; ++d) Ugrad(cc, qq, v, d) = dist(rng);
        }
        for (std::size_t k = 0; k < N; ++k) {
          wBF(cc, k, qq) = 0.5 + 0.1 * dist(rng);
          for (int d = 0; d < 3; ++d) wGradBF(cc, k, qq, d) = dist(rng);
        }
      }
    }
  }

  StokesFOResid<double> kernel() const {
    StokesFOResid<double> k;
    k.Ugrad = Ugrad;
    k.muLandIce = mu;
    k.force = force;
    k.wGradBF = wGradBF;
    k.wBF = wBF;
    k.Residual = Residual;
    k.numNodes = static_cast<unsigned>(N);
    k.numQPs = static_cast<unsigned>(Q);
    k.cond = false;
    return k;
  }

  template <class Tag>
  std::vector<double> run() const {
    auto k = kernel();
    Residual.fill(-999.0);
    pk::parallel_for("k", pk::RangePolicy<pk::Serial, Tag>(C), k);
    std::vector<double> out;
    for (std::size_t cc = 0; cc < C; ++cc) {
      for (std::size_t n = 0; n < N; ++n) {
        for (int v = 0; v < 2; ++v) out.push_back(Residual(cc, n, v));
      }
    }
    return out;
  }
};

}  // namespace

TEST(KernelNodeCounts, AblationVariantsAgreeWithFourNodes) {
  // A 4-node element (e.g. a degenerate prism workset) is within every
  // variant's capacity; all must agree with the baseline.
  VarNodeData data(8, 4, 8, 77u);
  const auto base = data.run<physics::LandIce_3D_Tag>();
  const auto opt = data.run<physics::LandIce_3D_Opt_Tag<4>>();
  const auto loop = data.run<physics::LandIce_3D_LoopOptOnly_Tag<4>>();
  const auto fused = data.run<physics::LandIce_3D_FusedOnly_Tag>();
  const auto local = data.run<physics::LandIce_3D_LocalAccumOnly_Tag>();
  for (std::size_t i = 0; i < base.size(); ++i) {
    const double s = std::max(1.0, std::abs(base[i]));
    EXPECT_NEAR(opt[i], base[i], 1e-13 * s);
    EXPECT_NEAR(loop[i], base[i], 1e-13 * s);
    EXPECT_NEAR(fused[i], base[i], 1e-13 * s);
    EXPECT_NEAR(local[i], base[i], 1e-13 * s);
  }
}

TEST(KernelNodeCounts, LocalAccumOnlyRejectsMoreThanEightNodes) {
  // Regression: kMaxNodes = 8 is hardcoded while numNodes is runtime —
  // before the guard this overran res0/res1 on the stack.
  VarNodeData data(4, 12, 8, 78u);
  EXPECT_THROW((data.run<physics::LandIce_3D_LocalAccumOnly_Tag>()),
               mali::Error);
}

TEST(KernelNodeCounts, RuntimeBoundVariantsHandleTwelveNodes) {
  // The baseline/fused variants carry runtime bounds and the Opt tag is
  // templated on the count, so a 12-node element is fine for all of them.
  VarNodeData data(4, 12, 8, 79u);
  const auto base = data.run<physics::LandIce_3D_Tag>();
  const auto fused = data.run<physics::LandIce_3D_FusedOnly_Tag>();
  const auto opt = data.run<physics::LandIce_3D_Opt_Tag<12>>();
  const auto loop = data.run<physics::LandIce_3D_LoopOptOnly_Tag<12>>();
  for (std::size_t i = 0; i < base.size(); ++i) {
    const double s = std::max(1.0, std::abs(base[i]));
    EXPECT_NEAR(fused[i], base[i], 1e-13 * s);
    EXPECT_NEAR(opt[i], base[i], 1e-13 * s);
    EXPECT_NEAR(loop[i], base[i], 1e-13 * s);
  }
}

TEST(Kernel, JacobianValueEqualsResidual) {
  // The SFad evaluation's values must equal the double evaluation exactly.
  KernelFixtureData<double> rd(29);
  KernelFixtureData<Fad> jd(0);
  // Copy the double data into the Fad fixture (passive values).
  for (std::size_t c = 0; c < rd.C; ++c) {
    for (std::size_t q = 0; q < rd.Q; ++q) {
      jd.mu(c, q) = Fad(rd.mu(c, q));
      for (int v = 0; v < 2; ++v) {
        jd.force(c, q, v) = Fad(rd.force(c, q, v));
        for (int d = 0; d < 3; ++d) {
          jd.Ugrad(c, q, v, d) = Fad(rd.Ugrad(c, q, v, d));
        }
      }
      for (std::size_t k = 0; k < rd.N; ++k) {
        jd.wBF(c, k, q) = rd.wBF(c, k, q);
        for (int d = 0; d < 3; ++d) jd.wGradBF(c, k, q, d) = rd.wGradBF(c, k, q, d);
      }
    }
  }
  const auto r = run_variant<double, physics::LandIce_3D_Tag>(rd);
  const auto j = run_variant<Fad, physics::LandIce_3D_Tag>(jd);
  // j interleaves value + 16 derivatives per entry.
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(j[i * 17], r[i], 1e-13 * std::max(1.0, std::abs(r[i])));
  }
}
