// Integration tests for the full StokesFOProblem: assembly consistency
// (AD Jacobian vs finite differences), variant-independence of the solve,
// Dirichlet handling, and the paper's §III-B acceptance test (mean velocity
// against a stored reference, rtol 1e-5) at reduced resolution.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/semicoarsening_amg.hpp"
#include "nonlinear/newton.hpp"
#include "physics/stokes_fo_problem.hpp"

using namespace mali;
using physics::KernelVariant;
using physics::StokesFOConfig;
using physics::StokesFOProblem;

namespace {

StokesFOConfig coarse_config(KernelVariant v = KernelVariant::kOptimized) {
  StokesFOConfig cfg;
  cfg.dx_m = 250.0e3;  // very coarse for CI speed
  cfg.n_layers = 4;
  cfg.variant = v;
  return cfg;
}

std::vector<double> random_state(const StokesFOProblem& p, unsigned seed,
                                 double scale) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-scale, scale);
  std::vector<double> U(p.n_dofs());
  for (auto& u : U) u = dist(rng);
  return U;
}

}  // namespace

TEST(StokesFOProblem, BuildsConsistentSizes) {
  StokesFOProblem p(coarse_config());
  EXPECT_EQ(p.n_dofs(), 2 * p.mesh().n_nodes());
  EXPECT_EQ(p.workset().n_cells, p.mesh().n_cells());
  EXPECT_GT(p.dof_map().dirichlet_dofs().size(), 0u);
  const auto J = p.create_matrix();
  EXPECT_EQ(J.n_rows(), p.n_dofs());
}

TEST(StokesFOProblem, ResidualAndJacobianValueAgree) {
  StokesFOProblem p(coarse_config());
  const auto U = p.analytic_initial_guess();
  std::vector<double> F1, F2;
  p.residual(U, F1);
  auto J = p.create_matrix();
  p.residual_and_jacobian(U, F2, J);
  ASSERT_EQ(F1.size(), F2.size());
  for (std::size_t i = 0; i < F1.size(); ++i) {
    EXPECT_NEAR(F1[i], F2[i], 1e-9 * std::max(1.0, std::abs(F1[i]))) << i;
  }
}

TEST(StokesFOProblem, JacobianMatchesDirectionalFiniteDifference) {
  StokesFOProblem p(coarse_config());
  auto U = p.analytic_initial_guess();
  std::vector<double> F;
  auto J = p.create_matrix();
  p.residual_and_jacobian(U, F, J);

  const auto dir = random_state(p, 99, 1.0);
  std::vector<double> Jd;
  J.apply(dir, Jd);

  // Central differences carry O(h^2) truncation error from the strongly
  // curved Glen's-law viscosity; verify both the match and the second-order
  // shrinkage of the discrepancy, which rules out a Jacobian bug.
  auto fd_error = [&](double h) {
    std::vector<double> Up(U), Um(U), Fp, Fm;
    for (std::size_t i = 0; i < U.size(); ++i) {
      Up[i] += h * dir[i];
      Um[i] -= h * dir[i];
    }
    p.residual(Up, Fp);
    p.residual(Um, Fm);
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < U.size(); ++i) {
      const double fd = (Fp[i] - Fm[i]) / (2.0 * h);
      num += (fd - Jd[i]) * (fd - Jd[i]);
      den += fd * fd;
    }
    return std::sqrt(num / den);
  };
  const double e1 = fd_error(1e-4);
  const double e2 = fd_error(5e-5);
  EXPECT_LT(e1, 1e-3) << "AD Jacobian must match directional FD";
  EXPECT_LT(e2, 0.4 * e1)
      << "FD discrepancy must shrink ~quadratically (truncation-dominated)";
}

TEST(StokesFOProblem, DirichletRowsAreScaledIdentity) {
  StokesFOProblem p(coarse_config());
  auto U = random_state(p, 3, 50.0);
  std::vector<double> F;
  auto J = p.create_matrix();
  p.residual_and_jacobian(U, F, J);
  const auto& dirs = p.dof_map().dirichlet_dofs();
  ASSERT_FALSE(dirs.empty());
  // Rows are s*I with s the mean interior diagonal (conditioning); all
  // Dirichlet rows share the same scale and have no off-diagonal coupling.
  const double s = J.get(dirs[0], dirs[0]);
  EXPECT_GT(s, 0.0);
  const auto& rp = J.row_ptr();
  const auto& cols = J.cols();
  const auto& vals = J.values();
  for (std::size_t d : dirs) {
    EXPECT_DOUBLE_EQ(F[d], s * U[d]);
    EXPECT_DOUBLE_EQ(J.get(d, d), s);
    for (std::size_t k = rp[d]; k < rp[d + 1]; ++k) {
      if (cols[k] != d) EXPECT_EQ(vals[k], 0.0);
    }
  }
}

class VariantAssembly : public ::testing::TestWithParam<KernelVariant> {};

TEST_P(VariantAssembly, ResidualIndependentOfVariant) {
  StokesFOProblem base(coarse_config(KernelVariant::kBaseline));
  StokesFOProblem var(coarse_config(GetParam()));
  const auto U = base.analytic_initial_guess();
  std::vector<double> Fb, Fv;
  base.residual(U, Fb);
  var.residual(U, Fv);
  ASSERT_EQ(Fb.size(), Fv.size());
  for (std::size_t i = 0; i < Fb.size(); ++i) {
    EXPECT_NEAR(Fv[i], Fb[i], 1e-9 * std::max(1.0, std::abs(Fb[i])));
  }
}

TEST_P(VariantAssembly, JacobianIndependentOfVariant) {
  StokesFOProblem base(coarse_config(KernelVariant::kBaseline));
  StokesFOProblem var(coarse_config(GetParam()));
  const auto U = base.analytic_initial_guess();
  std::vector<double> Fb, Fv;
  auto Jb = base.create_matrix();
  auto Jv = var.create_matrix();
  base.residual_and_jacobian(U, Fb, Jb);
  var.residual_and_jacobian(U, Fv, Jv);
  const auto& vb = Jb.values();
  const auto& vv = Jv.values();
  ASSERT_EQ(vb.size(), vv.size());
  for (std::size_t i = 0; i < vb.size(); ++i) {
    EXPECT_NEAR(vv[i], vb[i], 1e-9 * std::max(1.0, std::abs(vb[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, VariantAssembly,
                         ::testing::Values(KernelVariant::kOptimized,
                                           KernelVariant::kLoopOptOnly,
                                           KernelVariant::kFusedOnly,
                                           KernelVariant::kLocalAccumOnly));

TEST(StokesFOProblem, NewtonSolveReducesResidual) {
  StokesFOProblem p(coarse_config());
  linalg::SemicoarseningAmg amg(p.extrusion_info());
  nonlinear::NewtonConfig ncfg;
  ncfg.max_iters = 12;
  nonlinear::NewtonSolver newton(ncfg);
  std::vector<double> U(p.n_dofs(), 0.0);
  const auto r = newton.solve(p, amg, U);
  EXPECT_LT(r.residual_norm, 1e-3 * r.initial_norm)
      << "12 Newton steps should reduce ||F|| by >1e3";
  const double mean = p.mean_velocity(U);
  EXPECT_GT(mean, 1.0);      // ice flows
  EXPECT_LT(mean, 50000.0);  // but not unphysically fast (m/yr)
}

TEST(StokesFOProblem, SolveIsVariantIndependent) {
  double means[2];
  int i = 0;
  for (auto v : {KernelVariant::kBaseline, KernelVariant::kOptimized}) {
    StokesFOProblem p(coarse_config(v));
    linalg::SemicoarseningAmg amg(p.extrusion_info());
    nonlinear::NewtonConfig ncfg;
    ncfg.max_iters = 8;
    nonlinear::NewtonSolver newton(ncfg);
    std::vector<double> U(p.n_dofs(), 0.0);
    newton.solve(p, amg, U);
    means[i++] = p.mean_velocity(U);
  }
  EXPECT_NEAR(means[1] / means[0], 1.0, 1e-8);
}

TEST(StokesFOProblem, AnalyticGuessRespectsBoundaries) {
  StokesFOProblem p(coarse_config());
  const auto U = p.analytic_initial_guess();
  for (std::size_t d : p.dof_map().dirichlet_dofs()) EXPECT_EQ(U[d], 0.0);
  EXPECT_GT(p.mean_velocity(U), 0.0);
}

TEST(StokesFOProblem, AnalyticGuessSpeedsIncreaseTowardSurface) {
  StokesFOProblem p(coarse_config());
  const auto U = p.analytic_initial_guess();
  const auto& msh = p.mesh();
  for (std::size_t col = 0; col < msh.base().n_nodes(); col += 9) {
    if (msh.base().is_margin_node(col)) continue;
    double prev = -1.0;
    for (std::size_t lev = 0; lev < msh.levels(); ++lev) {
      const std::size_t n = msh.node_id(col, lev);
      const double s = std::hypot(U[2 * n], U[2 * n + 1]);
      EXPECT_GE(s, prev - 1e-12);
      prev = s;
    }
  }
}

// The paper's acceptance criterion: "the mean value of the final solution is
// compared to a previously tested value using a relative tolerance of 1e-5".
// The reference was produced by this configuration at commit time; any
// regression in mesh, physics, assembly or solvers will trip it.
TEST(AntarcticaAcceptance, MeanVelocityMatchesStoredReference) {
  StokesFOConfig cfg;
  cfg.dx_m = 200.0e3;
  cfg.n_layers = 5;
  StokesFOProblem p(cfg);
  linalg::SemicoarseningAmg amg(p.extrusion_info());
  nonlinear::NewtonConfig ncfg;
  ncfg.max_iters = 8;  // the paper's nonlinear step count
  ncfg.gmres.rel_tol = 1e-6;
  nonlinear::NewtonSolver newton(ncfg);
  std::vector<double> U(p.n_dofs(), 0.0);
  newton.solve(p, amg, U);
  const double mean = p.mean_velocity(U);
  // Frozen reference (m/yr) for this configuration; regenerate by printing
  // `mean` after an intentional physics/solver change.
  constexpr double kReference = 161.994681;
  RecordProperty("mean_velocity", std::to_string(mean));
  EXPECT_NEAR(mean / kReference, 1.0, 1e-5);
}
