// Prismatic (WEDGE6) discretization tests: basis properties, the triangle
// base grid, the prism geometry workset, and the StokesFOResid kernels run
// on the 6-node topology (including the SFad<12> Jacobian path).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>
#include <set>

#include "ad/sfad.hpp"
#include "core/kernel_traces.hpp"
#include "fem/prism_geometry.hpp"
#include "fem/wedge6.hpp"
#include "gpusim/exec_model.hpp"
#include "mesh/tri_grid.hpp"
#include "perf/data_movement.hpp"
#include "physics/stokes_fo_resid.hpp"
#include "portability/parallel.hpp"

using namespace mali;
using fem::Wedge6Basis;

TEST(Wedge6, KroneckerAtNodes) {
  const double nodes[6][3] = {{0, 0, -1}, {1, 0, -1}, {0, 1, -1},
                              {0, 0, 1},  {1, 0, 1},  {0, 1, 1}};
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      EXPECT_NEAR(
          Wedge6Basis::value(j, nodes[i][0], nodes[i][1], nodes[i][2]),
          i == j ? 1.0 : 0.0, 1e-14);
    }
  }
}

class Wedge6RandomPoint : public ::testing::TestWithParam<int> {};

TEST_P(Wedge6RandomPoint, PartitionOfUnityAndGradients) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> dist(0.05, 0.9);
  const double xi = dist(rng) * 0.5;
  const double eta = dist(rng) * (1.0 - xi) * 0.9;
  const double zeta = 2.0 * dist(rng) - 1.0;
  double sum = 0.0, g[3] = {0, 0, 0};
  for (int k = 0; k < 6; ++k) {
    sum += Wedge6Basis::value(k, xi, eta, zeta);
    const auto gr = Wedge6Basis::gradient(k, xi, eta, zeta);
    for (int d = 0; d < 3; ++d) g[d] += gr[d];
  }
  EXPECT_NEAR(sum, 1.0, 1e-14);
  for (int d = 0; d < 3; ++d) EXPECT_NEAR(g[d], 0.0, 1e-14);

  // Gradient vs finite differences.
  const double h = 1e-7;
  for (int k = 0; k < 6; ++k) {
    const auto gr = Wedge6Basis::gradient(k, xi, eta, zeta);
    EXPECT_NEAR(gr[0],
                (Wedge6Basis::value(k, xi + h, eta, zeta) -
                 Wedge6Basis::value(k, xi - h, eta, zeta)) /
                    (2 * h),
                1e-7);
    EXPECT_NEAR(gr[2],
                (Wedge6Basis::value(k, xi, eta, zeta + h) -
                 Wedge6Basis::value(k, xi, eta, zeta - h)) /
                    (2 * h),
                1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Wedge6RandomPoint, ::testing::Range(0, 6));

TEST(WedgeQuadrature, WeightsSumToReferenceVolume) {
  const auto qps = fem::gauss_wedge();
  ASSERT_EQ(qps.size(), 6u);
  double w = 0.0;
  for (const auto& q : qps) w += q.weight;
  EXPECT_NEAR(w, 1.0, 1e-14);  // triangle area 1/2 x interval length 2
}

TEST(WedgeQuadrature, IntegratesQuadraticsInPlane) {
  // Midside rule is degree-2 exact on the triangle: int xi^2 over the unit
  // triangle = 1/12; with the zeta extent of 2: 1/6.
  const auto qps = fem::gauss_wedge();
  double num = 0.0;
  for (const auto& q : qps) num += q.weight * q.xi * q.xi;
  EXPECT_NEAR(num, 1.0 / 6.0, 1e-14);
}

// ---- triangle grid ----

class TriGridTest : public ::testing::Test {
 protected:
  mesh::IceGeometry geom{};
  std::shared_ptr<mesh::QuadGrid> quads =
      std::make_shared<mesh::QuadGrid>(geom, mesh::QuadGridConfig{150.0e3});
  mesh::TriGrid tris{quads};
};

TEST_F(TriGridTest, TwoTrianglesPerQuad) {
  EXPECT_EQ(tris.n_cells(), 2 * quads->n_cells());
  EXPECT_EQ(tris.n_nodes(), quads->n_nodes());
}

TEST_F(TriGridTest, AllTrianglesCcwWithHalfQuadArea) {
  const double half = 0.5 * quads->dx() * quads->dx();
  for (std::size_t c = 0; c < tris.n_cells(); ++c) {
    EXPECT_NEAR(tris.signed_area(c), half, 1e-6);
  }
}

TEST_F(TriGridTest, TrianglePairCoversQuad) {
  for (std::size_t q = 0; q < quads->n_cells(); ++q) {
    std::set<std::size_t> quad_nodes, tri_nodes;
    for (int k = 0; k < 4; ++k) quad_nodes.insert(quads->cell_node(q, k));
    for (std::size_t t = 2 * q; t < 2 * q + 2; ++t) {
      for (int k = 0; k < 3; ++k) tri_nodes.insert(tris.cell_node(t, k));
    }
    EXPECT_EQ(tri_nodes, quad_nodes);
  }
}

// ---- prism geometry workset ----

class PrismWorksetTest : public ::testing::Test {
 protected:
  PrismWorksetTest()
      : quads(std::make_shared<mesh::QuadGrid>(geom,
                                               mesh::QuadGridConfig{200.0e3})),
        tris(quads),
        ws(fem::build_prism_geometry(tris, geom, 4)) {}
  mesh::IceGeometry geom{};
  std::shared_ptr<mesh::QuadGrid> quads;
  mesh::TriGrid tris;
  fem::GeometryWorkset ws;
};

TEST_F(PrismWorksetTest, ShapesAndTopology) {
  EXPECT_EQ(ws.num_nodes, 6);
  EXPECT_EQ(ws.num_qps, 6);
  EXPECT_EQ(ws.n_cells, tris.n_cells() * 4);
  EXPECT_EQ(ws.n_basal_faces, tris.n_cells());
  EXPECT_EQ(ws.face_nodes, 3);
}

TEST_F(PrismWorksetTest, PositiveJacobians) {
  for (std::size_t c = 0; c < ws.n_cells; ++c) {
    for (int q = 0; q < ws.num_qps; ++q) EXPECT_GT(ws.detJ(c, q), 0.0);
  }
}

TEST_F(PrismWorksetTest, GradientsAnnihilateConstantsAndReproduceLinears) {
  const double a[3] = {1.1, -0.7, 3.3};
  for (std::size_t c = 0; c < ws.n_cells; c += 7) {
    for (int q = 0; q < ws.num_qps; ++q) {
      double g0[3] = {0, 0, 0}, gl[3] = {0, 0, 0};
      for (int k = 0; k < 6; ++k) {
        const double f = a[0] * ws.coords(c, k, 0) + a[1] * ws.coords(c, k, 1) +
                         a[2] * ws.coords(c, k, 2);
        for (int d = 0; d < 3; ++d) {
          g0[d] += ws.gradBF(c, k, q, d);
          gl[d] += f * ws.gradBF(c, k, q, d);
        }
      }
      for (int d = 0; d < 3; ++d) {
        EXPECT_NEAR(g0[d], 0.0, 1e-12);
        EXPECT_NEAR(gl[d], a[d], 1e-9);
      }
    }
  }
}

TEST_F(PrismWorksetTest, PrismVolumesMatchHexCounterparts) {
  // The two prisms of a quad column sum to the hex volume of the same
  // column and layer (both discretize the same ice slab).
  const auto qps = fem::gauss_wedge();
  double total = 0.0;
  for (std::size_t c = 0; c < ws.n_cells; ++c) {
    for (int q = 0; q < ws.num_qps; ++q) {
      total += ws.detJ(c, q) * qps[static_cast<std::size_t>(q)].weight;
    }
  }
  // Compare against the area-integral of thickness (flat-ish columns).
  double expected = 0.0;
  for (std::size_t t = 0; t < tris.n_cells(); ++t) {
    double cx = 0.0, cy = 0.0;
    for (int k = 0; k < 3; ++k) {
      cx += tris.node_x(tris.cell_node(t, k)) / 3.0;
      cy += tris.node_y(tris.cell_node(t, k)) / 3.0;
    }
    expected += tris.signed_area(t) *
                std::max(geom.thickness(cx, cy), geom.config().min_thickness_m);
  }
  EXPECT_NEAR(total / expected, 1.0, 0.08);
}

// ---- kernels on the prism topology ----

namespace {

template <class ScalarT>
struct PrismKernelData {
  static constexpr std::size_t C = 10, N = 6, Q = 6;
  pk::View<ScalarT, 4> Ugrad{"Ugrad", C, Q, 2, 3};
  pk::View<ScalarT, 2> mu{"muLandIce", C, Q};
  pk::View<ScalarT, 3> force{"force", C, Q, 2};
  pk::View<double, 4> wGradBF{"wGradBF", C, N, Q, 3};
  pk::View<double, 3> wBF{"wBF", C, N, Q};
  pk::View<ScalarT, 3> Residual{"Residual", C, N, 2};

  explicit PrismKernelData(unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (std::size_t c = 0; c < C; ++c) {
      for (std::size_t q = 0; q < Q; ++q) {
        mu(c, q) = ScalarT(1.0 + 0.3 * dist(rng));
        for (int v = 0; v < 2; ++v) {
          force(c, q, v) = ScalarT(dist(rng));
          for (int d = 0; d < 3; ++d) Ugrad(c, q, v, d) = ScalarT(dist(rng));
        }
        for (std::size_t k = 0; k < N; ++k) {
          wBF(c, k, q) = dist(rng);
          for (int d = 0; d < 3; ++d) wGradBF(c, k, q, d) = dist(rng);
        }
      }
    }
  }

  physics::StokesFOResid<ScalarT> kernel() const {
    physics::StokesFOResid<ScalarT> k;
    k.Ugrad = Ugrad;
    k.muLandIce = mu;
    k.force = force;
    k.wGradBF = wGradBF;
    k.wBF = wBF;
    k.Residual = Residual;
    k.numNodes = N;
    k.numQPs = Q;
    return k;
  }
};

}  // namespace

TEST(PrismKernel, BaselineAndOptimizedAgreeOnSixNodes) {
  using Fad12 = ad::SFad<double, 12>;
  PrismKernelData<Fad12> data(77);
  auto k = data.kernel();
  pk::parallel_for("b", pk::RangePolicy<pk::Serial, physics::LandIce_3D_Tag>(
                            data.C),
                   k);
  std::vector<double> base;
  for (std::size_t c = 0; c < data.C; ++c) {
    for (std::size_t n = 0; n < data.N; ++n) {
      for (int v = 0; v < 2; ++v) {
        base.push_back(data.Residual(c, n, v).val());
        for (int l = 0; l < 12; ++l) base.push_back(data.Residual(c, n, v).dx(l));
      }
    }
  }
  pk::parallel_for(
      "o",
      pk::RangePolicy<pk::Serial, physics::LandIce_3D_Opt_Tag<6>>(data.C), k);
  std::size_t i = 0;
  for (std::size_t c = 0; c < data.C; ++c) {
    for (std::size_t n = 0; n < data.N; ++n) {
      for (int v = 0; v < 2; ++v) {
        EXPECT_NEAR(data.Residual(c, n, v).val(), base[i++], 1e-13);
        for (int l = 0; l < 12; ++l) {
          EXPECT_NEAR(data.Residual(c, n, v).dx(l), base[i++], 1e-13);
        }
      }
    }
  }
}

TEST(PrismKernel, TraceMinBytesMatchClosedForm) {
  for (auto kind : {core::KernelKind::kResidual, core::KernelKind::kJacobian}) {
    const auto rec = core::record_kernel_trace(
        kind, physics::KernelVariant::kOptimized, 2048, 6, 6);
    const auto from_trace = gpusim::ExecModel::theoretical_min_bytes(rec, 2048);
    const auto closed = 2048u * perf::min_bytes_per_cell(
                                    perf::stokes_fo_resid_arrays(
                                        6, 6, core::scalar_bytes(kind, 6)));
    EXPECT_EQ(from_trace, closed) << core::to_string(kind);
  }
}

TEST(PrismKernel, JacobianScalarIsThirteenDoubles) {
  EXPECT_EQ(core::scalar_bytes(core::KernelKind::kJacobian, 6),
            13u * sizeof(double));
  EXPECT_EQ(core::scalar_bytes(core::KernelKind::kJacobian, 8),
            17u * sizeof(double));
  EXPECT_EQ(core::scalar_bytes(core::KernelKind::kResidual, 6),
            sizeof(double));
}

TEST(PrismKernel, UnsupportedTopologyThrows) {
  EXPECT_THROW(core::record_kernel_trace(core::KernelKind::kResidual,
                                         physics::KernelVariant::kOptimized,
                                         64, 4, 4),
               mali::Error);
}
