// Cache-simulator tests: exact traffic for streaming/reuse patterns,
// write-allocate/write-back accounting, full-line write optimization,
// LRU behaviour, and capacity monotonicity.

#include <gtest/gtest.h>

#include "gpusim/cache_sim.hpp"

using mali::gpusim::CacheSim;

TEST(CacheSim, ColdStreamReadsExactTraffic) {
  CacheSim c(1 << 20, 64);
  c.access(0, 64 * 100, /*is_write=*/false);
  EXPECT_EQ(c.stats().misses, 100u);
  EXPECT_EQ(c.stats().hits, 0u);
  EXPECT_EQ(c.stats().hbm_read_bytes, 6400u);
  EXPECT_EQ(c.stats().hbm_write_bytes, 0u);
}

TEST(CacheSim, ReuseWithinCapacityHits) {
  CacheSim c(1 << 20, 64);
  c.access(0, 4096, false);
  c.reset_stats();
  c.access(0, 4096, false);  // second pass: all hits
  EXPECT_EQ(c.stats().misses, 0u);
  EXPECT_EQ(c.stats().hits, 64u);
  EXPECT_EQ(c.stats().hbm_bytes(), 0u);
}

TEST(CacheSim, PartialLineAccessFetchesWholeLine) {
  CacheSim c(1 << 20, 64);
  c.access(10, 4, false);  // 4 bytes inside one line
  EXPECT_EQ(c.stats().hbm_read_bytes, 64u);
  c.access(0, 4, false);  // same line: hit
  EXPECT_EQ(c.stats().hits, 1u);
}

TEST(CacheSim, UnalignedRangeSpansExtraLine) {
  CacheSim c(1 << 20, 64);
  c.access(32, 64, false);  // straddles two lines
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(CacheSim, FullLineWriteSkipsFill) {
  CacheSim c(1 << 20, 64);
  c.access(0, 64, /*is_write=*/true);  // full line: no read-for-ownership
  EXPECT_EQ(c.stats().hbm_read_bytes, 0u);
  EXPECT_EQ(c.stats().hbm_write_bytes, 0u);  // not written back yet
  c.flush();
  EXPECT_EQ(c.stats().hbm_write_bytes, 64u);
}

TEST(CacheSim, PartialWriteAllocates) {
  CacheSim c(1 << 20, 64);
  c.access(0, 8, /*is_write=*/true);  // partial line: fill + dirty
  EXPECT_EQ(c.stats().hbm_read_bytes, 64u);
  c.flush();
  EXPECT_EQ(c.stats().hbm_write_bytes, 64u);
}

TEST(CacheSim, DirtyEvictionWritesBack) {
  CacheSim c(1024, 64, /*ways=*/1);  // 16 sets, direct-mapped
  c.access(0, 64, true);             // set 0, dirty
  c.access(1024, 64, false);         // same set: evicts dirty line
  EXPECT_EQ(c.stats().hbm_write_bytes, 64u);
}

TEST(CacheSim, CleanEvictionWritesNothing) {
  CacheSim c(1024, 64, 1);
  c.access(0, 64, false);
  c.access(1024, 64, false);
  EXPECT_EQ(c.stats().hbm_write_bytes, 0u);
  c.flush();
  EXPECT_EQ(c.stats().hbm_write_bytes, 0u);
}

TEST(CacheSim, LruEvictsOldest) {
  CacheSim c(2 * 64, 64, 2);  // one set, two ways
  c.access(0, 64, false);     // A
  c.access(4096, 64, false);  // B
  c.access(0, 64, false);     // touch A (B becomes LRU)
  c.access(8192, 64, false);  // C evicts B
  c.reset_stats();
  c.access(0, 64, false);  // A still resident
  EXPECT_EQ(c.stats().hits, 1u);
  c.access(4096, 64, false);  // B was evicted
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(CacheSim, ThrashingBeyondCapacityMisses) {
  CacheSim c(1 << 10, 64);  // 1 KiB
  // Stream 64 KiB twice: far beyond capacity, second pass misses too (LRU).
  c.access(0, 64 << 10, false);
  c.reset_stats();
  c.access(0, 64 << 10, false);
  EXPECT_EQ(c.stats().hits, 0u);
}

TEST(CacheSim, CapacityMonotonicityForReusePattern) {
  // Larger caches never produce more HBM traffic on a repeated-scan pattern.
  std::uint64_t prev = UINT64_MAX;
  for (std::size_t cap : {4u << 10, 16u << 10, 64u << 10, 256u << 10}) {
    CacheSim c(cap, 64);
    for (int pass = 0; pass < 4; ++pass) c.access(0, 32 << 10, false);
    c.flush();
    EXPECT_LE(c.stats().hbm_bytes(), prev) << "capacity " << cap;
    prev = c.stats().hbm_bytes();
  }
}

TEST(CacheSim, RandomReplacementDegradesGracefully) {
  // Working set slightly beyond capacity: LRU scan pattern gets 0 hits,
  // random replacement keeps a useful fraction.
  const std::size_t cap = 32 << 10;
  CacheSim lru(cap, 64, 16, CacheSim::Replacement::kLru);
  CacheSim rnd(cap, 64, 16, CacheSim::Replacement::kRandom);
  for (int pass = 0; pass < 6; ++pass) {
    lru.access(0, 40 << 10, false);
    rnd.access(0, 40 << 10, false);
  }
  EXPECT_EQ(lru.stats().hits, 0u) << "LRU must thrash on cyclic overflow";
  EXPECT_GT(rnd.stats().hit_rate(), 0.2);
  EXPECT_LT(rnd.stats().hit_rate(), 0.95);
}

TEST(CacheSim, StatsAccounting) {
  CacheSim c(1 << 16, 64);
  c.access(0, 6400, false);
  c.access(0, 6400, false);
  const auto& s = c.stats();
  EXPECT_EQ(s.line_probes, 200u);
  EXPECT_EQ(s.hits + s.misses, s.line_probes);
  EXPECT_NEAR(s.hit_rate(), 0.5, 1e-12);
}

TEST(CacheSim, ZeroSizeAccessIsNoop) {
  CacheSim c(1 << 16, 64);
  c.access(128, 0, true);
  EXPECT_EQ(c.stats().line_probes, 0u);
}

TEST(CacheSim, RejectsBadGeometry) {
  EXPECT_THROW(CacheSim(1024, 63), mali::Error);    // non-power-of-two line
  EXPECT_THROW(CacheSim(1024, 64, 0), mali::Error); // zero ways
}

TEST(CacheSim, CapacityReflectsGeometry) {
  CacheSim c(1 << 20, 128, 8);
  EXPECT_EQ(c.capacity_bytes(), 1u << 20);
  EXPECT_EQ(c.line_bytes(), 128u);
}
