// ThermalModel (mesh-wide thermal state) tests: initialization from the
// geometry, steady solves, interpolation hook, strain heating from a
// velocity field, and the full thermo-mechanical coupling loop.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "linalg/semicoarsening_amg.hpp"
#include "nonlinear/newton.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "physics/thermal_model.hpp"

using namespace mali;
using physics::ThermalModel;

namespace {

struct Fixture {
  Fixture() {
    physics::StokesFOConfig cfg;
    cfg.dx_m = 250.0e3;
    cfg.n_layers = 4;
    problem = std::make_unique<physics::StokesFOProblem>(cfg);
  }
  std::unique_ptr<physics::StokesFOProblem> problem;
};

}  // namespace

TEST(ThermalModel, InitializesFromGeometry) {
  Fixture f;
  ThermalModel thermal(f.problem->mesh(), f.problem->geometry());
  EXPECT_EQ(thermal.n_columns(), f.problem->mesh().base().n_nodes());
  EXPECT_EQ(thermal.levels(), f.problem->mesh().levels());
  // Matches the analytic field at the nodes.
  const auto& base = f.problem->mesh().base();
  for (std::size_t col = 0; col < thermal.n_columns(); col += 11) {
    const double expect = f.problem->geometry().temperature(
        base.node_x(col), base.node_y(col), 0.0);
    EXPECT_NEAR(thermal.temperature(col, 0), expect, 1e-12);
  }
}

TEST(ThermalModel, SteadySolveKeepsSurfaceBcAndWarmsBed) {
  Fixture f;
  ThermalModel thermal(f.problem->mesh(), f.problem->geometry());
  thermal.solve_steady();
  const auto& base = f.problem->mesh().base();
  for (std::size_t col = 0; col < thermal.n_columns(); col += 7) {
    const double surf_T = f.problem->geometry().temperature(
        base.node_x(col), base.node_y(col), 1.0);
    EXPECT_NEAR(thermal.temperature(col, thermal.levels() - 1), surf_T, 1e-9);
    // Geothermal flux warms the bed above the surface temperature.
    EXPECT_GT(thermal.temperature(col, 0), surf_T);
  }
  EXPECT_LE(thermal.max_bed_temperature(), 273.15 + 1e-9);
}

TEST(ThermalModel, TemperatureAtInterpolates) {
  Fixture f;
  ThermalModel thermal(f.problem->mesh(), f.problem->geometry());
  thermal.solve_steady();
  const auto& base = f.problem->mesh().base();
  const std::size_t col = thermal.n_columns() / 2;
  const double x = base.node_x(col), y = base.node_y(col);
  // At the exact node elevations the interpolation reproduces the nodes.
  EXPECT_NEAR(thermal.temperature_at(x, y, 0.0), thermal.temperature(col, 0),
              1e-12);
  EXPECT_NEAR(thermal.temperature_at(x, y, 1.0),
              thermal.temperature(col, thermal.levels() - 1), 1e-12);
  // Midway between two levels: between the nodal values.
  const double mid = thermal.temperature_at(x, y, 0.5);
  double lo = 1e300, hi = -1e300;
  for (std::size_t lev = 0; lev < thermal.levels(); ++lev) {
    lo = std::min(lo, thermal.temperature(col, lev));
    hi = std::max(hi, thermal.temperature(col, lev));
  }
  EXPECT_GE(mid, lo - 1e-12);
  EXPECT_LE(mid, hi + 1e-12);
}

TEST(ThermalModel, StrainHeatingPositiveAndShearDriven) {
  Fixture f;
  ThermalModel thermal(f.problem->mesh(), f.problem->geometry());
  const auto U = f.problem->analytic_initial_guess();  // vertically sheared
  const auto q = thermal.strain_heating(U, f.problem->config().constants);
  ASSERT_EQ(q.size(), thermal.n_columns());
  double total = 0.0;
  for (const auto& col : q) {
    for (double v : col) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
  }
  EXPECT_GT(total, 0.0);
  // Zero velocity still produces the (regularized) floor but far less heat.
  const std::vector<double> zero(U.size(), 0.0);
  const auto q0 = thermal.strain_heating(zero, f.problem->config().constants);
  double total0 = 0.0;
  for (const auto& col : q0) {
    for (double v : col) total0 += v;
  }
  EXPECT_LT(total0, total);
}

TEST(ThermalModel, TransientApproachesSteady) {
  Fixture f;
  ThermalModel steady(f.problem->mesh(), f.problem->geometry());
  steady.solve_steady();
  ThermalModel transient(f.problem->mesh(), f.problem->geometry());
  for (int s = 0; s < 2000; ++s) transient.step(50.0);
  for (std::size_t col = 0; col < steady.n_columns(); col += 13) {
    EXPECT_NEAR(transient.temperature(col, 0), steady.temperature(col, 0),
                0.5)
        << "column " << col;
  }
}

TEST(ThermalModel, CouplingLoopConverges) {
  // Two Picard sweeps through the full library API: velocity -> heating ->
  // temperature -> A(T) -> velocity.  The update between the sweeps must
  // shrink (contraction), and warm coupling must speed the ice up.
  Fixture f;
  auto& p = *f.problem;
  ThermalModel thermal(p.mesh(), p.geometry());
  linalg::SemicoarseningAmg amg(p.extrusion_info());
  nonlinear::NewtonConfig ncfg;
  ncfg.max_iters = 10;
  nonlinear::NewtonSolver newton(ncfg);

  std::vector<double> U(p.n_dofs(), 0.0);
  newton.solve(p, amg, U);
  const double mean_uncoupled = p.mean_velocity(U);

  double prev_change = 1e300;
  double mean = mean_uncoupled;
  for (int it = 0; it < 3; ++it) {
    thermal.solve_steady(thermal.strain_heating(U, p.config().constants));
    p.set_temperature_field([&](double x, double y, double s) {
      return thermal.temperature_at(x, y, s);
    });
    newton.solve(p, amg, U);
    const double new_mean = p.mean_velocity(U);
    const double change = std::abs(new_mean - mean);
    if (it > 0) EXPECT_LT(change, prev_change) << "Picard must contract";
    prev_change = change;
    mean = new_mean;
  }
  EXPECT_GT(mean, mean_uncoupled)
      << "warm basal ice must flow faster than the cold uniform-A state";
}
