// Tests for the pk execution layer: parallel_for/reduce on both backends,
// tag dispatch, launch-bounds plumbing and the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include "portability/launch_bounds.hpp"
#include "portability/parallel.hpp"
#include "portability/thread_pool.hpp"

namespace pk = mali::pk;

TEST(ThreadPool, CoversFullRange) {
  pk::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_range(0, 100, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  pk::ThreadPool pool(2);
  bool ran = false;
  pool.parallel_range(5, 5, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesExceptions) {
  pk::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_range(0, 10,
                                   [](std::size_t b, std::size_t) {
                                     if (b == 0) throw std::runtime_error("boom");
                                   }),
               std::runtime_error);
  // The pool survives and remains usable.
  std::atomic<int> count{0};
  pool.parallel_range(0, 8, [&](std::size_t b, std::size_t e) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count.load(), 8);
}

TEST(ParallelFor, SerialBackend) {
  std::vector<int> out(50, 0);
  pk::parallel_for("t", pk::RangePolicy<pk::Serial>(50),
                   [&](int i) { out[static_cast<std::size_t>(i)] = i * 2; });
  for (int i = 0; i < 50; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 2 * i);
}

TEST(ParallelFor, ThreadsBackend) {
  std::vector<std::atomic<int>> out(257);
  pk::parallel_for("t", pk::RangePolicy<pk::Threads>(257),
                   [&](int i) { out[static_cast<std::size_t>(i)] = i; });
  for (int i = 0; i < 257; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)].load(), i);
}

TEST(ParallelFor, RangeWithOffset) {
  std::vector<int> touched(20, 0);
  pk::parallel_for("t", pk::RangePolicy<pk::Serial>(5, 15),
                   [&](int i) { touched[static_cast<std::size_t>(i)] = 1; });
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(touched[static_cast<std::size_t>(i)], (i >= 5 && i < 15) ? 1 : 0);
  }
}

// Tag dispatch, Albany-style.
struct TagA {};
struct TagB {};
struct TaggedFunctor {
  mutable std::atomic<int>* a;
  mutable std::atomic<int>* b;
  void operator()(const TagA&, int) const { a->fetch_add(1); }
  void operator()(const TagB&, int) const { b->fetch_add(3); }
};

TEST(ParallelFor, TagDispatchSelectsOverload) {
  std::atomic<int> a{0}, b{0};
  TaggedFunctor f{&a, &b};
  pk::parallel_for("a", pk::RangePolicy<pk::Serial, TagA>(10), f);
  EXPECT_EQ(a.load(), 10);
  EXPECT_EQ(b.load(), 0);
  pk::parallel_for("b", pk::RangePolicy<pk::Serial, TagB>(10), f);
  EXPECT_EQ(b.load(), 30);
}

TEST(ParallelReduce, SumSerial) {
  double sum = 0.0;
  pk::parallel_reduce("s", pk::RangePolicy<pk::Serial>(100),
                      [](int i, double& acc) { acc += i; }, sum);
  EXPECT_DOUBLE_EQ(sum, 4950.0);
}

TEST(ParallelReduce, SumThreads) {
  long sum = 0;
  pk::parallel_reduce("s", pk::RangePolicy<pk::Threads>(1000),
                      [](int i, long& acc) { acc += i; }, sum);
  EXPECT_EQ(sum, 499500);
}

// ---------------------------------------------------------------------------
// Determinism contract for reductions.
//
// The threaded parallel_reduce merges thread-local partials in completion
// order, so its result is reproducible only to FP-associativity relative to
// the serial reduction — that tolerance contract is pinned here.  For
// bitwise-reproducible CI runs, parallel_reduce_deterministic fixes the
// reduction tree with a chunk size independent of the thread schedule.
// ---------------------------------------------------------------------------

namespace {

// An ill-conditioned-enough summand: wide dynamic range so reassociation is
// visible at the ulp level but bounded.
double summand(int i) {
  return std::sin(0.1 * i) * std::exp2((i % 64) - 32);
}

}  // namespace

TEST(ParallelReduce, ThreadedMatchesSerialToAssociativityTolerance) {
  const std::size_t n = 100000;
  double serial = 0.0, threaded = 0.0;
  auto f = [](int i, double& acc) { acc += summand(i); };
  pk::parallel_reduce("s", pk::RangePolicy<pk::Serial>(n), f, serial);
  pk::parallel_reduce("t", pk::RangePolicy<pk::Threads>(n), f, threaded);
  // Contract: agreement to ~n*eps *relative to the sum's condition* Σ|x_i|
  // — NOT bitwise, and NOT relative to the (cancellation-shrunk) result;
  // the partition of the range into thread chunks is schedule-dependent.
  double abs_scale = 0.0;
  pk::parallel_reduce(
      "a", pk::RangePolicy<pk::Serial>(n),
      [](int i, double& acc) { acc += std::abs(summand(i)); }, abs_scale);
  const double tol = 1e-12 * std::max(1.0, abs_scale);
  EXPECT_NEAR(threaded, serial, tol);
}

TEST(ParallelReduceDeterministic, BitwiseReproducibleAcrossRuns) {
  const std::size_t n = 100000;
  auto f = [](int i, double& acc) { acc += summand(i); };
  double first = 0.0;
  pk::parallel_reduce_deterministic("d", n, f, first, 512);
  for (int rep = 0; rep < 10; ++rep) {
    double again = 0.0;
    pk::parallel_reduce_deterministic("d", n, f, again, 512);
    EXPECT_EQ(again, first) << "rep " << rep;  // bitwise, not approximate
  }
}

TEST(ParallelReduceDeterministic, MatchesSerialToTolerance) {
  const std::size_t n = 50000;
  auto f = [](int i, double& acc) { acc += summand(i); };
  double serial = 0.0, det = 0.0;
  pk::parallel_reduce("s", pk::RangePolicy<pk::Serial>(n), f, serial);
  pk::parallel_reduce_deterministic("d", n, f, det);
  double abs_scale = 0.0;
  pk::parallel_reduce(
      "a", pk::RangePolicy<pk::Serial>(n),
      [](int i, double& acc) { acc += std::abs(summand(i)); }, abs_scale);
  EXPECT_NEAR(det, serial, 1e-12 * std::max(1.0, abs_scale));
}

TEST(ParallelReduceDeterministic, ExactForIntegers) {
  const std::size_t n = 12345;
  long sum = 0;
  pk::parallel_reduce_deterministic(
      "i", n, [](int i, long& acc) { acc += i; }, sum, 128);
  EXPECT_EQ(sum, static_cast<long>(n) * (static_cast<long>(n) - 1) / 2);
}

TEST(ParallelReduceDeterministic, HandlesEmptyAndTinyRanges) {
  double sum = 1.0;
  pk::parallel_reduce_deterministic(
      "e", 0, [](int, double& acc) { acc += 1.0; }, sum);
  EXPECT_EQ(sum, 0.0);
  pk::parallel_reduce_deterministic(
      "one", 1, [](int i, double& acc) { acc += i + 3.0; }, sum);
  EXPECT_EQ(sum, 3.0);
}

TEST(LaunchBounds, CompileTimeToRuntime) {
  using LB = pk::LaunchBounds<128, 2>;
  constexpr auto cfg = pk::to_launch_config<LB>();
  EXPECT_EQ(cfg.max_threads, 128u);
  EXPECT_EQ(cfg.min_blocks, 2u);
  EXPECT_FALSE(cfg.is_default());
  constexpr auto dflt = pk::to_launch_config<pk::LaunchBounds<>>();
  EXPECT_TRUE(dflt.is_default());
}

// Backend-equivalence sweep over sizes.
class BackendEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BackendEquivalence, SameResultBothBackends) {
  const int n = GetParam();
  std::vector<double> serial(static_cast<std::size_t>(n)),
      threaded(static_cast<std::size_t>(n));
  auto fn = [](int i) { return 0.5 * i * i - 3.0 * i; };
  pk::parallel_for("s", pk::RangePolicy<pk::Serial>(static_cast<std::size_t>(n)),
                   [&](int i) { serial[static_cast<std::size_t>(i)] = fn(i); });
  pk::parallel_for("t", pk::RangePolicy<pk::Threads>(static_cast<std::size_t>(n)),
                   [&](int i) { threaded[static_cast<std::size_t>(i)] = fn(i); });
  EXPECT_EQ(serial, threaded);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BackendEquivalence,
                         ::testing::Values(1, 2, 17, 100, 1023, 4096));
