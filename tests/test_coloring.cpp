// Property tests for the cell colorings that back the parallel assembly
// scatter: totality (every cell gets exactly one color), conflict-freedom
// (no two cells of a color share a global node — checked exhaustively), the
// lattice-parity color-count bound (colors == max node degree == 8 on the
// structured extrusions), and run-to-run stability.  The generic greedy
// coloring is covered as the arbitrary-connectivity fallback.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mesh/coloring.hpp"
#include "mesh/extruded_mesh.hpp"
#include "mesh/ice_geometry.hpp"
#include "mesh/quad_grid.hpp"
#include "physics/stokes_fo_problem.hpp"

using namespace mali;
using mesh::CellColoring;
using mesh::greedy_color_cells;
using mesh::lattice_color_cells;

namespace {

/// The assembled connectivity of a coarse Antarctica problem.
physics::StokesFOProblem coarse_problem(std::size_t workset_size = 0) {
  physics::StokesFOConfig cfg;
  cfg.dx_m = 250.0e3;
  cfg.n_layers = 4;
  cfg.workset_size = workset_size;
  return physics::StokesFOProblem(cfg);
}

/// Exhaustive validity check: every cell colored exactly once, classes
/// partition the range, and no two cells of one color share a node.
void expect_valid_coloring(const CellColoring& col,
                           const pk::View<std::size_t, 2>& cell_nodes,
                           std::size_t c0, std::size_t count, int N) {
  ASSERT_EQ(col.n_cells(), count);
  ASSERT_EQ(col.color_ptr.size(), static_cast<std::size_t>(col.n_colors) + 1);
  ASSERT_EQ(col.color_cells.size(), count);

  // Exactly one color per cell, in range.
  for (std::size_t c = 0; c < count; ++c) {
    ASSERT_GE(col.cell_color[c], 0);
    ASSERT_LT(col.cell_color[c], col.n_colors);
  }

  // The classes partition [0, count) and agree with cell_color.
  std::vector<int> seen(count, 0);
  for (int k = 0; k < col.n_colors; ++k) {
    EXPECT_GT(col.color_size(k), 0u) << "empty color class " << k;
    for (std::size_t i = col.color_ptr[static_cast<std::size_t>(k)];
         i < col.color_ptr[static_cast<std::size_t>(k) + 1]; ++i) {
      const std::size_t c = col.color_cells[i];
      ASSERT_LT(c, count);
      ++seen[c];
      EXPECT_EQ(col.cell_color[c], k);
    }
  }
  for (std::size_t c = 0; c < count; ++c) {
    EXPECT_EQ(seen[c], 1) << "cell " << c << " appears in != 1 class";
  }

  // Conflict-freedom, exhaustively: within each color, each global node is
  // touched by at most one cell.
  for (int k = 0; k < col.n_colors; ++k) {
    std::set<std::size_t> nodes_in_color;
    for (std::size_t i = col.color_ptr[static_cast<std::size_t>(k)];
         i < col.color_ptr[static_cast<std::size_t>(k) + 1]; ++i) {
      const std::size_t c = col.color_cells[i];
      for (int n = 0; n < N; ++n) {
        const std::size_t gnode = cell_nodes(c0 + c, static_cast<std::size_t>(n));
        EXPECT_TRUE(nodes_in_color.insert(gnode).second)
            << "color " << k << " has two cells sharing node " << gnode;
      }
    }
  }
}

}  // namespace

TEST(Coloring, ValidOnExtrudedAntarcticaMesh) {
  auto p = coarse_problem();
  const auto& ws = p.workset();
  // Both the lattice-parity coloring (what assembly uses) and the generic
  // greedy fallback must be conflict-free on the full mesh.
  const auto lat = lattice_color_cells(p.mesh());
  expect_valid_coloring(lat, ws.cell_nodes, 0, ws.n_cells, ws.num_nodes);
  // Explicit range: the workset's cell arrays carry SIMD ghost-row padding
  // past n_cells, which the coloring must not be asked to cover.
  const auto grd =
      greedy_color_cells(ws.cell_nodes, 0, ws.n_cells, ws.num_nodes);
  expect_valid_coloring(grd, ws.cell_nodes, 0, ws.n_cells, ws.num_nodes);
}

TEST(Coloring, ColorCountBoundedByNodeDegree) {
  auto p = coarse_problem();
  const auto col = lattice_color_cells(p.mesh());
  // Max node degree is a lower bound on the chromatic number (cells sharing
  // a node form a clique).  On an extruded hex mesh at most 8 hexes meet at
  // a node, and the parity coloring meets that bound exactly: it is optimal.
  EXPECT_GE(static_cast<std::size_t>(col.n_colors), col.max_node_degree);
  EXPECT_LE(col.n_colors, 8);
  EXPECT_EQ(col.max_node_degree, 8u);
  EXPECT_EQ(static_cast<std::size_t>(col.n_colors), col.max_node_degree);
}

TEST(Coloring, StableAcrossRepeatedRuns) {
  auto p = coarse_problem();
  const auto& ws = p.workset();
  const auto a = greedy_color_cells(ws.cell_nodes, ws.num_nodes);
  const auto b = greedy_color_cells(ws.cell_nodes, ws.num_nodes);
  EXPECT_EQ(a.n_colors, b.n_colors);
  EXPECT_EQ(a.cell_color, b.cell_color);
  EXPECT_EQ(a.color_ptr, b.color_ptr);
  EXPECT_EQ(a.color_cells, b.color_cells);

  const auto la = lattice_color_cells(p.mesh());
  const auto lb = lattice_color_cells(p.mesh());
  EXPECT_EQ(la.n_colors, lb.n_colors);
  EXPECT_EQ(la.cell_color, lb.cell_color);
  EXPECT_EQ(la.color_ptr, lb.color_ptr);
  EXPECT_EQ(la.color_cells, lb.color_cells);
}

TEST(Coloring, WorksetSubrangesAreValid) {
  const std::size_t ws_size = 64;
  auto p = coarse_problem(ws_size);
  const auto& ws = p.workset();
  ASSERT_GT(p.n_worksets(), 1u) << "test needs multiple worksets";
  std::size_t covered = 0;
  for (std::size_t w = 0; w < p.n_worksets(); ++w) {
    const auto& col = p.workset_coloring(w);
    const std::size_t c0 = w * ws_size;
    expect_valid_coloring(col, ws.cell_nodes, c0, col.n_cells(),
                          ws.num_nodes);
    covered += col.n_cells();
  }
  EXPECT_EQ(covered, ws.n_cells);
}

TEST(Coloring, SingleCellAndDisjointCells) {
  // One cell: one color.  Disjoint cells (no shared nodes): also one color.
  pk::View<std::size_t, 2> one("cn", 1, 8);
  for (std::size_t k = 0; k < 8; ++k) one(0, k) = k;
  const auto c1 = greedy_color_cells(one, 8);
  EXPECT_EQ(c1.n_colors, 1);
  EXPECT_EQ(c1.max_node_degree, 1u);

  pk::View<std::size_t, 2> disjoint("cn", 4, 8);
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t k = 0; k < 8; ++k) disjoint(c, k) = c * 8 + k;
  }
  const auto cd = greedy_color_cells(disjoint, 8);
  EXPECT_EQ(cd.n_colors, 1);
  EXPECT_EQ(cd.color_size(0), 4u);
}

TEST(Coloring, ChainOfSharedNodesNeedsTwoColors) {
  // 1D chain of "elements" sharing an endpoint node: classic 2-coloring.
  const std::size_t n = 17;
  pk::View<std::size_t, 2> chain("cn", n, 2);
  for (std::size_t c = 0; c < n; ++c) {
    chain(c, 0) = c;
    chain(c, 1) = c + 1;
  }
  const auto col = greedy_color_cells(chain, 2);
  EXPECT_EQ(col.n_colors, 2);
  for (std::size_t c = 0; c < n; ++c) {
    EXPECT_EQ(col.cell_color[c], static_cast<int>(c % 2));
  }
}

TEST(Coloring, ExtrudedMeshExpectedEightColors) {
  // The structured extrusion colors with exactly 2x2x2 = 8 parity colors
  // wherever the base grid is at least 2 cells wide in each direction.
  auto p = coarse_problem();
  const auto col = lattice_color_cells(p.mesh());
  EXPECT_EQ(col.n_colors, 8);
  // Workset subranges agree with the whole-mesh colors on the shared cells
  // (the parity reference is global), modulo the compaction remap.
  const auto head = lattice_color_cells(p.mesh(), 0, p.mesh().n_cells() / 2);
  for (std::size_t c = 0; c < head.n_cells(); ++c) {
    EXPECT_EQ(head.cell_color[c], col.cell_color[c]) << "cell " << c;
  }
}

TEST(Coloring, LatticeSingleLayerUsesFourColors) {
  // A 1-layer extrusion only has the four horizontal parities.
  physics::StokesFOConfig cfg;
  cfg.dx_m = 250.0e3;
  cfg.n_layers = 1;
  physics::StokesFOProblem p(cfg);
  const auto col = lattice_color_cells(p.mesh());
  EXPECT_EQ(col.n_colors, 4);
  const auto& ws = p.workset();
  expect_valid_coloring(col, ws.cell_nodes, 0, ws.n_cells, ws.num_nodes);
}
