// Ensemble engine battery (DESIGN.md §15):
//   - cross-product expansion determinism (last dimension fastest) and
//     parity with the historical nested-loop order
//   - LPT scheduler determinism, balance, and the round-robin execution
//     order
//   - manifest canonical round trip (field-for-field, doubles bitwise) and
//     the malformed-manifest typed-error battery
//   - result cache round trips (memory and disk) bit-exact, with the
//     canonical-string collision guard demoting hash collisions to misses
//   - engine contracts: cache-served rerun byte-identical members section,
//     warm vs cold within 1e-10/dof, recycled vs rebuilt AMG equivalence
//     (structure reuse bitwise at the AMG level, tolerance-level through
//     the full solve), Chebyshev spectral-bound hint bit-identity

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "ensemble/engine.hpp"
#include "ensemble/manifest.hpp"
#include "ensemble/result_cache.hpp"
#include "ensemble/scheduler.hpp"
#include "ensemble/sweep.hpp"
#include "linalg/chebyshev.hpp"
#include "linalg/semicoarsening_amg.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "portability/common.hpp"
#include "util/json_writer.hpp"

using namespace mali;

namespace {

std::string temp_dir(const char* name) {
  // gtest's TempDir() is stable across runs of the binary; wipe any stale
  // cache records a previous run left behind so hit/miss counts start
  // from a known-empty store.
  const std::string path = ::testing::TempDir() + name;
  std::filesystem::remove_all(path);
  return path;
}

/// Small fast manifest every engine test shares (2 members, coarse dome).
ensemble::EnsembleManifest small_manifest() {
  ensemble::EnsembleManifest m;
  m.name = "test-sweep";
  m.dx_km = 220.0;
  m.layers = 3;
  m.years = 0.25;
  m.velocity_every = 1;
  // Tight absolute Newton tolerance: the warm == cold and recycled ==
  // rebuilt contracts below compare converged states, so the convergence
  // target must be well below the 1e-10/dof pin.
  m.newton_max_iters = 40;
  m.newton_tol = 1e-9;
  m.rank_groups = 1;
  m.glen_n = {3.0};
  m.glen_A = {1.0e-16};
  m.friction_scale = {1.0, 1.1};
  m.forcing = {"constant"};
  return m;
}

std::uint64_t bits(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (bits(a[i]) != bits(b[i])) return false;
  }
  return true;
}

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double d = 0.0;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    d = std::max(d, std::fabs(a[i] - b[i]));
  }
  return d;
}

}  // namespace

// ---- JSON writer (the results/bench document emitter) -----------------

// Containers opened directly after key() (or as array elements) must still
// participate in comma bookkeeping: the first key inside a nested object
// gets its newline, the SECOND gets a comma, and sibling array elements
// are comma-separated.  Pinned as exact text because this is exactly the
// separator state a streaming writer gets wrong.
TEST(JsonWriter, NestedContainersGetSeparators) {
  util::JsonWriter w;
  w.begin_object();
  w.key("a").begin_object();
  w.key("x").value(1);
  w.key("y").value(2);
  w.end_object();
  w.key("b").begin_array();
  w.begin_object();
  w.key("p").value(true);
  w.end_object();
  w.begin_object();
  w.key("q").value(false);
  w.end_object();
  w.end_array();
  w.key("c").begin_array();
  w.begin_array();
  w.value(1);
  w.value(2);
  w.end_array();
  w.begin_array();
  w.value(3);
  w.end_array();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\n"
            "  \"a\": {\n"
            "    \"x\": 1,\n"
            "    \"y\": 2\n"
            "  },\n"
            "  \"b\": [\n"
            "    {\n"
            "      \"p\": true\n"
            "    },\n"
            "    {\n"
            "      \"q\": false\n"
            "    }\n"
            "  ],\n"
            "  \"c\": [\n"
            "    [\n"
            "      1,\n"
            "      2\n"
            "    ],\n"
            "    [\n"
            "      3\n"
            "    ]\n"
            "  ]\n"
            "}");
}

// ---- cross-product expansion ------------------------------------------

TEST(Sweep, LastDimensionFastestMatchesNestedLoops) {
  const auto tuples = ensemble::cross_product_indices({2, 3, 2});
  ASSERT_EQ(tuples.size(), 12u);
  std::size_t k = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      for (std::size_t l = 0; l < 2; ++l, ++k) {
        ASSERT_EQ(tuples[k].size(), 3u);
        EXPECT_EQ(tuples[k][0], i);
        EXPECT_EQ(tuples[k][1], j);
        EXPECT_EQ(tuples[k][2], l);
      }
    }
  }
}

TEST(Sweep, EdgeCases) {
  // No dimensions: exactly one empty tuple (the identity of the product).
  const auto none = ensemble::cross_product_indices({});
  ASSERT_EQ(none.size(), 1u);
  EXPECT_TRUE(none[0].empty());
  // A zero-size dimension annihilates the product.
  EXPECT_TRUE(ensemble::cross_product_indices({3, 0, 2}).empty());
  // Determinism: two calls produce identical tuples.
  EXPECT_EQ(ensemble::cross_product_indices({4, 5}),
            ensemble::cross_product_indices({4, 5}));
}

TEST(Sweep, MemberExpansionIsStable) {
  ensemble::EnsembleManifest m = small_manifest();
  m.glen_n = {3.0, 3.5};
  m.forcing = {"constant", "ramp:anomaly=-0.5"};
  const auto a = ensemble::expand_members(m);
  const auto b = ensemble::expand_members(m);
  ASSERT_EQ(a.size(), m.n_members());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i);
    EXPECT_EQ(bits(a[i].glen_n), bits(b[i].glen_n));
    EXPECT_EQ(bits(a[i].friction_scale), bits(b[i].friction_scale));
    EXPECT_EQ(a[i].forcing, b[i].forcing);
  }
  // forcing is the last (fastest) dimension.
  EXPECT_EQ(a[0].forcing, "constant");
  EXPECT_EQ(a[1].forcing, "ramp:anomaly=-0.5");
  EXPECT_EQ(bits(a[0].glen_n), bits(3.0));
  EXPECT_EQ(bits(a.back().glen_n), bits(3.5));
}

// ---- scheduler --------------------------------------------------------

TEST(Scheduler, UniformCostsRoundRobinDeterministically) {
  const auto s1 = ensemble::schedule_members(7, 3);
  const auto s2 = ensemble::schedule_members(7, 3);
  ASSERT_EQ(s1.groups.size(), 3u);
  EXPECT_EQ(s1.groups, s2.groups);
  EXPECT_EQ(s1.load, s2.load);
  // Every member appears exactly once.
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const auto& g : s1.groups) {
    total += g.size();
    for (const std::size_t id : g) EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_EQ(total, 7u);
  // Uniform costs balance to within one member.
  const auto [lo, hi] = std::minmax_element(s1.load.begin(), s1.load.end());
  EXPECT_LE(*hi - *lo, 1.0 + 1e-12);
}

TEST(Scheduler, LptPlacesHeavyMembersFirst) {
  // Costs 10, 1, 1, 1, 9 on two groups: LPT puts 0 alone-ish (10) and
  // pairs 4 (9) with the light ones — makespan 11 vs naive 13.
  const auto s = ensemble::schedule_members(5, 2, {10, 1, 1, 1, 9});
  ASSERT_EQ(s.groups.size(), 2u);
  EXPECT_EQ(std::max(s.load[0], s.load[1]), 11.0);
  // Heaviest member went to group 0 (ties break low).
  EXPECT_EQ(s.groups[0].front(), 0u);
  EXPECT_EQ(s.groups[1].front(), 4u);
}

TEST(Scheduler, ExecutionOrderIsRoundRobinOverGroups) {
  ensemble::Schedule s;
  s.groups = {{0, 2, 5}, {1, 3}, {4}};
  const auto order = s.execution_order();
  const std::vector<std::size_t> expect{0, 1, 4, 2, 3, 5};
  EXPECT_EQ(order, expect);
}

TEST(Scheduler, OneGroupIsIdentityOrder) {
  const auto s = ensemble::schedule_members(4, 1);
  ASSERT_EQ(s.groups.size(), 1u);
  const std::vector<std::size_t> expect{0, 1, 2, 3};
  EXPECT_EQ(s.groups[0], expect);
  EXPECT_EQ(s.execution_order(), expect);
}

// ---- manifest ---------------------------------------------------------

TEST(Manifest, ParsesCommentsDefaultsAndSweeps) {
  const auto m = ensemble::parse_manifest(
      "# a sweep\n"
      "name = warming   # trailing comment\n"
      "dx_km = 150\n"
      "sweep.glen_A = 0.8e-16, 1.2e-16\n"
      "sweep.forcing = constant; ramp:anomaly=-0.5,end=2\n");
  EXPECT_EQ(m.name, "warming");
  EXPECT_EQ(bits(m.dx_km), bits(150.0));
  EXPECT_EQ(m.layers, 3);                  // default
  EXPECT_EQ(bits(m.years), bits(0.5));     // default
  ASSERT_EQ(m.glen_A.size(), 2u);
  EXPECT_EQ(bits(m.glen_A[0]), bits(0.8e-16));
  ASSERT_EQ(m.forcing.size(), 2u);
  EXPECT_EQ(m.forcing[1], "ramp:anomaly=-0.5,end=2");
  EXPECT_EQ(m.n_members(), 4u);
}

TEST(Manifest, CanonicalRoundTripsBitwise) {
  ensemble::EnsembleManifest m = small_manifest();
  m.dx_km = 1.0 / 3.0;             // no short exact decimal
  m.newton_tol = 1e-300;           // extreme exponent
  m.glen_n = {3.0, 3.0000000000000004};  // adjacent representables
  m.glen_A = {4.9e-324};           // subnormal
  const auto r = ensemble::parse_manifest(m.canonical());
  EXPECT_EQ(r.name, m.name);
  EXPECT_EQ(bits(r.dx_km), bits(m.dx_km));
  EXPECT_EQ(r.layers, m.layers);
  EXPECT_EQ(bits(r.years), bits(m.years));
  EXPECT_EQ(r.velocity_every, m.velocity_every);
  EXPECT_EQ(r.newton_max_iters, m.newton_max_iters);
  EXPECT_EQ(bits(r.newton_tol), bits(m.newton_tol));
  EXPECT_EQ(r.rank_groups, m.rank_groups);
  ASSERT_TRUE(bitwise_equal(r.glen_n, m.glen_n));
  ASSERT_TRUE(bitwise_equal(r.glen_A, m.glen_A));
  ASSERT_TRUE(bitwise_equal(r.friction_scale, m.friction_scale));
  EXPECT_EQ(r.forcing, m.forcing);
  // The canonical form is a fixed point.
  EXPECT_EQ(r.canonical(), m.canonical());
}

TEST(Manifest, MalformedManifestsAreTypedErrors) {
  const char* bad[] = {
      "volcano = 3\n",                       // unknown key
      "dx_km\n",                             // no '='
      "= 3\n",                               // empty key
      "dx_km = \n",                          // empty value
      "dx_km = abc\n",                       // not a number
      "dx_km = 1e999\n",                     // overflows to inf
      "dx_km = -100\n",                      // out of range
      "dx_km = 100\ndx_km = 200\n",          // duplicate key
      "layers = 2.5\n",                      // non-integer int
      "layers = 0\n",                        // out of range
      "years = 0\n",                         // out of range
      "velocity_every = -2\n",               // below the -1 sentinel
      "newton_max_iters = 0\n",              // out of range
      "newton_tol = -1e-6\n",                // out of range
      "rank_groups = 0\n",                   // out of range
      "sweep.glen_n = \n",                   // empty sweep
      "sweep.glen_n = 3,,4\n",               // empty element
      "sweep.glen_n = 0.5\n",                // glen_n < 1
      "sweep.glen_A = -1e-16\n",             // non-positive
      "sweep.friction_scale = 0\n",          // non-positive
      "sweep.forcing = ;\n",                 // empty spec
      "name =\n",                            // empty name
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)ensemble::parse_manifest(text), mali::Error)
        << "manifest should be rejected:\n" << text;
  }
  // The unknown-key error names every valid key (self-documenting).
  try {
    (void)ensemble::parse_manifest("volcano = 3\n");
    FAIL() << "unknown key accepted";
  } catch (const mali::Error& e) {
    const std::string msg = e.what();
    for (const char* key :
         {"dx_km", "layers", "years", "velocity_every", "newton_max_iters",
          "newton_tol", "rank_groups", "sweep.glen_n", "sweep.glen_A",
          "sweep.friction_scale", "sweep.forcing"}) {
      EXPECT_NE(msg.find(key), std::string::npos) << key;
    }
  }
}

TEST(Manifest, LoadManifestReadsFilesAndRejectsMissing) {
  const std::string path = temp_dir("manifest.ens");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("name = from-disk\nsweep.friction_scale = 1,1.5\n", f);
  std::fclose(f);
  const auto m = ensemble::load_manifest(path);
  EXPECT_EQ(m.name, "from-disk");
  EXPECT_EQ(m.n_members(), 2u);
  EXPECT_THROW((void)ensemble::load_manifest(path + ".nope"), mali::Error);
}

// ---- result cache -----------------------------------------------------

namespace {

ensemble::MemberRecord sample_record(const std::string& canonical) {
  ensemble::MemberRecord rec;
  rec.canonical = canonical;
  rec.steps = 7;
  rec.velocity_solves = 5;
  rec.newton_iters = 23;
  rec.rejections = 1;
  rec.volume_initial = 1.0 / 3.0;
  rec.volume_final = 0.1 + 0.2;  // deliberately not 0.3
  rec.mean_velocity = -0.0;
  rec.max_mass_residual = 4.9e-324;
  rec.U = {1.5, -2.25, 1.0 / 7.0};
  rec.H = {3.0, 4.9406564584124654e-324};
  return rec;
}

void expect_record_bitwise(const ensemble::MemberRecord& a,
                           const ensemble::MemberRecord& b) {
  EXPECT_EQ(a.canonical, b.canonical);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.velocity_solves, b.velocity_solves);
  EXPECT_EQ(a.newton_iters, b.newton_iters);
  EXPECT_EQ(a.rejections, b.rejections);
  EXPECT_EQ(bits(a.volume_initial), bits(b.volume_initial));
  EXPECT_EQ(bits(a.volume_final), bits(b.volume_final));
  EXPECT_EQ(bits(a.mean_velocity), bits(b.mean_velocity));
  EXPECT_EQ(bits(a.max_mass_residual), bits(b.max_mass_residual));
  EXPECT_TRUE(bitwise_equal(a.U, b.U));
  EXPECT_TRUE(bitwise_equal(a.H, b.H));
}

}  // namespace

TEST(ResultCache, MemoryRoundTripIsBitExact) {
  ensemble::ResultCache cache;  // memory-only
  EXPECT_EQ(cache.find("k1"), nullptr);
  const auto rec = sample_record("k1");
  cache.store(rec);
  const auto* hit = cache.find("k1");
  ASSERT_NE(hit, nullptr);
  expect_record_bitwise(*hit, rec);
  EXPECT_EQ(cache.find("k2"), nullptr);
}

TEST(ResultCache, DiskRoundTripAcrossInstancesIsBitExact) {
  const std::string dir = temp_dir("ensr_cache_rt");
  const auto rec = sample_record("disk-key|v=1");
  {
    ensemble::ResultCache writer(dir);
    writer.store(rec);
  }
  ensemble::ResultCache reader(dir);  // fresh process simulation
  const auto* hit = reader.find("disk-key|v=1");
  ASSERT_NE(hit, nullptr);
  expect_record_bitwise(*hit, rec);
}

TEST(ResultCache, HashCollisionDegradesToAMissNeverAWrongResult) {
  const std::string dir = temp_dir("ensr_cache_coll");
  const std::string key_a = "canonical-A";
  const std::string key_b = "canonical-B";
  {
    ensemble::ResultCache writer(dir);
    writer.store(sample_record(key_a));
  }
  // Simulate fnv1a(key_b) == fnv1a(key_a): plant A's record at B's slot.
  const std::string file_a =
      dir + "/" + ensemble::ResultCache::key_hex(
                      ensemble::ResultCache::fnv1a(key_a)) + ".ensr";
  const std::string file_b =
      dir + "/" + ensemble::ResultCache::key_hex(
                      ensemble::ResultCache::fnv1a(key_b)) + ".ensr";
  ASSERT_EQ(std::rename(file_a.c_str(), file_b.c_str()), 0);
  ensemble::ResultCache reader(dir);
  // The stored canonical string says A, the lookup says B: must miss.
  EXPECT_EQ(reader.find(key_b), nullptr);
}

TEST(ResultCache, CorruptDiskRecordsAreMisses) {
  const std::string dir = temp_dir("ensr_cache_bad");
  const std::string key = "corrupt-me";
  {
    ensemble::ResultCache writer(dir);
    writer.store(sample_record(key));
  }
  const std::string file =
      dir + "/" + ensemble::ResultCache::key_hex(
                      ensemble::ResultCache::fnv1a(key)) + ".ensr";
  // Truncate mid-record.
  std::FILE* f = std::fopen(file.c_str(), "r+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(file.c_str(), size / 2), 0);
  ensemble::ResultCache reader(dir);
  EXPECT_EQ(reader.find(key), nullptr);
  // Garbage magic.
  std::FILE* g = std::fopen(file.c_str(), "w");
  ASSERT_NE(g, nullptr);
  std::fputs("NOTMAGIC-and-then-some", g);
  std::fclose(g);
  ensemble::ResultCache reader2(dir);
  EXPECT_EQ(reader2.find(key), nullptr);
}

// ---- recycled AMG + Chebyshev hints -----------------------------------

TEST(EnsembleAmg, StructureReuseIsBitIdenticalToARebuild) {
  // Fine enough that the hierarchy actually coarsens (> 1 level), so the
  // replay path re-runs real aggregation maps, not just the fine level.
  physics::StokesFOConfig pcfg;
  pcfg.dx_m = 64.0e3;
  pcfg.n_layers = 5;
  physics::StokesFOProblem problem(pcfg);
  const auto U = problem.analytic_initial_guess();
  std::vector<double> F;
  auto A = problem.create_matrix();
  problem.residual_and_jacobian(U, F, A);

  linalg::AmgConfig fresh_cfg;
  fresh_cfg.smoother = linalg::AmgSmoother::kChebyshev;
  linalg::AmgConfig reuse_cfg = fresh_cfg;
  reuse_cfg.reuse_structure = true;

  linalg::SemicoarseningAmg fresh(problem.extrusion_info(), fresh_cfg);
  linalg::SemicoarseningAmg reused(problem.extrusion_info(), reuse_cfg);
  fresh.compute(A);
  ASSERT_GT(fresh.n_levels(), 1u);  // the replay below is nontrivial
  reused.compute(A);   // first compute: derives and caches the aggregation
  reused.compute(A);   // second: replays the cached structure
  EXPECT_EQ(reused.hierarchy_builds(), 1u);
  EXPECT_EQ(reused.structure_reuses(), 1u);
  EXPECT_EQ(fresh.structure_reuses(), 0u);
  EXPECT_EQ(reused.n_levels(), fresh.n_levels());

  // The recycled hierarchy must apply bit-identically to the rebuilt one.
  std::vector<double> r(A.n_rows());
  for (std::size_t i = 0; i < r.size(); ++i) {
    r[i] = std::sin(0.1 * static_cast<double>(i) + 0.3);
  }
  std::vector<double> z_fresh(r.size()), z_reused(r.size());
  fresh.apply(r, z_fresh);
  reused.apply(r, z_reused);
  EXPECT_TRUE(bitwise_equal(z_fresh, z_reused));
}

TEST(EnsembleAmg, ChebyshevHintsSkipPowerIterationBitIdentically) {
  physics::StokesFOConfig pcfg;
  pcfg.dx_m = 220.0e3;
  pcfg.n_layers = 3;
  physics::StokesFOProblem problem(pcfg);
  const auto U = problem.analytic_initial_guess();
  std::vector<double> F;
  auto A = problem.create_matrix();
  problem.residual_and_jacobian(U, F, A);

  linalg::AmgConfig acfg;
  acfg.smoother = linalg::AmgSmoother::kChebyshev;
  acfg.reuse_structure = true;
  linalg::SemicoarseningAmg amg(problem.extrusion_info(), acfg);
  amg.compute(A);
  const auto estimates = amg.chebyshev_lambda_estimates();
  ASSERT_FALSE(estimates.empty());
  for (const double l : estimates) EXPECT_GT(l, 0.0);

  // Recompute with the harvested estimates as hints: the smoothers must
  // adopt them (no power iteration) and land on the SAME bounds bitwise,
  // so the hinted preconditioner applies bit-identically.
  std::vector<double> r(A.n_rows());
  for (std::size_t i = 0; i < r.size(); ++i) {
    r[i] = std::cos(0.07 * static_cast<double>(i));
  }
  std::vector<double> z_cold(r.size());
  amg.apply(r, z_cold);

  amg.set_chebyshev_lambda_hints(estimates);
  amg.compute(A);
  const auto hinted = amg.chebyshev_lambda_estimates();
  ASSERT_TRUE(bitwise_equal(hinted, estimates));
  std::vector<double> z_hint(r.size());
  amg.apply(r, z_hint);
  EXPECT_TRUE(bitwise_equal(z_cold, z_hint));
}

// ---- engine -----------------------------------------------------------

TEST(EnsembleEngine, CacheServedRerunIsByteIdenticalAndAllHits) {
  ensemble::EnsembleConfig cfg;
  cfg.verbose = false;
  ensemble::EnsembleEngine engine(small_manifest(), cfg);
  const auto first = engine.run();
  EXPECT_EQ(first.stats.cache_misses, 2u);
  EXPECT_EQ(first.stats.cache_hits, 0u);
  const auto second = engine.run();
  EXPECT_EQ(second.stats.cache_hits, 2u);
  EXPECT_EQ(second.stats.cache_misses, 0u);
  // The deterministic members section is byte-identical between the
  // computing run and the cache-served rerun.
  EXPECT_EQ(ensemble::EnsembleEngine::members_json(first),
            ensemble::EnsembleEngine::members_json(second));
  for (std::size_t i = 0; i < first.records.size(); ++i) {
    expect_record_bitwise(first.records[i], second.records[i]);
  }
}

TEST(EnsembleEngine, DiskCacheServesASecondEngine) {
  const std::string dir = temp_dir("ensr_engine_disk");
  ensemble::EnsembleConfig cfg;
  cfg.cache_dir = dir;
  const auto m = small_manifest();
  const auto first = ensemble::EnsembleEngine(m, cfg).run();
  EXPECT_EQ(first.stats.cache_misses, m.n_members());
  // A brand-new engine (fresh memory cache) over the same disk dir: every
  // member a disk hit, members section byte-identical.
  const auto second = ensemble::EnsembleEngine(m, cfg).run();
  EXPECT_EQ(second.stats.cache_hits, m.n_members());
  EXPECT_EQ(second.stats.cache_misses, 0u);
  EXPECT_EQ(ensemble::EnsembleEngine::members_json(first),
            ensemble::EnsembleEngine::members_json(second));
}

TEST(EnsembleEngine, WarmStartMatchesColdWithinTolerancePerDof) {
  const auto m = small_manifest();
  ensemble::EnsembleConfig warm_cfg;
  warm_cfg.use_cache = false;  // force both runs to compute
  warm_cfg.warm_start = true;
  ensemble::EnsembleConfig cold_cfg = warm_cfg;
  cold_cfg.warm_start = false;

  const auto warm = ensemble::EnsembleEngine(m, warm_cfg).run();
  const auto cold = ensemble::EnsembleEngine(m, cold_cfg).run();
  EXPECT_GT(warm.stats.warm_starts, 0u);
  EXPECT_EQ(cold.stats.warm_starts, 0u);
  for (std::size_t i = 0; i < warm.records.size(); ++i) {
    const auto& wu = warm.records[i].U;
    const auto& cu = cold.records[i].U;
    ASSERT_EQ(wu.size(), cu.size());
    EXPECT_LE(max_abs_diff(wu, cu) / static_cast<double>(wu.size()), 1e-10)
        << "member " << i;
  }
}

TEST(EnsembleEngine, RecycledAmgMatchesRebuiltWithinTolerancePerDof) {
  const auto m = small_manifest();
  ensemble::EnsembleConfig on;
  on.use_cache = false;
  on.warm_start = false;  // isolate the recycling effect
  on.recycle = true;
  ensemble::EnsembleConfig off = on;
  off.recycle = false;

  const auto recycled = ensemble::EnsembleEngine(m, on).run();
  const auto rebuilt = ensemble::EnsembleEngine(m, off).run();
  EXPECT_GT(recycled.stats.amg_reuses, 0u);
  EXPECT_EQ(rebuilt.stats.amg_reuses, 0u);
  for (std::size_t i = 0; i < recycled.records.size(); ++i) {
    const auto& ru = recycled.records[i].U;
    const auto& bu = rebuilt.records[i].U;
    ASSERT_EQ(ru.size(), bu.size());
    EXPECT_LE(max_abs_diff(ru, bu) / static_cast<double>(ru.size()), 1e-10)
        << "member " << i;
    // The scalar diagnostics agree too (steps/rejections identical paths
    // would be too strong — the hinted smoother may change GMRES counts —
    // but the physics must match).
    EXPECT_NEAR(recycled.records[i].volume_final,
                rebuilt.records[i].volume_final,
                1e-6 * std::fabs(rebuilt.records[i].volume_final));
  }
}

TEST(EnsembleEngine, ExecutionFollowsTheScheduleAndKeysExcludeLabels) {
  auto m = small_manifest();
  const auto members = ensemble::expand_members(m);

  // rank_groups and name are scheduling/labels: the cache key must not
  // change when they do (a renamed manifest reuses the same results).
  auto relabeled = m;
  relabeled.name = "totally-different";
  relabeled.rank_groups = 2;
  for (const auto& p : members) {
    EXPECT_EQ(ensemble::EnsembleEngine::member_canonical_key(m, p, 1),
              ensemble::EnsembleEngine::member_canonical_key(relabeled, p, 1));
  }
  // ranks DO enter the key (a distributed solve is a different pipeline).
  EXPECT_NE(ensemble::EnsembleEngine::member_canonical_key(m, members[0], 1),
            ensemble::EnsembleEngine::member_canonical_key(m, members[0], 2));
  // Physics parameters move the key.
  auto p2 = members[0];
  p2.friction_scale *= 2.0;
  EXPECT_NE(ensemble::EnsembleEngine::member_canonical_key(m, members[0], 1),
            ensemble::EnsembleEngine::member_canonical_key(m, p2, 1));

  // The schedule in the output covers every member exactly once.
  ensemble::EnsembleConfig cfg;
  m.rank_groups = 2;
  const auto out = ensemble::EnsembleEngine(m, cfg).run();
  ASSERT_EQ(out.schedule.groups.size(), 2u);
  std::set<std::size_t> seen;
  for (const auto& g : out.schedule.groups) {
    for (const std::size_t id : g) EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_EQ(seen.size(), members.size());
}

TEST(EnsembleEngine, MalformedMemberForcingIsATypedError) {
  auto m = small_manifest();
  m.forcing = {"volcano:eruption=1"};
  ensemble::EnsembleConfig cfg;
  ensemble::EnsembleEngine engine(m, cfg);
  EXPECT_THROW((void)engine.run(), mali::Error);
}

TEST(EnsembleEngine, ResultsJsonCarriesSchemaScheduleAndMembers) {
  const auto m = small_manifest();
  ensemble::EnsembleConfig cfg;
  ensemble::EnsembleEngine engine(m, cfg);
  const auto out = engine.run();
  const std::string with_stats =
      ensemble::EnsembleEngine::results_json(out, m, true);
  EXPECT_NE(with_stats.find("\"schema\": \"mali-ensemble-results-v2\""),
            std::string::npos);
  EXPECT_NE(with_stats.find("\"manifest\": "), std::string::npos);
  EXPECT_NE(with_stats.find("\"members\": "), std::string::npos);
  EXPECT_NE(with_stats.find("\"stats\": "), std::string::npos);
  EXPECT_NE(with_stats.find("\"wall_seconds\": "), std::string::npos);
  // Without stats the document is fully deterministic; the members
  // fragment embedded in it is exactly members_json.
  const std::string no_stats =
      ensemble::EnsembleEngine::results_json(out, m, false);
  EXPECT_EQ(no_stats.find("wall_seconds"), std::string::npos);
  EXPECT_NE(no_stats.find(ensemble::EnsembleEngine::members_json(out)),
            std::string::npos);
}

// ---- graceful degradation (DESIGN.md §16) -----------------------------

TEST(EnsembleEngine, PermanentMemberFaultIsQuarantinedNotFatal) {
  const auto m = small_manifest();
  ensemble::EnsembleConfig cfg;
  cfg.member_retries = 1;
  // The pre-attempt seam models a permanently broken member: every
  // attempt for member 1 fails, so the retry budget is exhausted and the
  // member is quarantined while the batch completes.
  cfg.before_attempt = [](std::size_t id, int) {
    if (id == 1) throw mali::Error("injected permanent member fault");
  };
  ensemble::EnsembleEngine engine(m, cfg);
  const auto out = engine.run();  // must not throw

  ASSERT_EQ(out.records.size(), 2u);
  EXPECT_EQ(out.records[0].status, "ok");
  EXPECT_EQ(out.records[1].status, "quarantined");
  EXPECT_EQ(out.records[1].attempts, 2);
  EXPECT_NE(out.records[1].fault.find("injected permanent member fault"),
            std::string::npos);
  // A quarantined record carries no state (nothing to donate or cache).
  EXPECT_TRUE(out.records[1].U.empty());
  EXPECT_EQ(out.records[1].steps, 0);
  EXPECT_EQ(out.stats.quarantined, 1u);
  EXPECT_EQ(out.stats.retried, 0u);
  // The results document labels the member for downstream consumers.
  const std::string json = ensemble::EnsembleEngine::members_json(out);
  EXPECT_NE(json.find("\"status\": \"quarantined\""), std::string::npos);

  // Quarantined members are never cached: a rerun serves the healthy
  // member from cache (one hit, zero misses) and re-attempts the broken
  // one, quarantining it again.
  const auto second = engine.run();
  EXPECT_EQ(second.stats.cache_hits, 1u);
  EXPECT_EQ(second.stats.cache_misses, 0u);
  EXPECT_EQ(second.stats.quarantined, 1u);
  EXPECT_EQ(second.records[1].status, "quarantined");
}

TEST(EnsembleEngine, TransientMemberFaultIsRetriedAndMatchesACleanRun) {
  const auto m = small_manifest();
  ensemble::EnsembleConfig clean_cfg;
  clean_cfg.use_cache = false;
  const auto clean = ensemble::EnsembleEngine(m, clean_cfg).run();

  // Member 0 fails exactly once; the retry runs clean (the transient
  // fault model), so the batch degrades to one extra attempt and the
  // numbers are indistinguishable from an undisturbed run.
  int injected = 0;
  ensemble::EnsembleConfig cfg;
  cfg.use_cache = false;
  cfg.member_retries = 2;
  cfg.before_attempt = [&injected](std::size_t id, int attempt) {
    if (id == 0 && attempt == 0) {
      ++injected;
      throw mali::Error("injected transient member fault");
    }
  };
  const auto out = ensemble::EnsembleEngine(m, cfg).run();

  EXPECT_EQ(injected, 1);
  ASSERT_EQ(out.records.size(), clean.records.size());
  EXPECT_EQ(out.records[0].status, "retried");
  EXPECT_EQ(out.records[0].attempts, 2);
  EXPECT_NE(out.records[0].fault.find("injected transient member fault"),
            std::string::npos);
  EXPECT_EQ(out.records[1].status, "ok");
  EXPECT_EQ(out.stats.retried, 1u);
  EXPECT_EQ(out.stats.quarantined, 0u);
  for (std::size_t i = 0; i < out.records.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(out.records[i].U, clean.records[i].U))
        << "member " << i;
    EXPECT_EQ(out.records[i].steps, clean.records[i].steps) << "member " << i;
    EXPECT_EQ(bits(out.records[i].volume_final),
              bits(clean.records[i].volume_final))
        << "member " << i;
  }
}
