// Flow-law and sliding-law tests: the Paterson–Budd Arrhenius factor,
// Weertman friction (including its AD derivatives), temperature-dependent
// viscosity in the full problem, and Jacobian consistency of the Weertman
// solve path.

#include <gtest/gtest.h>

#include <cmath>

#include "ad/sfad.hpp"
#include "linalg/semicoarsening_amg.hpp"
#include "mesh/ice_geometry.hpp"
#include "nonlinear/newton.hpp"
#include "physics/flow_law.hpp"
#include "physics/stokes_fo_problem.hpp"

using namespace mali;
using physics::friction_factor;
using physics::paterson_budd_A;
using physics::SlidingConfig;
using physics::SlidingLaw;

TEST(PatersonBudd, ColdWarmBranchesAndMonotonicity) {
  // Warmer ice deforms faster: A strictly increases with temperature.
  double prev = 0.0;
  for (double T = 223.0; T <= 272.0; T += 1.0) {
    const double A = paterson_budd_A(T);
    EXPECT_GT(A, prev) << "T=" << T;
    prev = A;
  }
  // Order of magnitude: A(263 K) is within the glaciological ballpark of
  // the uniform default 1e-16 Pa^-3 yr^-1.
  const double A263 = paterson_budd_A(263.0);
  EXPECT_GT(A263, 1e-18);
  EXPECT_LT(A263, 1e-15);
  // The two branches join continuously (within a few percent at the split).
  EXPECT_NEAR(paterson_budd_A(263.14) / paterson_budd_A(263.16), 1.0, 0.05);
}

TEST(IceGeometry, TemperatureProfile) {
  mesh::IceGeometry g;
  // Bed warmer than surface; surface warms toward the margin.
  EXPECT_GT(g.temperature(0, 0, 0.0), g.temperature(0, 0, 1.0));
  const double L = g.extent(0.0);
  EXPECT_GT(g.temperature(0.9 * L, 0, 1.0), g.temperature(0, 0, 1.0));
  // Everything in a physical range.
  for (double s = 0.0; s <= 1.0; s += 0.25) {
    const double T = g.temperature(2e5, -3e5, s);
    EXPECT_GT(T, 200.0);
    EXPECT_LT(T, 275.0);
  }
}

TEST(Sliding, LinearLawIsBeta) {
  SlidingConfig cfg;
  cfg.law = SlidingLaw::kLinear;
  EXPECT_DOUBLE_EQ(friction_factor(cfg, 1234.5, 10.0, -3.0), 1234.5);
}

TEST(Sliding, WeertmanReducesToLinearAtMEqualsOne) {
  SlidingConfig cfg;
  cfg.law = SlidingLaw::kWeertman;
  cfg.weertman_m = 1.0;
  EXPECT_NEAR(friction_factor(cfg, 500.0, 120.0, -80.0), 500.0, 1e-10);
}

TEST(Sliding, WeertmanShearThinning) {
  // m < 1: effective friction decreases with speed.
  SlidingConfig cfg;
  cfg.law = SlidingLaw::kWeertman;
  const double slow = friction_factor(cfg, 1e4, 1.0, 0.0);
  const double fast = friction_factor(cfg, 1e4, 100.0, 0.0);
  EXPECT_GT(slow, fast);
  // tau_b = f(u) u still increases with u (monotone sliding law for m>0).
  EXPECT_GT(fast * 100.0, slow * 1.0);
}

TEST(Sliding, RegularizedAtZeroVelocity) {
  SlidingConfig cfg;
  cfg.law = SlidingLaw::kWeertman;
  const double f0 = friction_factor(cfg, 1e4, 0.0, 0.0);
  EXPECT_TRUE(std::isfinite(f0));
  EXPECT_GT(f0, 0.0);
}

TEST(Sliding, WeertmanDerivativesMatchFiniteDifferences) {
  using Fad = ad::SFad<double, 2>;
  SlidingConfig cfg;
  cfg.law = SlidingLaw::kWeertman;
  const double beta = 3.0e3, u0 = 45.0, v0 = -20.0;
  Fad u(u0, 0), v(v0, 1);
  const Fad f = friction_factor(cfg, beta, u, v);
  auto fd = [&](double du, double dv) {
    const double h = 1e-6;
    return (friction_factor(cfg, beta, u0 + h * du, v0 + h * dv) -
            friction_factor(cfg, beta, u0 - h * du, v0 - h * dv)) /
           (2e-6);
  };
  EXPECT_NEAR(f.dx(0), fd(1, 0), std::abs(fd(1, 0)) * 1e-5);
  EXPECT_NEAR(f.dx(1), fd(0, 1), std::abs(fd(0, 1)) * 1e-5);
}

namespace {

physics::StokesFOConfig small_config() {
  physics::StokesFOConfig cfg;
  cfg.dx_m = 250.0e3;
  cfg.n_layers = 4;
  return cfg;
}

}  // namespace

TEST(ThermalViscosity, ChangesTheSolution) {
  auto cfg = small_config();
  physics::StokesFOProblem uniform(cfg);
  cfg.thermal_viscosity = true;
  physics::StokesFOProblem thermal(cfg);
  const auto U = uniform.analytic_initial_guess();
  std::vector<double> Fu, Ft;
  uniform.residual(U, Fu);
  thermal.residual(U, Ft);
  double diff = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < Fu.size(); ++i) {
    diff += (Fu[i] - Ft[i]) * (Fu[i] - Ft[i]);
    norm += Fu[i] * Fu[i];
  }
  EXPECT_GT(std::sqrt(diff / norm), 1e-3)
      << "the Arrhenius factor must actually change the residual";
}

TEST(ThermalViscosity, SolveConverges) {
  auto cfg = small_config();
  cfg.thermal_viscosity = true;
  physics::StokesFOProblem p(cfg);
  linalg::SemicoarseningAmg amg(p.extrusion_info());
  nonlinear::NewtonConfig ncfg;
  ncfg.max_iters = 12;
  nonlinear::NewtonSolver newton(ncfg);
  std::vector<double> U(p.n_dofs(), 0.0);
  const auto r = newton.solve(p, amg, U);
  EXPECT_LT(r.residual_norm, 1e-3 * r.initial_norm);
  EXPECT_GT(p.mean_velocity(U), 0.1);
}

TEST(WeertmanSliding, JacobianMatchesFiniteDifference) {
  auto cfg = small_config();
  cfg.sliding.law = SlidingLaw::kWeertman;
  physics::StokesFOProblem p(cfg);
  auto U = p.analytic_initial_guess();
  std::vector<double> F;
  auto J = p.create_matrix();
  p.residual_and_jacobian(U, F, J);

  std::vector<double> dir(p.n_dofs());
  for (std::size_t i = 0; i < dir.size(); ++i) {
    dir[i] = std::sin(0.37 * static_cast<double>(i) + 0.2);
  }
  std::vector<double> Jd;
  J.apply(dir, Jd);
  auto fd_err = [&](double h) {
    std::vector<double> Up(U), Um(U), Fp, Fm;
    for (std::size_t i = 0; i < U.size(); ++i) {
      Up[i] += h * dir[i];
      Um[i] -= h * dir[i];
    }
    p.residual(Up, Fp);
    p.residual(Um, Fm);
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < U.size(); ++i) {
      const double fd = (Fp[i] - Fm[i]) / (2.0 * h);
      num += (fd - Jd[i]) * (fd - Jd[i]);
      den += fd * fd;
    }
    return std::sqrt(num / den);
  };
  const double e1 = fd_err(1e-4);
  EXPECT_LT(e1, 1e-3)
      << "Weertman friction must be consistently differentiated";
  EXPECT_LT(fd_err(5e-5), 0.5 * e1);
}

TEST(WeertmanSliding, FasterFlowThanLinearInStreams) {
  // Shear-thinning sliding lets the fast ice stream flow faster than the
  // linear law with the same nominal beta.
  auto cfg = small_config();
  physics::StokesFOProblem lin(cfg);
  cfg.sliding.law = SlidingLaw::kWeertman;
  physics::StokesFOProblem wee(cfg);

  nonlinear::NewtonConfig ncfg;
  ncfg.max_iters = 12;
  nonlinear::NewtonSolver newton(ncfg);
  double means[2];
  int i = 0;
  for (auto* p : {&lin, &wee}) {
    linalg::SemicoarseningAmg amg(p->extrusion_info());
    std::vector<double> U(p->n_dofs(), 0.0);
    newton.solve(*p, amg, U);
    means[i++] = p->mean_velocity(U);
  }
  EXPECT_GT(means[1], means[0]);
}
