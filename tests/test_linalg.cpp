// Linear-algebra substrate tests: CRS matrix ops, vector helpers, GMRES on
// manufactured systems, and the pointwise preconditioners.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/crs_matrix.hpp"
#include "linalg/gmres.hpp"
#include "linalg/preconditioner.hpp"

using namespace mali::linalg;

namespace {

/// Dense -> CRS (keeping explicit zeros off the graph).
CrsMatrix from_dense(const std::vector<std::vector<double>>& d) {
  const std::size_t n = d.size();
  std::vector<std::size_t> rp{0}, cols;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (d[i][j] != 0.0) cols.push_back(j);
    }
    rp.push_back(cols.size());
  }
  CrsMatrix A(rp, cols);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (d[i][j] != 0.0) A.set(i, j, d[i][j]);
    }
  }
  return A;
}

/// 1D Laplacian (tridiagonal), SPD.
CrsMatrix laplacian_1d(std::size_t n) {
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    d[i][i] = 2.0;
    if (i > 0) d[i][i - 1] = -1.0;
    if (i + 1 < n) d[i][i + 1] = -1.0;
  }
  return from_dense(d);
}

/// Nonsymmetric convection-diffusion-like matrix.
CrsMatrix convdiff_1d(std::size_t n, double c) {
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    d[i][i] = 2.0 + 0.1;
    if (i > 0) d[i][i - 1] = -1.0 - c;
    if (i + 1 < n) d[i][i + 1] = -1.0 + c;
  }
  return from_dense(d);
}

std::vector<double> random_vec(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

double residual_norm(const CrsMatrix& A, const std::vector<double>& x,
                     const std::vector<double>& b) {
  std::vector<double> r;
  A.apply(x, r);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
  return norm2(r);
}

}  // namespace

TEST(CrsMatrix, ApplyMatchesDense) {
  std::vector<std::vector<double>> d = {
      {4, -1, 0, 0}, {-1, 4, -1, 0}, {0, -1, 4, -1}, {0, 0, -1, 4}};
  const CrsMatrix A = from_dense(d);
  EXPECT_EQ(A.n_rows(), 4u);
  EXPECT_EQ(A.nnz(), 10u);
  const std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y;
  A.apply(x, y);
  for (std::size_t i = 0; i < 4; ++i) {
    double e = 0;
    for (std::size_t j = 0; j < 4; ++j) e += d[i][j] * x[j];
    EXPECT_NEAR(y[i], e, 1e-14);
  }
}

TEST(CrsMatrix, AddSetGetAndIdentityRow) {
  CrsMatrix A = laplacian_1d(5);
  A.add(2, 1, -0.5);
  EXPECT_NEAR(A.get(2, 1), -1.5, 1e-15);
  A.set(2, 1, 7.0);
  EXPECT_NEAR(A.get(2, 1), 7.0, 1e-15);
  EXPECT_EQ(A.get(0, 4), 0.0);  // off-graph
  A.set_identity_row(2);
  EXPECT_EQ(A.get(2, 1), 0.0);
  EXPECT_EQ(A.get(2, 2), 1.0);
  EXPECT_EQ(A.get(2, 3), 0.0);
}

TEST(CrsMatrix, SetZeroAndDiagonal) {
  CrsMatrix A = laplacian_1d(4);
  EXPECT_EQ(A.diagonal(1), 2.0);
  A.set_zero();
  EXPECT_EQ(A.diagonal(1), 0.0);
  EXPECT_EQ(A.nnz(), 10u);  // graph unchanged
}

TEST(VectorOps, DotNormAxpyScale) {
  std::vector<double> a = {1, 2, 3}, b = {4, -5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 12.0);
  EXPECT_DOUBLE_EQ(norm2(a), std::sqrt(14.0));
  axpy(2.0, a, b);  // b += 2a
  EXPECT_DOUBLE_EQ(b[0], 6.0);
  EXPECT_DOUBLE_EQ(b[1], -1.0);
  EXPECT_DOUBLE_EQ(b[2], 12.0);
  scale(0.5, b);
  EXPECT_DOUBLE_EQ(b[2], 6.0);
}

TEST(Gmres, SolvesIdentityInOneIteration) {
  auto A = from_dense({{1, 0}, {0, 1}});
  IdentityPreconditioner M;
  std::vector<double> b = {3.0, -4.0}, x;
  const auto r = Gmres({1e-12, 10, 10}).solve(A, M, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 1u);
  EXPECT_NEAR(x[0], 3.0, 1e-10);
  EXPECT_NEAR(x[1], -4.0, 1e-10);
}

TEST(Gmres, ZeroRhsGivesZeroSolution) {
  auto A = laplacian_1d(6);
  IdentityPreconditioner M;
  std::vector<double> b(6, 0.0), x(6, 1.0);
  const auto r = Gmres().solve(A, M, b, x);
  EXPECT_TRUE(r.converged);
  for (double v : x) EXPECT_EQ(v, 0.0);
}

class GmresPreconditioners : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  std::unique_ptr<Preconditioner> make(int which) {
    switch (which) {
      case 0: return std::make_unique<IdentityPreconditioner>();
      case 1: return std::make_unique<JacobiPreconditioner>();
      case 2: return std::make_unique<SymGaussSeidelPreconditioner>();
      default: return std::make_unique<Ilu0Preconditioner>();
    }
  }
};

TEST_P(GmresPreconditioners, SolvesSpdSystem) {
  const auto [which, size] = GetParam();
  auto A = laplacian_1d(static_cast<std::size_t>(size));
  auto M = make(which);
  M->compute(A);
  const auto b = random_vec(static_cast<std::size_t>(size), 42);
  std::vector<double> x;
  GmresConfig cfg;
  cfg.rel_tol = 1e-10;
  cfg.max_iters = 500;
  const auto r = Gmres(cfg).solve(A, *M, b, x);
  EXPECT_TRUE(r.converged) << "precond " << M->name();
  EXPECT_LT(residual_norm(A, x, b) / norm2(b), 1e-9);
}

TEST_P(GmresPreconditioners, SolvesNonsymmetricSystem) {
  const auto [which, size] = GetParam();
  auto A = convdiff_1d(static_cast<std::size_t>(size), 0.4);
  auto M = make(which);
  M->compute(A);
  const auto b = random_vec(static_cast<std::size_t>(size), 7);
  std::vector<double> x;
  GmresConfig cfg;
  cfg.rel_tol = 1e-10;
  cfg.max_iters = 500;
  const auto r = Gmres(cfg).solve(A, *M, b, x);
  EXPECT_TRUE(r.converged) << "precond " << M->name();
  EXPECT_LT(residual_norm(A, x, b) / norm2(b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(All, GmresPreconditioners,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(5, 32, 101)));

TEST(Gmres, RestartStillConverges) {
  auto A = laplacian_1d(64);
  IdentityPreconditioner M;
  const auto b = random_vec(64, 3);
  std::vector<double> x;
  GmresConfig cfg;
  cfg.restart = 5;  // force many restarts
  cfg.max_iters = 5000;
  cfg.rel_tol = 1e-8;
  const auto r = Gmres(cfg).solve(A, M, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(residual_norm(A, x, b) / norm2(b), 1e-7);
}

TEST(Gmres, PreconditioningReducesIterations) {
  auto A = laplacian_1d(200);
  const auto b = random_vec(200, 9);
  GmresConfig cfg;
  cfg.rel_tol = 1e-8;
  cfg.max_iters = 2000;
  cfg.restart = 200;

  IdentityPreconditioner none;
  std::vector<double> x0;
  const auto r0 = Gmres(cfg).solve(A, none, b, x0);

  Ilu0Preconditioner ilu;
  ilu.compute(A);
  std::vector<double> x1;
  const auto r1 = Gmres(cfg).solve(A, ilu, b, x1);

  EXPECT_TRUE(r0.converged);
  EXPECT_TRUE(r1.converged);
  EXPECT_LT(r1.iterations, r0.iterations / 2)
      << "ILU0 should cut iterations substantially on the 1D Laplacian";
}

TEST(Ilu0, ExactForTriangularFactorizablePattern) {
  // On a tridiagonal matrix ILU(0) is the exact LU, so one application
  // solves the system.
  auto A = laplacian_1d(40);
  Ilu0Preconditioner ilu;
  ilu.compute(A);
  const auto b = random_vec(40, 11);
  std::vector<double> x;
  ilu.apply(b, x);
  EXPECT_LT(residual_norm(A, x, b) / norm2(b), 1e-12);
}

TEST(Jacobi, ZeroDiagonalThrows) {
  auto A = from_dense({{0.0, 1.0}, {1.0, 2.0}});
  JacobiPreconditioner M;
  EXPECT_THROW(M.compute(A), mali::Error);
}

TEST(Jacobi, ApplyDividesByDiagonal) {
  auto A = from_dense({{2.0, 0.0}, {0.0, 4.0}});
  JacobiPreconditioner M;
  M.compute(A);
  std::vector<double> z;
  M.apply({2.0, 2.0}, z);
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], 0.5);
}

TEST(SymGaussSeidel, ImprovesOverJacobiOnLaplacian) {
  auto A = laplacian_1d(50);
  const auto b = random_vec(50, 13);
  JacobiPreconditioner jac;
  jac.compute(A);
  SymGaussSeidelPreconditioner sgs(1);
  sgs.compute(A);
  std::vector<double> zj, zs;
  jac.apply(b, zj);
  sgs.apply(b, zs);
  EXPECT_LT(residual_norm(A, zs, b), residual_norm(A, zj, b));
}
