// Krylov/Newton failure contract: no `solve()` aborts the process on a
// well-formed (square, size-consistent) system.  Algorithmic breakdowns are
// reported through the result — `breakdown` set, `reason` naming the failed
// invariant, `rel_residual` the TRUE ||b - A x|| / ||b|| at the returned
// iterate — and the Newton driver records inner-solve failures and
// line-search stagnation instead of silently ignoring them.
//
// Engineered cases:
//   * CG on diag(1, -1):                p^T A p == 0 (indefinite);
//   * CG / BiCGStab / GMRES on A == 0:  every invariant fails immediately —
//     the solvers must return (in O(1) iterations for GMRES, not the
//     iteration cap) with the untouched residual;
//   * BiCGStab on the rotation [[0,1],[-1,0]] with b = e1: (r0, A p) == 0
//     on the first step;
//   * Newton with a crippled GMRES budget:   linear_failures recorded;
//   * Newton fed a wrong-sign Jacobian:      line_search_stalled recorded.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "linalg/gmres.hpp"
#include "linalg/krylov.hpp"
#include "linalg/pipelined_krylov.hpp"
#include "linalg/preconditioner.hpp"
#include "nonlinear/newton.hpp"

using namespace mali;
using namespace mali::linalg;

namespace {

/// Dense-by-rows CRS helper for tiny systems.
CrsMatrix dense2(double a00, double a01, double a10, double a11) {
  CrsMatrix A({0, 2, 4}, {0, 1, 0, 1});
  A.set(0, 0, a00);
  A.set(0, 1, a01);
  A.set(1, 0, a10);
  A.set(1, 1, a11);
  return A;
}

double true_rel(const CrsMatrix& A, const std::vector<double>& x,
                const std::vector<double>& b) {
  std::vector<double> Ax;
  A.apply(x, Ax);
  double rr = 0.0, bb = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    rr += (b[i] - Ax[i]) * (b[i] - Ax[i]);
    bb += b[i] * b[i];
  }
  return std::sqrt(rr / bb);
}

/// The n x n zero operator as a CRS matrix (diagonal graph, zero values).
CrsMatrix zero_matrix(std::size_t n) {
  std::vector<std::size_t> rp(n + 1), cols(n);
  for (std::size_t i = 0; i < n; ++i) {
    rp[i + 1] = i + 1;
    cols[i] = i;
  }
  return CrsMatrix(rp, cols);  // values default to zero
}

}  // namespace

// ---------------------------------------------------------------------------
// Conjugate gradients.
// ---------------------------------------------------------------------------

TEST(KrylovFailures, CgIndefiniteOperatorReportsBreakdown) {
  const auto A = dense2(1.0, 0.0, 0.0, -1.0);
  IdentityPreconditioner M;
  const std::vector<double> b = {1.0, 1.0};
  std::vector<double> x;
  KrylovResult r;
  EXPECT_NO_THROW(r = ConjugateGradient().solve(A, M, b, x));
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.breakdown);
  EXPECT_NE(r.reason.find("indefinite"), std::string::npos) << r.reason;
  EXPECT_NEAR(r.rel_residual, true_rel(A, x, b), 1e-14);
}

TEST(KrylovFailures, CgZeroOperatorReportsBreakdown) {
  const auto A = zero_matrix(8);
  IdentityPreconditioner M;
  const std::vector<double> b(8, 1.0);
  std::vector<double> x;
  KrylovResult r;
  EXPECT_NO_THROW(r = ConjugateGradient().solve(A, M, b, x));
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.breakdown);
  // A == 0 never touches b: the true residual is exactly 1.
  EXPECT_DOUBLE_EQ(r.rel_residual, 1.0);
}

TEST(KrylovFailures, CgBreakdownAtConvergedIterateStaysConverged) {
  // x0 already solves the system; the first pAp evaluation happens with
  // r == 0.  The contract: a breakdown at an already-converged iterate
  // still reports converged.
  const auto A = dense2(2.0, 0.0, 0.0, 3.0);
  IdentityPreconditioner M;
  const std::vector<double> b = {2.0, 3.0};
  std::vector<double> x = {1.0, 1.0};  // exact solution
  const auto r = ConjugateGradient().solve(A, M, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.rel_residual, 1e-12);
}

// ---------------------------------------------------------------------------
// BiCGStab.
// ---------------------------------------------------------------------------

TEST(KrylovFailures, BicgstabOrthogonalityBreakdownReportsTrueResidual) {
  // Rotation by 90 degrees: r0 = b = e1, A r0 = -e2, so (r0, A M^{-1} p)
  // vanishes on the first step — the classic (r0, v) == 0 breakdown.  The
  // old code `break`ed out with the *initial* recurrence residual; the fix
  // recomputes ||b - A x|| / ||b|| (== 1 here, x untouched).
  const auto A = dense2(0.0, 1.0, -1.0, 0.0);
  IdentityPreconditioner M;
  const std::vector<double> b = {1.0, 0.0};
  std::vector<double> x;
  KrylovResult r;
  EXPECT_NO_THROW(r = BiCgStab().solve(A, M, b, x));
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.breakdown);
  EXPECT_FALSE(r.reason.empty());
  EXPECT_NEAR(r.rel_residual, true_rel(A, x, b), 1e-14);
  EXPECT_DOUBLE_EQ(r.rel_residual, 1.0);
}

TEST(KrylovFailures, BicgstabZeroOperatorReportsBreakdown) {
  const auto A = zero_matrix(6);
  IdentityPreconditioner M;
  const std::vector<double> b(6, 2.0);
  std::vector<double> x;
  KrylovResult r;
  EXPECT_NO_THROW(r = BiCgStab().solve(A, M, b, x));
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.breakdown);
  EXPECT_DOUBLE_EQ(r.rel_residual, 1.0);
}

TEST(KrylovFailures, BicgstabStillSolvesAfterContractChange) {
  // Regression guard: the breakdown plumbing must not disturb the healthy
  // path.  Nonsymmetric but benign 2x2.
  const auto A = dense2(4.0, 1.0, -1.0, 3.0);
  IdentityPreconditioner M;
  const std::vector<double> b = {1.0, 2.0};
  std::vector<double> x;
  const auto r = BiCgStab({1e-12, 50}).solve(A, M, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.breakdown);
  EXPECT_LT(true_rel(A, x, b), 1e-10);
}

// ---------------------------------------------------------------------------
// GMRES.
// ---------------------------------------------------------------------------

TEST(KrylovFailures, GmresZeroOperatorReturnsQuicklyWithBreakdown) {
  // A == 0 annihilates the whole Krylov basis: the Arnoldi step produces a
  // zero column and the Hessenberg pivot is singular.  Before the fix the
  // solver looped restart cycles to max_iters (the true-residual confirm
  // always failed); now it must return after the first cycle with the
  // breakdown flag and the honest residual.
  const auto A = zero_matrix(10);
  IdentityPreconditioner M;
  const std::vector<double> b(10, 1.0);
  std::vector<double> x;
  GmresConfig cfg;
  cfg.max_iters = 500;
  GmresResult r;
  EXPECT_NO_THROW(r = Gmres(cfg).solve(A, M, b, x));
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.breakdown);
  EXPECT_NE(r.reason.find("Hessenberg"), std::string::npos) << r.reason;
  EXPECT_LE(r.iterations, 2u) << "must not burn the iteration budget";
  EXPECT_DOUBLE_EQ(r.rel_residual, 1.0);
}

TEST(KrylovFailures, GmresHappyBreakdownDoesNotSetFlag) {
  // Exact convergence inside a cycle (identity operator) is the benign
  // happy breakdown — converged, no failure flag.
  std::vector<std::size_t> rp(5), cols(4);
  for (std::size_t i = 0; i < 4; ++i) {
    rp[i + 1] = i + 1;
    cols[i] = i;
  }
  CrsMatrix A(rp, cols);
  for (std::size_t i = 0; i < 4; ++i) A.set(i, i, 1.0);
  IdentityPreconditioner M;
  const std::vector<double> b = {1.0, -2.0, 3.0, -4.0};
  std::vector<double> x;
  const auto r = Gmres().solve(A, M, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.breakdown);
}

// ---------------------------------------------------------------------------
// Pipelined variants: same engineered breakdowns, same typed reporting.
// The fused-reduction restructuring must not reintroduce the
// cycle-to-max_iters failure mode the classic solvers were cured of.
// ---------------------------------------------------------------------------

TEST(KrylovFailures, PipeGmresZeroOperatorReturnsQuicklyWithBreakdown) {
  // A == 0 makes the fused reduction return <w,w> == 0 on the first step:
  // the subspace closes, the Hessenberg pivot is singular, and the solver
  // must return after one cycle with the honest (untouched) residual.
  const auto A = zero_matrix(10);
  IdentityPreconditioner M;
  const std::vector<double> b(10, 1.0);
  std::vector<double> x;
  GmresConfig cfg;
  cfg.max_iters = 500;
  GmresResult r;
  EXPECT_NO_THROW(r = PipelinedGmres(cfg).solve(A, M, b, x));
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.breakdown);
  EXPECT_NE(r.reason.find("Hessenberg"), std::string::npos) << r.reason;
  EXPECT_LE(r.iterations, 2u) << "must not burn the iteration budget";
  EXPECT_DOUBLE_EQ(r.rel_residual, 1.0);
}

TEST(KrylovFailures, PipeGmresHappyBreakdownDoesNotSetFlag) {
  std::vector<std::size_t> rp(5), cols(4);
  for (std::size_t i = 0; i < 4; ++i) {
    rp[i + 1] = i + 1;
    cols[i] = i;
  }
  CrsMatrix A(rp, cols);
  for (std::size_t i = 0; i < 4; ++i) A.set(i, i, 1.0);
  IdentityPreconditioner M;
  const std::vector<double> b = {1.0, -2.0, 3.0, -4.0};
  std::vector<double> x;
  const auto r = PipelinedGmres().solve(A, M, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.breakdown);
}

TEST(KrylovFailures, PipeGmresNonFiniteRhsReportsBreakdown) {
  const auto A = dense2(2.0, 0.0, 0.0, 2.0);
  IdentityPreconditioner M;
  const std::vector<double> b = {1.0, std::nan("")};
  std::vector<double> x;
  GmresResult r;
  EXPECT_NO_THROW(r = PipelinedGmres().solve(A, M, b, x));
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.breakdown);
  EXPECT_NE(r.reason.find("non-finite"), std::string::npos) << r.reason;
  EXPECT_EQ(r.iterations, 0u);
}

TEST(KrylovFailures, PipeCgIndefiniteOperatorReportsBreakdown) {
  const auto A = dense2(1.0, 0.0, 0.0, -1.0);
  IdentityPreconditioner M;
  const std::vector<double> b = {1.0, 1.0};
  std::vector<double> x;
  KrylovResult r;
  EXPECT_NO_THROW(r = PipelinedCg().solve(A, M, b, x));
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.breakdown);
  EXPECT_NE(r.reason.find("indefinite"), std::string::npos) << r.reason;
  EXPECT_NEAR(r.rel_residual, true_rel(A, x, b), 1e-14);
}

TEST(KrylovFailures, PipeCgZeroOperatorReportsBreakdown) {
  // w = A u == 0 makes the fused curvature delta = <w,u> vanish on the
  // first pass — typed indefinite-operator breakdown, residual untouched.
  const auto A = zero_matrix(8);
  IdentityPreconditioner M;
  const std::vector<double> b(8, 1.0);
  std::vector<double> x;
  KrylovResult r;
  EXPECT_NO_THROW(r = PipelinedCg().solve(A, M, b, x));
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.breakdown);
  EXPECT_EQ(r.iterations, 0u) << "must not burn the iteration budget";
  EXPECT_DOUBLE_EQ(r.rel_residual, 1.0);
}

TEST(KrylovFailures, PipeCgBreakdownAtConvergedIterateStaysConverged) {
  const auto A = dense2(2.0, 0.0, 0.0, 3.0);
  IdentityPreconditioner M;
  const std::vector<double> b = {2.0, 3.0};
  std::vector<double> x = {1.0, 1.0};  // exact solution
  const auto r = PipelinedCg().solve(A, M, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.rel_residual, 1e-12);
}

TEST(KrylovFailures, PipeCgNonFiniteRhsReportsBreakdown) {
  const auto A = dense2(2.0, 0.0, 0.0, 2.0);
  IdentityPreconditioner M;
  const std::vector<double> b = {1.0, std::numeric_limits<double>::infinity()};
  std::vector<double> x;
  KrylovResult r;
  EXPECT_NO_THROW(r = PipelinedCg().solve(A, M, b, x));
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.breakdown);
  EXPECT_NE(r.reason.find("non-finite"), std::string::npos) << r.reason;
}

// ---------------------------------------------------------------------------
// Newton failure recording.
// ---------------------------------------------------------------------------

namespace {

/// Linear "nonlinear" problem F(U) = A U - b on a 1-D Laplacian, with a
/// switch that hands Newton the NEGATED Jacobian (an ascent direction for
/// every step — the line search can never find a decrease).
class LaplaceProblem final : public nonlinear::NonlinearProblem {
 public:
  explicit LaplaceProblem(std::size_t n, bool negate_jacobian = false)
      : n_(n), negate_(negate_jacobian) {
    std::vector<std::size_t> rp{0}, cols;
    for (std::size_t i = 0; i < n_; ++i) {
      if (i > 0) cols.push_back(i - 1);
      cols.push_back(i);
      if (i + 1 < n_) cols.push_back(i + 1);
      rp.push_back(cols.size());
    }
    A_ = CrsMatrix(rp, cols);
    for (std::size_t i = 0; i < n_; ++i) {
      A_.set(i, i, 2.1);
      if (i > 0) A_.set(i, i - 1, -1.0);
      if (i + 1 < n_) A_.set(i, i + 1, -1.0);
    }
    b_.assign(n_, 0.0);
    for (std::size_t i = 0; i < n_; ++i) {
      b_[i] = std::sin(0.37 * static_cast<double>(i) + 1.0);
    }
  }

  [[nodiscard]] std::size_t n_dofs() const override { return n_; }

  void residual(const std::vector<double>& U,
                std::vector<double>& F) override {
    A_.apply(U, F);
    for (std::size_t i = 0; i < n_; ++i) F[i] -= b_[i];
  }

  void residual_and_jacobian(const std::vector<double>& U,
                             std::vector<double>& F,
                             CrsMatrix& J) override {
    residual(U, F);
    const double s = negate_ ? -1.0 : 1.0;
    for (std::size_t i = 0; i < n_; ++i) {
      J.set(i, i, s * 2.1);
      if (i > 0) J.set(i, i - 1, s * -1.0);
      if (i + 1 < n_) J.set(i, i + 1, s * -1.0);
    }
  }

  [[nodiscard]] CrsMatrix create_matrix() const override {
    return CrsMatrix(A_.row_ptr(), A_.cols());
  }

 private:
  std::size_t n_;
  bool negate_;
  CrsMatrix A_;
  std::vector<double> b_;
};

}  // namespace

TEST(NewtonFailures, RecordsInnerLinearSolveFailures) {
  // Two GMRES iterations at tol 1e-12 cannot solve a 50-dof Laplacian:
  // every Newton step's inner solve misses its tolerance and must be
  // counted (previously lin.converged was never even inspected).
  LaplaceProblem p(50);
  IdentityPreconditioner M;
  nonlinear::NewtonConfig ncfg;
  ncfg.max_iters = 3;
  ncfg.abs_tol = 1e-14;
  ncfg.rel_tol = 1e-14;
  ncfg.gmres.max_iters = 2;
  ncfg.gmres.rel_tol = 1e-12;
  const nonlinear::NewtonSolver newton(ncfg);
  std::vector<double> U(p.n_dofs(), 0.0);
  const auto r = newton.solve(p, M, U);
  EXPECT_FALSE(r.converged);
  EXPECT_GE(r.linear_failures, 1);
  EXPECT_TRUE(r.any_linear_failure());
  EXPECT_EQ(r.linear_failures, r.iterations)
      << "every attempted step's inner solve missed the tolerance";
}

TEST(NewtonFailures, HealthySolveRecordsNoFailures) {
  LaplaceProblem p(50);
  IdentityPreconditioner M;
  nonlinear::NewtonConfig ncfg;
  ncfg.max_iters = 4;
  const nonlinear::NewtonSolver newton(ncfg);
  std::vector<double> U(p.n_dofs(), 0.0);
  const auto r = newton.solve(p, M, U);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.linear_failures, 0);
  EXPECT_FALSE(r.any_linear_failure());
  EXPECT_FALSE(r.line_search_stalled);
}

TEST(NewtonFailures, FlagsLineSearchStall) {
  // The negated Jacobian makes every Newton direction an ascent direction:
  // backtracking bottoms out at min_damping without a decrease and the
  // stall must be flagged (previously indistinguishable from progress).
  LaplaceProblem p(20, /*negate_jacobian=*/true);
  IdentityPreconditioner M;
  nonlinear::NewtonConfig ncfg;
  ncfg.max_iters = 2;
  const nonlinear::NewtonSolver newton(ncfg);
  std::vector<double> U(p.n_dofs(), 0.0);
  const auto r = newton.solve(p, M, U);
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.line_search_stalled);
}
