// Performance-portability analysis tests: roofline math, the time-oriented
// model's efficiencies, the Pennycook Φ metric, the theoretical data-
// movement calculator, and the table formatter.

#include <gtest/gtest.h>

#include <sstream>

#include "perf/data_movement.hpp"
#include "perf/portability_metric.hpp"
#include "perf/report.hpp"
#include "perf/roofline.hpp"
#include "perf/time_oriented.hpp"

using namespace mali::perf;

TEST(Roofline, AttainableIsMinOfBounds) {
  const Roofline r{"m", 10e12, 1.5e12};
  EXPECT_DOUBLE_EQ(r.attainable(1.0), 1.5e12);
  EXPECT_DOUBLE_EQ(r.attainable(100.0), 10e12);
  EXPECT_DOUBLE_EQ(r.ridge_point(), 10.0 / 1.5);
  EXPECT_TRUE(r.memory_bound(1.0));
  EXPECT_FALSE(r.memory_bound(10.0));
}

TEST(Roofline, FractionOfRoof) {
  const Roofline r{"m", 10e12, 1.0e12};
  RooflinePoint p{"k", 2.0, 1000.0};  // 1000 GFLOP/s at AI 2 -> roof 2e12
  EXPECT_NEAR(p.fraction_of_roof(r), 0.5, 1e-12);
  EXPECT_NEAR(p.fraction_of_bw(r), 0.5, 1e-12);
  RooflinePoint compute{"k", 100.0, 5000.0};  // roof = 10 TF
  EXPECT_NEAR(compute.fraction_of_roof(r), 0.5, 1e-12);
}

TEST(TimeOriented, EfficienciesAndBounds) {
  TimeOrientedPoint p;
  p.bytes_moved = 2e9;
  p.time_s = 4e-3;
  p.min_bytes = 1e9;
  p.peak_bw = 1e12;
  EXPECT_DOUBLE_EQ(p.min_time_s(), 1e-3);
  EXPECT_DOUBLE_EQ(p.e_time(), 0.25);
  EXPECT_DOUBLE_EQ(p.e_dm(), 0.5);
  EXPECT_DOUBLE_EQ(p.arch_bound_time_s(), 2e-3);
}

TEST(TimeOriented, PerfectKernelHasUnitEfficiencies) {
  TimeOrientedPoint p;
  p.min_bytes = p.bytes_moved = 3e9;
  p.peak_bw = 1.5e12;
  p.time_s = p.min_time_s();
  EXPECT_DOUBLE_EQ(p.e_time(), 1.0);
  EXPECT_DOUBLE_EQ(p.e_dm(), 1.0);
}

TEST(Phi, EqualEfficienciesPassThrough) {
  EXPECT_DOUBLE_EQ(phi(std::vector<double>{0.5, 0.5, 0.5}), 0.5);
}

TEST(Phi, HarmonicMeanOfTwo) {
  // Paper Table IV, e.g. baseline Jacobian e_time: 39% and 38% -> 39%
  // (harmonic mean 0.3849...).
  EXPECT_NEAR(phi(std::vector<double>{0.39, 0.38}), 0.3849, 1e-3);
  // And optimized Residual e_DM: 100% on both platforms -> 100%.
  EXPECT_DOUBLE_EQ(phi(std::vector<double>{1.0, 1.0}), 1.0);
}

TEST(Phi, DominatedByWorstPlatform) {
  const double v = phi(std::vector<double>{0.9, 0.1});
  EXPECT_LT(v, 0.5 * (0.9 + 0.1));  // below the arithmetic mean
  EXPECT_GT(v, 0.1);
  EXPECT_LT(v, 0.9);
}

TEST(Phi, UnsupportedPlatformZeroes) {
  std::vector<PlatformEfficiency> e = {{"a", 0.8, true}, {"b", 0.9, false}};
  EXPECT_EQ(phi(e), 0.0);
  e[1].supported = true;
  e[1].efficiency = 0.0;
  EXPECT_EQ(phi(e), 0.0);
  EXPECT_EQ(phi(std::vector<PlatformEfficiency>{}), 0.0);
}

TEST(Phi, OrderInvariant) {
  EXPECT_DOUBLE_EQ(phi(std::vector<double>{0.3, 0.7, 0.5}),
                   phi(std::vector<double>{0.7, 0.5, 0.3}));
}

TEST(DataMovement, StokesResidArrayInventory) {
  const auto arrays = stokes_fo_resid_arrays(8, 8, sizeof(double));
  ASSERT_EQ(arrays.size(), 6u);
  std::size_t outputs = 0;
  for (const auto& a : arrays) outputs += a.is_output ? 1 : 0;
  EXPECT_EQ(outputs, 1u);  // only Residual
}

TEST(DataMovement, ResidualMinBytesPerCell) {
  // Ugrad 48 + mu 8 + force 16 + Residual 16 scalars (8B) plus wGradBF 192 +
  // wBF 64 doubles = 88*8 + 256*8 = 2752 bytes per cell.
  EXPECT_EQ(min_bytes_per_cell(stokes_fo_resid_arrays(8, 8, 8)), 2752u);
}

TEST(DataMovement, JacobianSixteenDerivativeScaling) {
  const std::size_t res = min_bytes_per_cell(stokes_fo_resid_arrays(8, 8, 8));
  const std::size_t jac =
      min_bytes_per_cell(stokes_fo_resid_arrays(8, 8, 17 * 8));
  // Scalar portion scales 17x; mesh-scalar portion is shared.
  EXPECT_EQ(jac, 88u * 17u * 8u + 256u * 8u);
  EXPECT_GT(static_cast<double>(jac) / static_cast<double>(res), 4.0);
}

TEST(DataMovement, WorksetScalesLinearlyInCells) {
  EXPECT_EQ(stokes_fo_resid_min_bytes(1000, 8, 8, 8),
            1000u * min_bytes_per_cell(stokes_fo_resid_arrays(8, 8, 8)));
}

TEST(Report, TableFormatsRows) {
  Table t({"kernel", "time"});
  t.add_row({"Jacobian", "5.4e-2"});
  t.add_row({"Residual", "2.4e-3"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Jacobian"), std::string::npos);
  EXPECT_NE(s.find("5.4e-2"), std::string::npos);
  EXPECT_NE(s.find('+'), std::string::npos);
}

TEST(Report, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), mali::Error);
}

TEST(Report, Formatters) {
  EXPECT_EQ(fmt_sci(0.054), "5.4e-02");
  EXPECT_EQ(fmt_pct(0.84), "84%");
  EXPECT_EQ(fmt_pct(1.0), "100%");
  EXPECT_EQ(fmt_speedup(1.54), "1.54x");
  EXPECT_EQ(fmt(3.14159, 3), "3.14");
}
