// Manufactured-solution verification of the first-order Stokes
// discretization: with constant viscosity and the quadratic manufactured
// field imposed on the boundary, the FE solution must reproduce the exact
// field up to discretization error, and that error must converge at second
// order under simultaneous horizontal/vertical refinement.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/semicoarsening_amg.hpp"
#include "nonlinear/newton.hpp"
#include "physics/manufactured.hpp"
#include "physics/stokes_fo_problem.hpp"

using namespace mali;
using physics::MmsConfig;
using physics::StokesFOConfig;
using physics::StokesFOProblem;

namespace {

StokesFOConfig mms_config(double dx_km, int layers) {
  StokesFOConfig cfg;
  cfg.dx_m = dx_km * 1e3;
  cfg.n_layers = layers;
  cfg.mms.enabled = true;
  // Square verification domain: refinements nest exactly (dx divides the
  // 1000 km radius), so the convergence study sees a fixed domain.
  cfg.geometry.square_mask = true;
  return cfg;
}

/// Solves the (linear) MMS problem and returns the nodal L2 error.
double solve_and_measure(const StokesFOConfig& cfg) {
  StokesFOProblem p(cfg);
  linalg::SemicoarseningAmg amg(p.extrusion_info());
  nonlinear::NewtonConfig ncfg;
  ncfg.max_iters = 3;  // the operator is linear: one step suffices
  ncfg.gmres.rel_tol = 1e-10;
  ncfg.gmres.max_iters = 4000;
  nonlinear::NewtonSolver newton(ncfg);
  std::vector<double> U(p.n_dofs(), 0.0);
  const auto r = newton.solve(p, amg, U);
  EXPECT_LT(r.residual_norm, 1e-6 * r.initial_norm);
  return p.mms_error(U);
}

}  // namespace

TEST(Mms, ForcingFormula) {
  MmsConfig cfg;
  double fu = 0.0, fv = 0.0;
  physics::mms_forcing(cfg, fu, fv);
  EXPECT_DOUBLE_EQ(fu, cfg.mu0 * (10.0 * cfg.a + 2.0 * cfg.b + 3.0 * cfg.c));
  EXPECT_DOUBLE_EQ(fv, 2.0 * cfg.mu0 * cfg.d);
}

TEST(Mms, ExactFieldSatisfiesDiscreteResidualWeakly) {
  // Assembling the residual at the exact field must give a residual that is
  // small relative to the residual at zero (pure discretization error).
  const auto cfg = mms_config(250.0, 4);
  StokesFOProblem p(cfg);
  const auto exact = p.mms_exact();
  std::vector<double> F_exact, F_zero;
  p.residual(exact, F_exact);
  p.residual(std::vector<double>(p.n_dofs(), 0.0), F_zero);
  EXPECT_LT(linalg::norm2(F_exact), 0.05 * linalg::norm2(F_zero))
      << "the exact field should nearly annihilate the discrete residual";
}

TEST(Mms, DirichletBoundariesCarryExactValues) {
  const auto cfg = mms_config(250.0, 4);
  StokesFOProblem p(cfg);
  const auto exact = p.mms_exact();
  // All boundary nodes pinned (margin + bed + surface).
  std::size_t pinned = 0;
  for (std::size_t n = 0; n < p.mesh().n_nodes(); ++n) {
    if (p.dof_map().is_dirichlet_dof(2 * n)) ++pinned;
  }
  EXPECT_GT(pinned, 2 * p.mesh().base().n_nodes() - 1)
      << "at least bed+surface nodes must be pinned";
  // Residual at the exact field vanishes on Dirichlet rows.
  std::vector<double> F;
  p.residual(exact, F);
  for (std::size_t d : p.dof_map().dirichlet_dofs()) {
    EXPECT_NEAR(F[d], 0.0, 1e-6);
  }
}

TEST(Mms, SolutionMatchesExactField) {
  const auto err = solve_and_measure(mms_config(200.0, 5));
  // Manufactured velocities are O(100 m/yr); the coarse-grid error should
  // already be well below 1%.
  EXPECT_LT(err, 1.0) << "nodal RMS error (m/yr)";
}

TEST(Mms, SecondOrderConvergence) {
  // Refine horizontally and vertically together: h -> h/2 must cut the
  // error by ~4.
  const double e_coarse = solve_and_measure(mms_config(250.0, 3));
  const double e_fine = solve_and_measure(mms_config(125.0, 6));
  const double rate = std::log2(e_coarse / e_fine);
  EXPECT_GT(rate, 1.4) << "coarse " << e_coarse << " fine " << e_fine;
  EXPECT_LT(rate, 3.0) << "coarse " << e_coarse << " fine " << e_fine;
}

TEST(Mms, VariantIndependence) {
  // The optimization variants must not change the MMS solution either.
  auto cfg = mms_config(250.0, 4);
  cfg.variant = physics::KernelVariant::kBaseline;
  const double e_base = solve_and_measure(cfg);
  cfg.variant = physics::KernelVariant::kOptimized;
  const double e_opt = solve_and_measure(cfg);
  EXPECT_NEAR(e_base, e_opt, 1e-9 * std::max(1.0, e_base));
}
