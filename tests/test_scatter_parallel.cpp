// Equivalence / race tests for the parallel assembly scatter: the Colored
// and Atomic ScatterModes must reproduce the Serial path's residual (≤1e-13
// relative) and Jacobian (entrywise, to FP-reassociation) on an MMS mesh and
// on the standard Antarctica problem, on both the pk::Serial and the
// thread-pool exec spaces.  Run under ThreadSanitizer in CI: any scatter
// race shows up here.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "mesh/coloring.hpp"
#include "physics/scatter.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "portability/thread_pool.hpp"

using namespace mali;
using physics::JacobianEval;
using physics::ScatterMode;
using physics::StokesFOConfig;
using physics::StokesFOProblem;

namespace {

constexpr double kTol = 1e-13;  // FP-reassociation budget (relative)
// Jacobian entries sum per-cell SFad contributions of opposite sign at the
// MMS forcing scale (~1e8); cancellation amplifies the reassociation error
// relative to the *final* entry, so the entrywise Jacobian budget is looser
// than the residual one (observed worst case ~2e-13 on the MMS config).
constexpr double kJacTol = 1e-11;

StokesFOConfig mms_config(ScatterMode mode,
                          std::size_t workset_size = 0) {
  StokesFOConfig cfg;
  cfg.dx_m = 250.0e3;
  cfg.n_layers = 4;
  cfg.mms.enabled = true;
  cfg.scatter = mode;
  cfg.workset_size = workset_size;
  return cfg;
}

StokesFOConfig antarctica_config(ScatterMode mode,
                                 std::size_t workset_size = 0) {
  StokesFOConfig cfg;
  cfg.dx_m = 250.0e3;
  cfg.n_layers = 4;
  cfg.scatter = mode;
  cfg.workset_size = workset_size;
  return cfg;
}

void expect_relative_match(const std::vector<double>& a,
                           const std::vector<double>& b, double tol,
                           const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol * std::max(1.0, std::abs(a[i])))
        << what << " entry " << i;
  }
}

/// Assembles residual + Jacobian for a config and returns (F, J values).
std::pair<std::vector<double>, std::vector<double>> assemble(
    const StokesFOConfig& cfg) {
  StokesFOProblem p(cfg);
  const auto U = p.analytic_initial_guess();
  std::vector<double> F;
  auto J = p.create_matrix();
  p.residual_and_jacobian(U, F, J);
  return {F, J.values()};
}

}  // namespace

// ---------------------------------------------------------------------------
// End-to-end problem-level equivalence (DefaultExec = thread pool).
// ---------------------------------------------------------------------------

class ScatterEquivalence
    : public ::testing::TestWithParam<std::tuple<ScatterMode, std::size_t>> {};

TEST_P(ScatterEquivalence, MmsResidualAndJacobianMatchSerial) {
  const auto [mode, ws] = GetParam();
  const auto [F_ser, J_ser] = assemble(mms_config(ScatterMode::kSerial, ws));
  const auto [F_par, J_par] = assemble(mms_config(mode, ws));
  expect_relative_match(F_ser, F_par, kTol, "MMS residual");
  expect_relative_match(J_ser, J_par, kJacTol, "MMS jacobian");
}

TEST_P(ScatterEquivalence, AntarcticaResidualAndJacobianMatchSerial) {
  const auto [mode, ws] = GetParam();
  const auto [F_ser, J_ser] =
      assemble(antarctica_config(ScatterMode::kSerial, ws));
  const auto [F_par, J_par] = assemble(antarctica_config(mode, ws));
  expect_relative_match(F_ser, F_par, kTol, "residual");
  expect_relative_match(J_ser, J_par, kJacTol, "jacobian");
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndWorksets, ScatterEquivalence,
    ::testing::Combine(::testing::Values(ScatterMode::kColored,
                                         ScatterMode::kAtomic),
                       ::testing::Values(std::size_t{0}, std::size_t{64})),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_ws" +
             std::to_string(std::get<1>(info.param));
    });

// Colored scatter is deterministic: repeated assemblies are bitwise equal
// (the per-row addition order is fixed by the coloring, not the schedule).
TEST(ScatterDeterminism, ColoredIsBitwiseReproducible) {
  const auto cfg = antarctica_config(ScatterMode::kColored);
  StokesFOProblem p(cfg);
  const auto U = p.analytic_initial_guess();
  std::vector<double> F1, F2;
  auto J1 = p.create_matrix();
  auto J2 = p.create_matrix();
  p.residual_and_jacobian(U, F1, J1);
  J2.set_zero();
  p.residual_and_jacobian(U, F2, J2);
  EXPECT_EQ(F1, F2);
  EXPECT_EQ(J1.values(), J2.values());
}

// ---------------------------------------------------------------------------
// Direct scatter_add coverage on BOTH exec spaces (pk::Serial and the
// thread pool), for both scalar types.
// ---------------------------------------------------------------------------

namespace {

template <class Exec, class ScalarT>
void exercise_scatter_exec_space() {
  StokesFOConfig cfg = mms_config(ScatterMode::kSerial);
  StokesFOProblem p(cfg);
  const auto& ws = p.workset();
  const std::size_t C = ws.n_cells;
  const int N = ws.num_nodes;

  // Stage a synthetic element residual with per-cell recognizable values.
  pk::View<ScalarT, 3> R("R", C, static_cast<std::size_t>(N), 2);
  std::mt19937 rng(1234);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (std::size_t c = 0; c < C; ++c) {
    for (int n = 0; n < N; ++n) {
      for (int comp = 0; comp < 2; ++comp) {
        if constexpr (ad::is_fad_v<ScalarT>) {
          ScalarT v(dist(rng), (n * 2 + comp) % physics::kNumLocalDofs);
          v.fastAccessDx((n * 3 + comp) % physics::kNumLocalDofs) = dist(rng);
          R(c, n, comp) = v;
        } else {
          R(c, n, comp) = dist(rng);
        }
      }
    }
  }

  // Explicit range: cell_nodes carries SIMD ghost-row padding past C, and
  // the coloring must cover exactly the scattered range.
  const auto coloring = mesh::greedy_color_cells(ws.cell_nodes, 0, C, N);

  auto run = [&](ScatterMode mode) {
    std::vector<double> F(p.n_dofs(), 0.0);
    auto J = p.create_matrix();
    linalg::CrsMatrix* Jp = ad::is_fad_v<ScalarT> ? &J : nullptr;
    physics::scatter_add<Exec>(mode, coloring, ws.cell_nodes, R, C, N, F, Jp);
    return std::make_pair(F, J.values());
  };

  const auto [F_ser, J_ser] = run(ScatterMode::kSerial);
  const auto [F_col, J_col] = run(ScatterMode::kColored);
  const auto [F_atm, J_atm] = run(ScatterMode::kAtomic);
  expect_relative_match(F_ser, F_col, kTol, "colored F");
  expect_relative_match(F_ser, F_atm, kTol, "atomic F");
  expect_relative_match(J_ser, J_col, kJacTol, "colored J");
  expect_relative_match(J_ser, J_atm, kJacTol, "atomic J");
}

}  // namespace

TEST(ScatterExecSpaces, ResidualSerialExec) {
  exercise_scatter_exec_space<pk::Serial, double>();
}

TEST(ScatterExecSpaces, ResidualThreadsExec) {
  exercise_scatter_exec_space<pk::Threads, double>();
}

TEST(ScatterExecSpaces, JacobianSerialExec) {
  exercise_scatter_exec_space<pk::Serial, JacobianEval::ScalarT>();
}

TEST(ScatterExecSpaces, JacobianThreadsExec) {
  exercise_scatter_exec_space<pk::Threads, JacobianEval::ScalarT>();
}

// ---------------------------------------------------------------------------
// Stress the atomic shim itself: many threads hammering few slots must not
// lose updates (this is the test TSan watches most closely).
// ---------------------------------------------------------------------------

TEST(AtomicAdd, NoLostUpdatesUnderContention) {
  constexpr std::size_t kSlots = 7;
  constexpr std::size_t kIters = 20000;
  std::vector<double> acc(kSlots, 0.0);
  pk::parallel_for("hammer", pk::RangePolicy<pk::Threads>(kIters), [&](int i) {
    pk::atomic_add(&acc[static_cast<std::size_t>(i) % kSlots], 1.0);
  });
  double total = 0.0;
  for (double v : acc) total += v;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(kIters));
}

TEST(AtomicAdd, IntegerFetchAdd) {
  long counter = 0;
  pk::parallel_for("count", pk::RangePolicy<pk::Threads>(10000),
                   [&](int) { pk::atomic_add(&counter, 1L); });
  EXPECT_EQ(counter, 10000L);
}

// A Newton solve must converge identically (to solver tolerances) under all
// scatter modes — the end-to-end guard that the parallel epilogue does not
// perturb the physics.
TEST(ScatterSolve, MeanVelocityAgreesAcrossModes) {
  double means[3];
  int i = 0;
  for (auto mode : {ScatterMode::kSerial, ScatterMode::kColored,
                    ScatterMode::kAtomic}) {
    StokesFOProblem p(antarctica_config(mode));
    linalg::SemicoarseningAmg amg(p.extrusion_info());
    nonlinear::NewtonConfig ncfg;
    ncfg.max_iters = 8;
    nonlinear::NewtonSolver newton(ncfg);
    std::vector<double> U(p.n_dofs(), 0.0);
    newton.solve(p, amg, U);
    means[i++] = p.mean_velocity(U);
  }
  EXPECT_NEAR(means[1] / means[0], 1.0, 1e-8);
  EXPECT_NEAR(means[2] / means[0], 1.0, 1e-8);
}
