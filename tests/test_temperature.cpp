// Vertical temperature column solver tests: steady conduction against the
// analytic linear profile, basal-flux and surface boundary conditions,
// transient relaxation to steady state, advection effects, strain heating,
// and the melting-point clamp.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "physics/temperature_solver.hpp"

using namespace mali::physics;

namespace {

std::vector<double> uniform_column(double H, std::size_t n) {
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    z[i] = H * static_cast<double>(i) / static_cast<double>(n - 1);
  }
  return z;
}

}  // namespace

TEST(TemperatureColumn, RejectsBadColumns) {
  EXPECT_THROW(TemperatureColumnSolver({0.0, 1.0}), mali::Error);
  EXPECT_THROW(TemperatureColumnSolver({0.0, 2.0, 1.0}), mali::Error);
}

TEST(TemperatureColumn, SteadyConductionIsLinear) {
  // Without advection/heating the steady profile is linear with slope
  // -G/k from the surface temperature.
  TemperatureColumnConfig cfg;
  cfg.clamp_to_melting = false;
  const double H = 2000.0;
  TemperatureColumnSolver solver(uniform_column(H, 41), cfg);
  ColumnForcing f;
  f.surface_temperature = 230.0;
  f.geothermal_flux = 1.9e6;
  const auto T = solver.steady_state(f);
  const double slope = -f.geothermal_flux / cfg.conductivity;  // dT/dz
  for (std::size_t i = 0; i < T.size(); ++i) {
    const double z = solver.z()[i];
    const double exact = f.surface_temperature + slope * (z - H);
    EXPECT_NEAR(T[i], exact, 0.05) << "z=" << z;
  }
  // Bed is warmer than the surface.
  EXPECT_GT(T.front(), T.back());
}

TEST(TemperatureColumn, SurfaceDirichletExact) {
  TemperatureColumnSolver solver(uniform_column(1500.0, 21));
  ColumnForcing f;
  f.surface_temperature = 245.5;
  const auto T = solver.steady_state(f);
  EXPECT_DOUBLE_EQ(T.back(), 245.5);
}

TEST(TemperatureColumn, ZeroFluxGivesIsothermal) {
  TemperatureColumnConfig cfg;
  cfg.clamp_to_melting = false;
  TemperatureColumnSolver solver(uniform_column(1000.0, 15), cfg);
  ColumnForcing f;
  f.surface_temperature = 250.0;
  f.geothermal_flux = 0.0;
  const auto T = solver.steady_state(f);
  for (double t : T) EXPECT_NEAR(t, 250.0, 1e-9);
}

TEST(TemperatureColumn, TransientRelaxesToSteadyState) {
  TemperatureColumnConfig cfg;
  cfg.clamp_to_melting = false;
  TemperatureColumnSolver solver(uniform_column(800.0, 25), cfg);
  ColumnForcing f;
  f.surface_temperature = 235.0;
  const auto steady = solver.steady_state(f);

  std::vector<double> T(25, 260.0);  // warm start
  for (int s = 0; s < 4000; ++s) solver.step(T, f, 10.0);
  for (std::size_t i = 0; i < T.size(); ++i) {
    EXPECT_NEAR(T[i], steady[i], 0.05) << "node " << i;
  }
}

TEST(TemperatureColumn, TransientStepIsStableAtLargeDt) {
  // Backward Euler: unconditionally stable even for dt >> CFL.
  TemperatureColumnSolver solver(uniform_column(1000.0, 21));
  ColumnForcing f;
  f.surface_temperature = 240.0;
  std::vector<double> T(21, 240.0);
  solver.step(T, f, 1.0e5);
  for (double t : T) {
    EXPECT_TRUE(std::isfinite(t));
    EXPECT_GT(t, 200.0);
    EXPECT_LT(t, 280.0);
  }
}

TEST(TemperatureColumn, DownwardAdvectionCoolsTheColumn) {
  // Downward advection (accumulation) pushes cold surface ice toward the
  // bed, cooling the interior relative to pure conduction.
  TemperatureColumnConfig cfg;
  cfg.clamp_to_melting = false;
  const auto z = uniform_column(2000.0, 41);
  TemperatureColumnSolver solver(z, cfg);
  ColumnForcing conduction;
  conduction.surface_temperature = 225.0;
  ColumnForcing advected = conduction;
  advected.vertical_velocity.assign(41, -0.3);  // 0.3 m/yr downward
  const auto T0 = solver.steady_state(conduction);
  const auto T1 = solver.steady_state(advected);
  // Mid-column must be colder with advection.
  EXPECT_LT(T1[20], T0[20] - 1.0);
  // Both still satisfy the surface BC.
  EXPECT_DOUBLE_EQ(T0.back(), T1.back());
}

TEST(TemperatureColumn, StrainHeatingWarmsTheColumn) {
  TemperatureColumnConfig cfg;
  cfg.clamp_to_melting = false;
  TemperatureColumnSolver solver(uniform_column(1200.0, 25), cfg);
  ColumnForcing base;
  base.surface_temperature = 230.0;
  ColumnForcing heated = base;
  heated.strain_heating.assign(25, 5.0e4);  // J/(m^3 yr)
  const auto T0 = solver.steady_state(base);
  const auto T1 = solver.steady_state(heated);
  EXPECT_GT(T1[12], T0[12]);
  EXPECT_GT(T1.front(), T0.front());
}

TEST(TemperatureColumn, MeltingPointClamp) {
  TemperatureColumnConfig cfg;
  cfg.clamp_to_melting = true;
  TemperatureColumnSolver solver(uniform_column(3000.0, 31), cfg);
  ColumnForcing f;
  f.surface_temperature = 268.0;
  f.geothermal_flux = 8.0e6;  // strong flux: unclamped bed would exceed 0 C
  const auto T = solver.steady_state(f);
  for (double t : T) EXPECT_LE(t, cfg.melting_point + 1e-12);
  EXPECT_DOUBLE_EQ(T.front(), cfg.melting_point);
}

class TemperatureRefinement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TemperatureRefinement, SteadyErrorShrinksWithResolution) {
  // The linear conduction solution is exact for the scheme; with advection
  // the first-order upwinding converges as h.  Verify the error at fixed
  // physics decreases monotonically with node count.
  TemperatureColumnConfig cfg;
  cfg.clamp_to_melting = false;
  ColumnForcing f;
  f.surface_temperature = 230.0;
  f.geothermal_flux = 1.9e6;
  const std::size_t n = GetParam();
  TemperatureColumnSolver coarse(uniform_column(2000.0, n), cfg);
  TemperatureColumnSolver fine(uniform_column(2000.0, 2 * n), cfg);
  ColumnForcing fc = f;
  fc.vertical_velocity.assign(n, -0.2);
  ColumnForcing ff = f;
  ff.vertical_velocity.assign(2 * n, -0.2);
  const auto Tc = coarse.steady_state(fc);
  const auto Tf = fine.steady_state(ff);
  // Compare bed temperatures against a very fine reference.
  TemperatureColumnSolver ref_solver(uniform_column(2000.0, 1601), cfg);
  ColumnForcing fr = f;
  fr.vertical_velocity.assign(1601, -0.2);
  const auto Tr = ref_solver.steady_state(fr);
  EXPECT_LT(std::abs(Tf.front() - Tr.front()),
            std::abs(Tc.front() - Tr.front()) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, TemperatureRefinement,
                         ::testing::Values(11, 21, 41));
