// Tracing infrastructure tests: TraceView/TraceRef semantics, virtual
// layout offsets, per-variant access counts of the StokesFOResid kernels,
// and consistency between the trace-derived and closed-form application
// bounds.

#include <gtest/gtest.h>

#include <set>

#include "core/kernel_traces.hpp"
#include "gpusim/exec_model.hpp"
#include "gpusim/trace.hpp"
#include "gpusim/trace_view.hpp"
#include "perf/data_movement.hpp"
#include "physics/eval_types.hpp"

using namespace mali;
using namespace mali::gpusim;
using core::KernelKind;
using physics::KernelVariant;

TEST(TraceRecorder, RegistersArraysWithDisjointBases) {
  TraceRecorder rec;
  const int a = rec.register_array("a", 8, 1000);
  const int b = rec.register_array("b", 8, 2000);
  ASSERT_EQ(rec.arrays().size(), 2u);
  EXPECT_NE(a, b);
  const auto& arrays = rec.arrays();
  EXPECT_GE(arrays[1].base_addr, arrays[0].base_addr + arrays[0].total_bytes);
}

TEST(TraceRef, ReadWriteRmwSemantics) {
  TraceRecorder rec;
  pk::View<double, 2> v("v", 2, 3);
  TraceView<double, 2> tv(v, rec, /*virtual_cells=*/100);

  tv(0, 1) = 5.0;               // write
  double x = tv(0, 1);          // read
  tv(0, 1) += 2.0;              // read + write
  tv(0, 1) -= 1.0;              // read + write
  EXPECT_EQ(x, 5.0);
  EXPECT_EQ(v(0, 1), 6.0);      // underlying data updated

  const auto& recs = rec.records();
  ASSERT_EQ(recs.size(), 6u);
  EXPECT_EQ(recs[0].kind, AccessKind::kWrite);
  EXPECT_EQ(recs[1].kind, AccessKind::kRead);
  EXPECT_EQ(recs[2].kind, AccessKind::kRead);
  EXPECT_EQ(recs[3].kind, AccessKind::kWrite);
  // All six accesses hit the same element.
  for (const auto& r : recs) {
    EXPECT_EQ(r.offset, recs[0].offset);
    EXPECT_EQ(r.size, sizeof(double));
  }
}

TEST(TraceView, VirtualLayoutOffsets) {
  // A (2 x 3) recording view standing in for a (100 x 3) array: index
  // (cell, j) must land at (cell + 100*j) * sizeof(T).
  TraceRecorder rec;
  pk::View<double, 2> v("v", 2, 3);
  TraceView<double, 2> tv(v, rec, 100);
  (void)static_cast<double>(tv(1, 2));
  const auto& r = rec.records().back();
  EXPECT_EQ(r.offset, (1 + 100 * 2) * sizeof(double));
  EXPECT_EQ(rec.arrays()[0].total_bytes, 100u * 3u * sizeof(double));
}

TEST(TraceView, CellShiftIsElementSize) {
  // The replay assumption: cell c's access = cell 0's access + c*sizeof(T).
  TraceRecorder rec;
  pk::View<double, 3> v("v", 2, 4, 5);
  TraceView<double, 3> tv(v, rec, 64);
  (void)static_cast<double>(tv(0, 3, 4));
  (void)static_cast<double>(tv(1, 3, 4));
  const auto& recs = rec.records();
  EXPECT_EQ(recs[1].offset - recs[0].offset, sizeof(double));
}

TEST(TraceView, FadElementsAreWide) {
  using Fad = physics::JacobianEval::ScalarT;
  TraceRecorder rec;
  pk::View<Fad, 2> v("v", 2, 2);
  TraceView<Fad, 2> tv(v, rec, 10);
  (void)static_cast<Fad>(tv(0, 1));
  EXPECT_EQ(rec.records()[0].size, sizeof(Fad));
  EXPECT_EQ(rec.records()[0].size, 17u * sizeof(double));
}

// ---- kernel access-count properties ----

namespace {

struct Counts {
  std::size_t reads = 0, writes = 0;
  std::size_t residual_reads = 0, residual_writes = 0;
};

Counts count_accesses(KernelKind kind, KernelVariant v) {
  const auto rec = core::record_kernel_trace(kind, v, 1024);
  Counts c;
  int residual_id = -1;
  for (std::size_t i = 0; i < rec.arrays().size(); ++i) {
    if (rec.arrays()[i].name == "Residual") residual_id = static_cast<int>(i);
  }
  for (const auto& r : rec.records()) {
    const bool is_res = r.array_id == residual_id;
    if (r.kind == AccessKind::kRead) {
      ++c.reads;
      c.residual_reads += is_res ? 1 : 0;
    } else {
      ++c.writes;
      c.residual_writes += is_res ? 1 : 0;
    }
  }
  return c;
}

}  // namespace

TEST(KernelTrace, OptimizedWritesResidualExactlyOnce) {
  for (auto kind : {KernelKind::kResidual, KernelKind::kJacobian}) {
    const auto c = count_accesses(kind, KernelVariant::kOptimized);
    EXPECT_EQ(c.residual_writes, 16u) << core::to_string(kind);
    EXPECT_EQ(c.residual_reads, 0u) << core::to_string(kind);
  }
}

TEST(KernelTrace, BaselineRepeatedlyTouchesResidual) {
  const auto c = count_accesses(KernelKind::kJacobian, KernelVariant::kBaseline);
  // init (16 writes) + stress loop (8 qp x 16 RMW) + force loop (8 qp x 16
  // RMW) = 16 + 128 + 128 writes and 256 reads of the global Residual.
  EXPECT_EQ(c.residual_writes, 16u + 128u + 128u);
  EXPECT_EQ(c.residual_reads, 256u);
}

TEST(KernelTrace, LocalAccumRemovesResidualTrafficOnly) {
  const auto c =
      count_accesses(KernelKind::kResidual, KernelVariant::kLocalAccumOnly);
  EXPECT_EQ(c.residual_writes, 16u);
  EXPECT_EQ(c.residual_reads, 0u);
  // but the streaming reads are unchanged vs baseline
  const auto b = count_accesses(KernelKind::kResidual, KernelVariant::kBaseline);
  EXPECT_EQ(c.reads - c.residual_reads, b.reads - b.residual_reads);
}

TEST(KernelTrace, FusionReducesForceLoopTraffic) {
  const auto fused =
      count_accesses(KernelKind::kResidual, KernelVariant::kFusedOnly);
  const auto base =
      count_accesses(KernelKind::kResidual, KernelVariant::kBaseline);
  // Fusing the force term into the stress loop halves the Residual RMW
  // sweeps (one accumulation pass instead of two).
  EXPECT_LT(fused.residual_writes, base.residual_writes);
  EXPECT_EQ(fused.residual_writes, 16u + 128u);
}

TEST(KernelTrace, InputReadMultiplicities) {
  const auto rec = core::record_kernel_trace(KernelKind::kResidual,
                                             KernelVariant::kOptimized, 256);
  // mu and force are read once per element; wBF and wGradBF feed both
  // residual components and are read exactly twice per element.
  for (std::size_t a = 0; a < rec.arrays().size(); ++a) {
    const auto& info = rec.arrays()[a];
    if (info.name == "Residual" || info.name == "Ugrad") continue;
    std::set<std::uint64_t> unique;
    std::size_t total = 0;
    for (const auto& r : rec.records()) {
      if (r.array_id != static_cast<int>(a)) continue;
      unique.insert(r.offset);
      ++total;
    }
    const std::size_t expected_factor =
        (info.name == "wBF" || info.name == "wGradBF") ? 2u : 1u;
    EXPECT_EQ(total, expected_factor * unique.size()) << info.name;
  }
}

TEST(KernelTrace, UgradReadPattern) {
  // The stress expressions read Ugrad(0,0) and Ugrad(1,1) twice per qp
  // (strs00 and strs11), the other four entries once: 8 reads/qp, 64/cell,
  // of 48 unique elements.
  const auto rec = core::record_kernel_trace(KernelKind::kResidual,
                                             KernelVariant::kBaseline, 256);
  int ugrad_id = -1;
  for (std::size_t i = 0; i < rec.arrays().size(); ++i) {
    if (rec.arrays()[i].name == "Ugrad") ugrad_id = static_cast<int>(i);
  }
  std::size_t total = 0;
  std::set<std::uint64_t> unique;
  for (const auto& r : rec.records()) {
    if (r.array_id != ugrad_id) continue;
    ++total;
    unique.insert(r.offset);
  }
  EXPECT_EQ(total, 64u);
  EXPECT_EQ(unique.size(), 48u);
}

TEST(KernelTrace, TraceMinBytesMatchesClosedForm) {
  for (auto kind : {KernelKind::kResidual, KernelKind::kJacobian}) {
    for (auto v : {KernelVariant::kBaseline, KernelVariant::kOptimized}) {
      const auto rec = core::record_kernel_trace(kind, v, 4096);
      const auto from_trace = ExecModel::theoretical_min_bytes(rec, 4096);
      const auto closed = perf::stokes_fo_resid_min_bytes(
          4096, 8, 8, core::scalar_bytes(kind));
      EXPECT_EQ(from_trace, closed)
          << core::to_string(kind) << "/" << physics::to_string(v);
    }
  }
}

TEST(KernelTrace, TemplateBytesScaleWithScalarWidth) {
  // The ScalarT-typed arrays (Ugrad, mu, force, Residual) scale by exactly
  // sizeof(SFad<double,16>)/sizeof(double) = 17x between the evaluations;
  // the mesh-scalar arrays (wBF, wGradBF) stay double in both, which is why
  // the overall Jacobian:Residual byte ratio lands well below the naive 16x
  // (see EXPERIMENTS.md).
  const auto res = core::record_kernel_trace(KernelKind::kResidual,
                                             KernelVariant::kOptimized, 64);
  const auto jac = core::record_kernel_trace(KernelKind::kJacobian,
                                             KernelVariant::kOptimized, 64);
  auto scalar_read_bytes = [](const TraceRecorder& rec) {
    std::size_t b = 0;
    for (const auto& r : rec.records()) {
      const auto& name = rec.arrays()[static_cast<std::size_t>(r.array_id)].name;
      if (r.kind == AccessKind::kRead && name != "wBF" && name != "wGradBF") {
        b += r.size;
      }
    }
    return b;
  };
  EXPECT_EQ(scalar_read_bytes(jac), 17u * scalar_read_bytes(res));
  EXPECT_GT(jac.template_bytes(AccessKind::kRead),
            3 * res.template_bytes(AccessKind::kRead));
  EXPECT_EQ(jac.template_bytes(AccessKind::kWrite),
            17u * res.template_bytes(AccessKind::kWrite));
}

TEST(KernelTrace, FlopsCountGrowsWithDerivatives) {
  const double res = core::resid_flops_per_cell(8, 8, 0);
  const double jac = core::resid_flops_per_cell(8, 8, 16);
  EXPECT_NEAR(res, 1120.0, 100.0);  // ~140 flops per qp
  EXPECT_GT(jac / res, 15.0);
  EXPECT_LT(jac / res, 35.0);
}
