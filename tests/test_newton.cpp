// Newton solver tests on manufactured nonlinear systems: quadratic
// convergence, damping/line-search behaviour, and interface contracts.

#include <gtest/gtest.h>

#include <cmath>

#include "nonlinear/newton.hpp"

using namespace mali;
using namespace mali::nonlinear;

namespace {

/// Decoupled cubic system: F_i(u) = u_i^3 + a_i u_i - b_i.
class CubicProblem final : public NonlinearProblem {
 public:
  CubicProblem(std::vector<double> a, std::vector<double> b)
      : a_(std::move(a)), b_(std::move(b)) {}

  [[nodiscard]] std::size_t n_dofs() const override { return a_.size(); }

  void residual(const std::vector<double>& U, std::vector<double>& F) override {
    F.resize(U.size());
    for (std::size_t i = 0; i < U.size(); ++i) {
      F[i] = U[i] * U[i] * U[i] + a_[i] * U[i] - b_[i];
    }
    ++n_residual_calls;
  }

  void residual_and_jacobian(const std::vector<double>& U,
                             std::vector<double>& F,
                             linalg::CrsMatrix& J) override {
    residual(U, F);
    for (std::size_t i = 0; i < U.size(); ++i) {
      J.set(i, i, 3.0 * U[i] * U[i] + a_[i]);
    }
    ++n_jacobian_calls;
  }

  [[nodiscard]] linalg::CrsMatrix create_matrix() const override {
    std::vector<std::size_t> rp(n_dofs() + 1), cols(n_dofs());
    for (std::size_t i = 0; i < n_dofs(); ++i) {
      rp[i + 1] = i + 1;
      cols[i] = i;
    }
    return linalg::CrsMatrix(rp, cols);
  }

  int n_residual_calls = 0;
  int n_jacobian_calls = 0;

 private:
  std::vector<double> a_, b_;
};

/// 2D Rosenbrock-gradient system (coupled, needs damping from bad guesses):
/// F = grad of 0.5*(a-x)^2 + 0.5*b*(y-x^2)^2.
class RosenbrockGrad final : public NonlinearProblem {
 public:
  RosenbrockGrad(double a, double b) : a_(a), b_(b) {}
  [[nodiscard]] std::size_t n_dofs() const override { return 2; }
  void residual(const std::vector<double>& U, std::vector<double>& F) override {
    const double x = U[0], y = U[1];
    F = {-(a_ - x) - 2.0 * b_ * (y - x * x) * x, b_ * (y - x * x)};
  }
  void residual_and_jacobian(const std::vector<double>& U,
                             std::vector<double>& F,
                             linalg::CrsMatrix& J) override {
    residual(U, F);
    const double x = U[0], y = U[1];
    J.set(0, 0, 1.0 - 2.0 * b_ * (y - 3.0 * x * x));
    J.set(0, 1, -2.0 * b_ * x);
    J.set(1, 0, -2.0 * b_ * x);
    J.set(1, 1, b_);
  }
  [[nodiscard]] linalg::CrsMatrix create_matrix() const override {
    return linalg::CrsMatrix({0, 2, 4}, {0, 1, 0, 1});
  }

 private:
  double a_, b_;
};

}  // namespace

TEST(Newton, SolvesCubicSystem) {
  CubicProblem p({1.0, 2.0, 0.5}, {3.0, -10.0, 1.0});
  linalg::JacobiPreconditioner M;
  NewtonConfig cfg;
  cfg.max_iters = 30;
  cfg.abs_tol = 1e-12;
  NewtonSolver newton(cfg);
  std::vector<double> U = {1.0, 1.0, 1.0};
  const auto r = newton.solve(p, M, U);
  EXPECT_TRUE(r.converged);
  std::vector<double> F;
  p.residual(U, F);
  EXPECT_LT(linalg::norm2(F), 1e-10);
}

TEST(Newton, QuadraticConvergenceNearRoot) {
  CubicProblem p({1.0}, {3.0});
  linalg::JacobiPreconditioner M;
  NewtonConfig cfg;
  cfg.max_iters = 20;
  cfg.abs_tol = 1e-14;
  cfg.line_search = false;
  NewtonSolver newton(cfg);
  std::vector<double> U = {1.4};  // close to the root ~1.2134
  const auto r = newton.solve(p, M, U);
  ASSERT_TRUE(r.converged);
  // Residual history should (super)quadratically collapse: each step at
  // least squares the previous relative residual (up to a constant).
  for (std::size_t i = 2; i + 1 < r.history.size(); ++i) {
    if (r.history[i] < 1e-13) break;
    EXPECT_LT(r.history[i + 1], std::sqrt(r.history[i]) * r.history[i]);
  }
}

TEST(Newton, HonorsMaxIterations) {
  CubicProblem p({1.0, 1.0}, {100.0, -50.0});
  linalg::JacobiPreconditioner M;
  NewtonConfig cfg;
  cfg.max_iters = 2;
  cfg.abs_tol = 1e-15;
  cfg.rel_tol = 0.0;
  NewtonSolver newton(cfg);
  std::vector<double> U = {0.0, 0.0};
  const auto r = newton.solve(p, M, U);
  EXPECT_LE(r.iterations, 2);
}

TEST(Newton, DampingRescuesBadInitialGuess) {
  RosenbrockGrad p(1.0, 10.0);
  linalg::Ilu0Preconditioner M;
  NewtonConfig cfg;
  cfg.max_iters = 100;
  cfg.abs_tol = 1e-10;
  NewtonSolver newton(cfg);
  std::vector<double> U = {-1.5, 2.0};
  const auto r = newton.solve(p, M, U);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(U[0], 1.0, 1e-6);
  EXPECT_NEAR(U[1], 1.0, 1e-6);
}

TEST(Newton, LineSearchKeepsResidualMonotone) {
  // While the backtracking succeeds (damping above the floor), accepted
  // steps must not increase ||F||.  A mildly coupled problem exercises
  // several damped steps without hitting the floor.
  RosenbrockGrad p(1.0, 10.0);
  linalg::Ilu0Preconditioner M;
  NewtonConfig cfg;
  cfg.max_iters = 60;
  cfg.abs_tol = 1e-10;
  NewtonSolver newton(cfg);
  std::vector<double> U = {-1.0, 1.5};
  const auto r = newton.solve(p, M, U);
  ASSERT_TRUE(r.converged);
  ASSERT_GE(r.history.size(), 2u);
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_LE(r.history[i], r.history[i - 1] * (1.0 + 1e-12))
        << "step " << i << " increased ||F||";
  }
}

TEST(Newton, ConvergedAtStartDoesNoWork) {
  CubicProblem p({1.0}, {0.0});  // root at 0
  linalg::JacobiPreconditioner M;
  NewtonConfig cfg;
  cfg.abs_tol = 1e-8;
  NewtonSolver newton(cfg);
  std::vector<double> U = {0.0};
  const auto r = newton.solve(p, M, U);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
  EXPECT_EQ(p.n_jacobian_calls, 0);
}

TEST(Newton, ReportsLinearIterations) {
  CubicProblem p({2.0, 2.0, 2.0, 2.0}, {5.0, 6.0, 7.0, 8.0});
  linalg::JacobiPreconditioner M;
  NewtonConfig cfg;
  cfg.max_iters = 25;
  cfg.abs_tol = 1e-12;
  NewtonSolver newton(cfg);
  std::vector<double> U(4, 1.0);
  const auto r = newton.solve(p, M, U);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.total_linear_iters, 0u);
}

TEST(Newton, EightStepPaperConfiguration) {
  // The paper's test runs exactly 8 nonlinear steps with a 1e-6 linear
  // tolerance; verify the configured solver performs 8 steps on a problem
  // that needs more, and that the residual still decreased monotonically.
  CubicProblem p({0.1, 0.1}, {1000.0, -800.0});
  linalg::JacobiPreconditioner M;
  NewtonConfig cfg;  // defaults: 8 iters, gmres 1e-6
  EXPECT_EQ(cfg.max_iters, 8);
  EXPECT_DOUBLE_EQ(cfg.gmres.rel_tol, 1e-6);
  cfg.abs_tol = 0.0;
  cfg.rel_tol = 0.0;
  NewtonSolver newton(cfg);
  std::vector<double> U = {0.0, 0.0};
  const auto r = newton.solve(p, M, U);
  EXPECT_EQ(r.iterations, 8);
  EXPECT_LT(r.residual_norm, r.initial_norm);
}
