// Unit tests for the evaluator chain pieces (gather, velocity gradient,
// viscosity, body force, basal friction), the continuation solver, and the
// VTK writer.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>

#include "io/vtk_writer.hpp"
#include "linalg/semicoarsening_amg.hpp"
#include "nonlinear/continuation.hpp"
#include "physics/evaluators.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "portability/parallel.hpp"

using namespace mali;

TEST(GatherSolution, SeedsFadDerivatives) {
  using Fad = physics::JacobianEval::ScalarT;
  pk::View<double, 1> U("U", 8);
  for (std::size_t i = 0; i < 8; ++i) U(i) = static_cast<double>(i) + 0.5;
  pk::View<std::size_t, 2> cell_nodes("cn", 1, 2);
  cell_nodes(0, 0) = 3;
  cell_nodes(0, 1) = 1;
  pk::View<Fad, 3> UNodal("un", 1, 2, 2);
  physics::GatherSolution<Fad> g{U, cell_nodes, UNodal, 2};
  g(0);
  // Node 0 (global 3): value U(6), seeded along local dof 0.
  EXPECT_DOUBLE_EQ(UNodal(0, 0, 0).val(), 6.5);
  EXPECT_DOUBLE_EQ(UNodal(0, 0, 0).dx(0), 1.0);
  EXPECT_DOUBLE_EQ(UNodal(0, 0, 0).dx(1), 0.0);
  // Node 1 comp 1 (global dof 3): seeded along local dof 3.
  EXPECT_DOUBLE_EQ(UNodal(0, 1, 1).val(), 3.5);
  EXPECT_DOUBLE_EQ(UNodal(0, 1, 1).dx(3), 1.0);
}

TEST(VelocityGradient, ReproducesLinearField) {
  // UNodal sampled from u = a.x ==> Ugrad must equal a at every qp when
  // gradBF reproduces constants (use a trivial one-node basis surrogate).
  constexpr std::size_t N = 4, Q = 3;
  pk::View<double, 3> UNodal("un", 1, N, 2);
  pk::View<double, 4> gradBF("g", 1, N, Q, 3);
  pk::View<double, 4> Ugrad("ug", 1, Q, 2, 3);
  // Choose gradBF columns that sum weighted nodal values into an exact
  // derivative: node n contributes w_n with sum w_n x_n = d/dx by
  // construction (finite-difference-like weights).
  const double x[N] = {0.0, 1.0, 0.0, 1.0};
  const double y[N] = {0.0, 0.0, 1.0, 1.0};
  const double wx[N] = {-0.5, 0.5, -0.5, 0.5};
  const double wy[N] = {-0.5, -0.5, 0.5, 0.5};
  for (std::size_t n = 0; n < N; ++n) {
    UNodal(0, n, 0) = 2.0 * x[n] - 3.0 * y[n];
    UNodal(0, n, 1) = 0.5 * x[n] + 1.5 * y[n];
    for (std::size_t q = 0; q < Q; ++q) {
      gradBF(0, n, q, 0) = wx[n];
      gradBF(0, n, q, 1) = wy[n];
      gradBF(0, n, q, 2) = 0.0;
    }
  }
  physics::VelocityGradient<double> vg{UNodal, gradBF, Ugrad, N, Q};
  vg(0);
  for (std::size_t q = 0; q < Q; ++q) {
    EXPECT_NEAR(Ugrad(0, q, 0, 0), 2.0, 1e-14);
    EXPECT_NEAR(Ugrad(0, q, 0, 1), -3.0, 1e-14);
    EXPECT_NEAR(Ugrad(0, q, 1, 0), 0.5, 1e-14);
    EXPECT_NEAR(Ugrad(0, q, 1, 1), 1.5, 1e-14);
    EXPECT_NEAR(Ugrad(0, q, 0, 2), 0.0, 1e-14);
  }
}

TEST(ViscosityFO, GlensLawValues) {
  pk::View<double, 4> Ugrad("ug", 1, 1, 2, 3);
  pk::View<double, 2> mu("mu", 1, 1);
  // Pure shear: u_z = 2 eps, everything else 0 -> eps_e^2 = eps^2.
  const double eps = 1e-3;
  Ugrad(0, 0, 0, 2) = 2.0 * eps;
  physics::ViscosityFO<double> v;
  v.Ugrad = Ugrad;
  v.muLandIce = mu;
  v.glen_A = 1e-16;
  v.glen_n = 3.0;
  v.eps_reg2 = 0.0;
  v.numQPs = 1;
  v(0);
  const double expect =
      0.5 * std::pow(1e-16, -1.0 / 3.0) * std::pow(eps * eps, -1.0 / 3.0);
  EXPECT_NEAR(mu(0, 0) / expect, 1.0, 1e-12);
}

TEST(ViscosityFO, ShearThinning) {
  pk::View<double, 4> Ugrad("ug", 1, 2, 2, 3);
  pk::View<double, 2> mu("mu", 1, 2);
  Ugrad(0, 0, 0, 2) = 2e-4;
  Ugrad(0, 1, 0, 2) = 2e-2;  // 100x faster strain
  physics::ViscosityFO<double> v;
  v.Ugrad = Ugrad;
  v.muLandIce = mu;
  v.numQPs = 2;
  v(0);
  EXPECT_GT(mu(0, 0), mu(0, 1)) << "Glen's law is shear-thinning";
  // n=3: mu ~ eps^{-2/3}: factor 100 in eps -> ~21.5x in mu.
  EXPECT_NEAR(mu(0, 0) / mu(0, 1), std::pow(100.0, 2.0 / 3.0), 1.0);
}

TEST(ViscosityFO, ConstantModeBypassesStrainRate) {
  pk::View<double, 4> Ugrad("ug", 1, 1, 2, 3);
  pk::View<double, 2> mu("mu", 1, 1);
  Ugrad(0, 0, 0, 0) = 123.0;
  physics::ViscosityFO<double> v;
  v.Ugrad = Ugrad;
  v.muLandIce = mu;
  v.constant_mu = 7.5e7;
  v.numQPs = 1;
  v(0);
  EXPECT_DOUBLE_EQ(mu(0, 0), 7.5e7);
}

TEST(BasalFriction, LinearLawContribution) {
  // One face, one qp-set: Residual gains beta * u * wBF on the face nodes.
  pk::View<std::size_t, 1> face_cell("fc", 1);
  pk::View<double, 3> face_wBF("fw", 1, 4, 1);
  pk::View<double, 1> beta("b", 1);
  pk::View<double, 3> UNodal("un", 1, 8, 2);
  pk::View<double, 3> Residual("r", 1, 8, 2);
  pk::View<double, 2> face_BF("bf", 4, 1);
  beta(0) = 2.0;
  for (int k = 0; k < 4; ++k) {
    face_BF(k, 0) = 0.25;       // uniform face basis at the single qp
    face_wBF(0, k, 0) = 3.0;    // weight x area
    UNodal(0, k, 0) = 10.0;     // uniform basal velocity
    UNodal(0, k, 1) = -4.0;
  }
  physics::BasalFrictionResid<double> f{face_cell, face_wBF, beta,
                                        UNodal,    Residual, face_BF, 1};
  f(0);
  for (int k = 0; k < 4; ++k) {
    EXPECT_NEAR(Residual(0, k, 0), 2.0 * 10.0 * 3.0, 1e-12);
    EXPECT_NEAR(Residual(0, k, 1), 2.0 * -4.0 * 3.0, 1e-12);
  }
  for (int k = 4; k < 8; ++k) {
    EXPECT_EQ(Residual(0, k, 0), 0.0);  // top nodes untouched
  }
}

// ---- continuation ----

TEST(Continuation, WalksRegularizationToTarget) {
  physics::StokesFOConfig cfg;
  cfg.dx_m = 250.0e3;
  cfg.n_layers = 4;
  physics::StokesFOProblem p(cfg);
  linalg::SemicoarseningAmg amg(p.extrusion_info());

  nonlinear::ContinuationConfig ccfg;
  ccfg.start_parameter = 1e-4;
  ccfg.target_parameter = 1e-10;
  ccfg.reduction = 0.01;
  ccfg.newton.max_iters = 10;
  ccfg.newton.rel_tol = 1e-6;

  std::vector<double> U(p.n_dofs(), 0.0);
  const auto r = nonlinear::continuation_solve(
      p, amg, [&](double eps2) { p.set_regularization(eps2); }, U, ccfg);
  EXPECT_DOUBLE_EQ(r.final_parameter, 1e-10);
  EXPECT_GE(r.steps, 3);
  EXPECT_EQ(r.inner.size(), static_cast<std::size_t>(r.steps));
  // The continued solve reaches a physical state.
  const double mean = p.mean_velocity(U);
  EXPECT_GT(mean, 1.0);
  EXPECT_LT(mean, 50000.0);
  // Later steps start from good guesses: the final step's Newton converges
  // at least as deeply as a cold solve of the same budget.
  std::vector<double> U_cold(p.n_dofs(), 0.0);
  nonlinear::NewtonConfig ncfg = ccfg.newton;
  const auto cold = nonlinear::NewtonSolver(ncfg).solve(p, amg, U_cold);
  EXPECT_LE(r.residual_norm, cold.residual_norm * 10.0);
}

TEST(Continuation, RejectsBadConfig) {
  physics::StokesFOConfig cfg;
  cfg.dx_m = 300.0e3;
  cfg.n_layers = 3;
  physics::StokesFOProblem p(cfg);
  linalg::JacobiPreconditioner M;
  std::vector<double> U(p.n_dofs(), 0.0);
  nonlinear::ContinuationConfig bad;
  bad.start_parameter = 1e-12;  // below target
  EXPECT_THROW(nonlinear::continuation_solve(
                   p, M, [&](double e) { p.set_regularization(e); }, U, bad),
               mali::Error);
}

// ---- VTK ----

TEST(VtkWriter, WritesValidLegacyFile) {
  physics::StokesFOConfig cfg;
  cfg.dx_m = 300.0e3;
  cfg.n_layers = 3;
  physics::StokesFOProblem p(cfg);
  const auto U = p.analytic_initial_guess();
  std::vector<double> speed(p.mesh().n_nodes());
  for (std::size_t n = 0; n < speed.size(); ++n) {
    speed[n] = std::hypot(U[2 * n], U[2 * n + 1]);
  }
  const auto path = std::string(::testing::TempDir()) + "mesh.vtk";
  io::write_vtk(path, p.mesh(), {{"speed", &speed}}, {{"velocity", &U}});

  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "# vtk DataFile Version 3.0");
  std::size_t points = 0, cells = 0, celltypes = 0, pointdata = 0;
  while (std::getline(is, line)) {
    if (line.rfind("POINTS", 0) == 0) points = 1;
    if (line.rfind("CELLS", 0) == 0) cells = 1;
    if (line.rfind("CELL_TYPES", 0) == 0) celltypes = 1;
    if (line.rfind("POINT_DATA", 0) == 0) pointdata = 1;
  }
  EXPECT_EQ(points + cells + celltypes + pointdata, 4u);
  std::remove(path.c_str());
}

TEST(VtkWriter, RejectsWrongFieldSizes) {
  physics::StokesFOConfig cfg;
  cfg.dx_m = 300.0e3;
  cfg.n_layers = 3;
  physics::StokesFOProblem p(cfg);
  std::vector<double> bad(3, 0.0);
  EXPECT_THROW(io::write_vtk(std::string(::testing::TempDir()) + "x.vtk",
                             p.mesh(), {{"bad", &bad}}),
               mali::Error);
}
