// Tests for the extended pk layer: MDRangePolicy, reducers, scans, and
// profiling regions.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "portability/mdrange.hpp"
#include "portability/timer.hpp"
#include "portability/profiling.hpp"
#include "portability/reductions.hpp"
#include "portability/team_policy.hpp"
#include "portability/view.hpp"

namespace pk = mali::pk;

TEST(MDRange, CoversFull2DSpace) {
  pk::View<int, 2> hits("h", 7, 5);
  pk::MDRangePolicy<2, pk::Serial> policy({7, 5});
  EXPECT_EQ(policy.size(), 35u);
  pk::parallel_for(policy, [&](int i, int j) { hits(i, j) += 1; });
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 5; ++j) EXPECT_EQ(hits(i, j), 1);
  }
}

TEST(MDRange, ThreeDimensionalThreads) {
  pk::View<int, 3> hits("h", 4, 3, 6);
  pk::MDRangePolicy<3, pk::Threads> policy({4, 3, 6});
  pk::parallel_for(policy, [&](int i, int j, int k) { hits(i, j, k) = i * 100 + j * 10 + k; });
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      for (std::size_t k = 0; k < 6; ++k) {
        EXPECT_EQ(hits(i, j, k), static_cast<int>(i * 100 + j * 10 + k));
      }
    }
  }
}

TEST(MDRange, UnflattenRowMajor) {
  pk::MDRangePolicy<3, pk::Serial> policy({2, 3, 4});
  // Linear index 0 -> (0,0,0); index 1 -> (0,0,1) (last index fastest).
  EXPECT_EQ(policy.unflatten(0), (std::array<std::size_t, 3>{0, 0, 0}));
  EXPECT_EQ(policy.unflatten(1), (std::array<std::size_t, 3>{0, 0, 1}));
  EXPECT_EQ(policy.unflatten(4), (std::array<std::size_t, 3>{0, 1, 0}));
  EXPECT_EQ(policy.unflatten(12), (std::array<std::size_t, 3>{1, 0, 0}));
  EXPECT_EQ(policy.unflatten(23), (std::array<std::size_t, 3>{1, 2, 3}));
}

TEST(Reducers, SumMinMax) {
  const auto sum = pk::reduce<pk::Sum<long>, pk::Serial>(
      "s", 1000, [](int i, long& p) { p += i; });
  EXPECT_EQ(sum, 499500);

  const auto mn = pk::reduce<pk::Min<double>, pk::Threads>(
      "m", 100, [](int i, double& p) { p = (i - 37) * (i - 37); });
  EXPECT_EQ(mn, 0.0);

  const auto mx = pk::reduce<pk::Max<int>, pk::Threads>(
      "M", 100, [](int i, int& p) { p = i % 13; });
  EXPECT_EQ(mx, 12);
}

TEST(Reducers, EmptyRangeGivesIdentity) {
  const auto sum = pk::reduce<pk::Sum<int>, pk::Serial>(
      "s", 0, [](int, int& p) { p = 99; });
  EXPECT_EQ(sum, 0);
  const auto mn = pk::reduce<pk::Min<int>, pk::Serial>(
      "m", 0, [](int, int& p) { p = -5; });
  EXPECT_EQ(mn, std::numeric_limits<int>::max());
}

TEST(Scan, ExclusivePrefixSum) {
  std::vector<int> in = {3, 1, 4, 1, 5, 9};
  std::vector<int> out;
  const int total = pk::exclusive_scan(in, out);
  EXPECT_EQ(total, 23);
  EXPECT_EQ(out, (std::vector<int>{0, 3, 4, 8, 9, 14}));
}

TEST(Scan, FunctorForm) {
  // Classic compaction-offset use: each element contributes its count.
  const std::vector<int> counts = {2, 0, 3, 1};
  std::vector<int> offsets(4);
  const int total = pk::parallel_scan<int>(
      "offsets", 4, [&](int i, int& partial, bool is_final) {
        if (is_final) offsets[static_cast<std::size_t>(i)] = partial;
        partial += counts[static_cast<std::size_t>(i)];
      });
  EXPECT_EQ(total, 6);
  EXPECT_EQ(offsets, (std::vector<int>{0, 2, 2, 5}));
}

TEST(Profiling, RegionsAccumulate) {
  auto& prof = pk::Profiling::instance();
  prof.clear();
  for (int i = 0; i < 3; ++i) {
    pk::ScopedRegion outer("assemble");
    pk::ScopedRegion inner("viscosity");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto outer = prof.stats("assemble");
  const auto inner = prof.stats("assemble.viscosity");
  EXPECT_EQ(outer.calls, 3u);
  EXPECT_EQ(inner.calls, 3u);
  EXPECT_GT(inner.total_s, 0.0);
  EXPECT_GE(outer.total_s, inner.total_s * 0.5);
  EXPECT_GE(outer.max_s, outer.mean_s());
  EXPECT_EQ(prof.depth(), 0u);
  prof.clear();
  EXPECT_EQ(prof.stats("assemble").calls, 0u);
}

TEST(TeamPolicy, LeagueCoversAllTeams) {
  std::vector<std::atomic<int>> hits(24);
  pk::TeamPolicy<pk::Threads> policy(24, 4);
  pk::parallel_for(policy, [&](const pk::TeamMember& member) {
    EXPECT_EQ(member.league_size(), 24);
    EXPECT_EQ(member.team_size(), 4);
    EXPECT_EQ(member.team_rank(), 0);
    hits[static_cast<std::size_t>(member.league_rank())].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TeamPolicy, NestedTeamForAndReduce) {
  // Classic cell/qp shape: league over cells, team loop over qps.
  constexpr int kCells = 10, kQps = 8;
  std::vector<double> out(kCells, 0.0);
  pk::TeamPolicy<pk::Serial> policy(kCells, kQps);
  pk::parallel_for(policy, [&](const pk::TeamMember& member) {
    double sum = 0.0;
    pk::team_reduce(member, kQps,
                    [&](int q, double& acc) {
                      acc += static_cast<double>(member.league_rank() * q);
                    },
                    sum);
    out[static_cast<std::size_t>(member.league_rank())] = sum;
  });
  for (int c = 0; c < kCells; ++c) {
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(c)], c * 28.0);  // 0+..+7
  }
}

TEST(TeamPolicy, TeamForVisitsEveryIndex) {
  pk::TeamPolicy<pk::Serial> policy(1, 8);
  std::vector<int> seen;
  pk::parallel_for(policy, [&](const pk::TeamMember& member) {
    pk::team_for(member, 5, [&](int i) { seen.push_back(i); });
  });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Profiling, UnmatchedPopIsIgnored) {
  auto& prof = pk::Profiling::instance();
  prof.clear();
  prof.pop_region();  // no-op, must not crash
  EXPECT_EQ(prof.depth(), 0u);
}

TEST(Timers, TimerRegistryAccumulates) {
  pk::TimerRegistry reg;
  reg.add("assemble", 0.25);
  reg.add("assemble", 0.75);
  reg.add("solve", 1.5);
  EXPECT_DOUBLE_EQ(reg.total("assemble"), 1.0);
  EXPECT_EQ(reg.count("assemble"), 2u);
  EXPECT_DOUBLE_EQ(reg.total("solve"), 1.5);
  EXPECT_DOUBLE_EQ(reg.total("missing"), 0.0);
  EXPECT_EQ(reg.count("missing"), 0u);
  reg.clear();
  EXPECT_EQ(reg.entries().size(), 0u);
}

TEST(Timers, ScopedTimerReports) {
  pk::TimerRegistry reg;
  {
    pk::ScopedTimer t(reg, "region");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(reg.count("region"), 1u);
  EXPECT_GT(reg.total("region"), 1e-3);
}

TEST(Timers, TimerMeasuresElapsed) {
  pk::Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double first = t.seconds();
  EXPECT_GT(first, 1e-3);
  t.reset();
  EXPECT_LT(t.seconds(), first);
}
