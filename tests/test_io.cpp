// Field-output tests: PPM heatmap structure and colormap properties, and
// CSV writing.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <cmath>
#include <sstream>

#include "io/field_writer.hpp"
#include "mesh/ice_geometry.hpp"

using namespace mali;

namespace {

struct Fixture {
  mesh::IceGeometry geom{};
  mesh::QuadGrid grid{geom, mesh::QuadGridConfig{200.0e3}};
  std::string tmp(const char* name) {
    return std::string(::testing::TempDir()) + name;
  }
};

}  // namespace

TEST(HeatColor, EndpointsAndMonotoneRedChannel) {
  const auto lo = io::heat_color(0.0);
  const auto hi = io::heat_color(1.0);
  EXPECT_GT(lo.b, lo.r);  // cold end is blue
  EXPECT_GT(hi.r, hi.b);  // hot end is red
  // Red channel grows (not strictly, but ends apart).
  EXPECT_GT(static_cast<int>(hi.r) - static_cast<int>(lo.r), 100);
  // Clamping.
  const auto under = io::heat_color(-3.0);
  EXPECT_EQ(under.r, lo.r);
  const auto over = io::heat_color(7.0);
  EXPECT_EQ(over.r, hi.r);
}

TEST(FieldWriter, PpmHeaderAndSize) {
  Fixture f;
  std::vector<double> field(f.grid.n_cells());
  for (std::size_t c = 0; c < field.size(); ++c) {
    field[c] = static_cast<double>(c);
  }
  io::HeatmapConfig cfg;
  cfg.pixels_per_cell = 2;
  const auto path = io::write_heatmap_ppm(f.tmp("field.ppm"), f.grid, field, cfg);

  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is.good());
  std::string magic;
  long w = 0, h = 0, maxval = 0;
  is >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(maxval, 255);
  EXPECT_GT(w, 0);
  EXPECT_GT(h, 0);
  EXPECT_EQ(w % cfg.pixels_per_cell, 0);
  is.get();  // single whitespace after header
  // Payload must be exactly w*h*3 bytes.
  const auto start = is.tellg();
  is.seekg(0, std::ios::end);
  EXPECT_EQ(static_cast<long>(is.tellg() - start), w * h * 3);
  std::remove(path.c_str());
}

TEST(FieldWriter, ConstantFieldRendersUniformIceColor) {
  Fixture f;
  std::vector<double> field(f.grid.n_cells(), 5.0);
  io::HeatmapConfig cfg;
  cfg.pixels_per_cell = 1;
  const auto path =
      io::write_heatmap_ppm(f.tmp("const.ppm"), f.grid, field, cfg);
  std::ifstream is(path, std::ios::binary);
  std::string magic;
  long w, h, maxval;
  is >> magic >> w >> h >> maxval;
  is.get();
  std::vector<unsigned char> px(static_cast<std::size_t>(w * h * 3));
  is.read(reinterpret_cast<char*>(px.data()),
          static_cast<std::streamsize>(px.size()));
  // Every non-background pixel has the same color.
  const io::HeatmapConfig defaults;
  unsigned char r0 = 0, g0 = 0, b0 = 0;
  bool found = false;
  for (std::size_t i = 0; i < px.size(); i += 3) {
    const bool bg = px[i] == defaults.background.r &&
                    px[i + 1] == defaults.background.g &&
                    px[i + 2] == defaults.background.b;
    if (bg) continue;
    if (!found) {
      r0 = px[i];
      g0 = px[i + 1];
      b0 = px[i + 2];
      found = true;
    } else {
      EXPECT_EQ(px[i], r0);
      EXPECT_EQ(px[i + 1], g0);
      EXPECT_EQ(px[i + 2], b0);
    }
  }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
}

TEST(FieldWriter, RejectsWrongFieldSize) {
  Fixture f;
  std::vector<double> field(f.grid.n_cells() + 1, 0.0);
  EXPECT_THROW(io::write_heatmap_ppm(f.tmp("bad.ppm"), f.grid, field),
               mali::Error);
}

TEST(FieldWriter, NodeCsvRoundTrip) {
  Fixture f;
  std::vector<double> a(f.grid.n_nodes()), b(f.grid.n_nodes());
  for (std::size_t n = 0; n < f.grid.n_nodes(); ++n) {
    a[n] = static_cast<double>(n);
    b[n] = -2.0 * static_cast<double>(n);
  }
  const auto path = f.tmp("nodes.csv");
  io::write_node_csv(path, f.grid, {"a", "b"}, {&a, &b});
  std::ifstream is(path);
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header, "x_m,y_m,a,b");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(is, line)) ++rows;
  EXPECT_EQ(rows, f.grid.n_nodes());
  std::remove(path.c_str());
}

TEST(FieldWriter, CsvColumnArityChecked) {
  Fixture f;
  std::vector<double> a(f.grid.n_nodes(), 0.0);
  EXPECT_THROW(io::write_node_csv(f.tmp("x.csv"), f.grid, {"a", "b"}, {&a}),
               mali::Error);
}

TEST(FieldWriter, LogScaleHandlesWideDynamicRange) {
  Fixture f;
  std::vector<double> field(f.grid.n_cells());
  for (std::size_t c = 0; c < field.size(); ++c) {
    field[c] = c == 0 ? 0.0 : std::pow(10.0, static_cast<double>(c % 5));
  }
  io::HeatmapConfig cfg;
  cfg.log_scale = true;
  cfg.pixels_per_cell = 1;
  const auto path =
      io::write_heatmap_ppm(f.tmp("log.ppm"), f.grid, field, cfg);
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good());
  std::remove(path.c_str());
}

TEST(FieldWriter, ExplicitColorBounds) {
  Fixture f;
  std::vector<double> field(f.grid.n_cells(), 50.0);
  io::HeatmapConfig cfg;
  cfg.vmin = 0.0;
  cfg.vmax = 100.0;
  cfg.pixels_per_cell = 1;
  const auto path =
      io::write_heatmap_ppm(f.tmp("mid.ppm"), f.grid, field, cfg);
  // Mid-range value maps to the mid color, not an endpoint.
  const auto mid = io::heat_color(0.5);
  const auto lo = io::heat_color(0.0);
  EXPECT_NE(mid.b, lo.b);
  std::remove(path.c_str());
}
