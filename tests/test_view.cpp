// Unit tests for mali::pk::View: layouts, extents/strides, ownership,
// fill/deep-copy, and offset arithmetic.

#include <gtest/gtest.h>

#include "portability/view.hpp"

namespace pk = mali::pk;

TEST(View, ExtentsAndSize) {
  pk::View<double, 3> v("v", 4, 5, 6);
  EXPECT_EQ(v.extent(0), 4u);
  EXPECT_EQ(v.extent(1), 5u);
  EXPECT_EQ(v.extent(2), 6u);
  EXPECT_EQ(v.extent(3), 1u);  // beyond rank
  EXPECT_EQ(v.size(), 120u);
  EXPECT_EQ(v.size_bytes(), 120u * sizeof(double));
  EXPECT_TRUE(v.allocated());
  EXPECT_EQ(v.label(), "v");
}

TEST(View, DefaultConstructedIsEmpty) {
  pk::View<int, 2> v;
  EXPECT_FALSE(v.allocated());
  EXPECT_EQ(v.size(), 0u);
}

TEST(View, ZeroInitialized) {
  pk::View<double, 2> v("v", 7, 3);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(v(i, j), 0.0);
  }
}

TEST(View, LayoutLeftStrides) {
  // Leftmost (cell) index has stride 1 — GPU-coalesced layout.
  pk::View<double, 3> v("v", 4, 5, 6);
  EXPECT_EQ(v.stride(0), 1u);
  EXPECT_EQ(v.stride(1), 4u);
  EXPECT_EQ(v.stride(2), 20u);
  EXPECT_EQ(&v(1, 0, 0) - &v(0, 0, 0), 1);
  EXPECT_EQ(&v(0, 1, 0) - &v(0, 0, 0), 4);
  EXPECT_EQ(&v(0, 0, 1) - &v(0, 0, 0), 20);
}

TEST(View, LayoutRightStrides) {
  pk::View<double, 3, pk::LayoutRight> v("v", 4, 5, 6);
  EXPECT_EQ(v.stride(0), 30u);
  EXPECT_EQ(v.stride(1), 6u);
  EXPECT_EQ(v.stride(2), 1u);
}

TEST(View, OffsetMatchesAddress) {
  pk::View<float, 4> v("v", 3, 4, 5, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      for (std::size_t k = 0; k < 5; ++k) {
        for (std::size_t l = 0; l < 2; ++l) {
          EXPECT_EQ(v.data() + v.offset_of(i, j, k, l), &v(i, j, k, l));
        }
      }
    }
  }
}

TEST(View, OffsetsAreUnique) {
  pk::View<int, 3> v("v", 3, 4, 5);
  std::vector<bool> seen(v.size(), false);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      for (std::size_t k = 0; k < 5; ++k) {
        const std::size_t off = v.offset_of(i, j, k);
        ASSERT_LT(off, v.size());
        EXPECT_FALSE(seen[off]);
        seen[off] = true;
      }
    }
  }
}

TEST(View, SharedOwnership) {
  pk::View<double, 1> a("a", 10);
  pk::View<double, 1> b = a;  // shallow copy, Kokkos semantics
  b(3) = 42.0;
  EXPECT_EQ(a(3), 42.0);
  EXPECT_TRUE(a.same_data(b));
}

TEST(View, Fill) {
  pk::View<double, 2> v("v", 3, 3);
  v.fill(2.5);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v.data()[i], 2.5);
}

TEST(View, DeepCopy) {
  pk::View<double, 2> a("a", 3, 4);
  pk::View<double, 2> b("b", 3, 4);
  a.fill(1.5);
  b.deep_copy_from(a);
  EXPECT_FALSE(a.same_data(b));
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b.data()[i], 1.5);
}

TEST(View, DeepCopySizeMismatchThrows) {
  pk::View<double, 1> a("a", 3);
  pk::View<double, 1> b("b", 4);
  EXPECT_THROW(b.deep_copy_from(a), mali::Error);
}

// Parameterized sweep: round-trip index <-> offset for many shapes.
class ViewShapeTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ViewShapeTest, RowColumnRoundTrip) {
  const auto [rows, cols] = GetParam();
  pk::View<int, 2> v("v", rows, cols);
  int counter = 0;
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) v(i, j) = counter++;
  }
  counter = 0;
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) EXPECT_EQ(v(i, j), counter++);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ViewShapeTest,
                         ::testing::Combine(::testing::Values(1, 2, 7, 16),
                                            ::testing::Values(1, 3, 8, 33)));
