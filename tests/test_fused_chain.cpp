// Fused evaluator-chain tests: numerical equivalence with the staged
// pipeline (VelocityGradient -> ViscosityFO -> BodyForce -> StokesFOResid)
// for both evaluation types, and the data-movement properties of the chain
// traces.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/chain_traces.hpp"
#include "gpusim/exec_model.hpp"
#include "physics/eval_types.hpp"
#include "physics/evaluators.hpp"
#include "physics/fused_chain.hpp"
#include "physics/stokes_fo_resid.hpp"
#include "portability/parallel.hpp"

using namespace mali;
using Fad = physics::JacobianEval::ScalarT;

namespace {

template <class ScalarT>
struct ChainData {
  static constexpr std::size_t C = 12, N = 8, Q = 8;
  pk::View<ScalarT, 3> UNodal{"UNodal", C, N, 2};
  pk::View<double, 4> gradBF{"gradBF", C, N, Q, 3};
  pk::View<double, 4> wGradBF{"wGradBF", C, N, Q, 3};
  pk::View<double, 3> wBF{"wBF", C, N, Q};
  pk::View<double, 3> force_passive{"force_passive", C, Q, 2};
  // staged intermediates
  pk::View<ScalarT, 4> Ugrad{"Ugrad", C, Q, 2, 3};
  pk::View<ScalarT, 2> mu{"muLandIce", C, Q};
  pk::View<ScalarT, 3> force{"force", C, Q, 2};
  pk::View<ScalarT, 3> R_staged{"R_staged", C, N, 2};
  pk::View<ScalarT, 3> R_fused{"R_fused", C, N, 2};

  explicit ChainData(unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (std::size_t c = 0; c < C; ++c) {
      for (std::size_t n = 0; n < N; ++n) {
        for (int v = 0; v < 2; ++v) {
          // Velocities O(100 m/yr) with Fad seeding for the Jacobian path.
          if constexpr (ad::is_fad_v<ScalarT>) {
            UNodal(c, n, v) =
                ScalarT(100.0 * dist(rng), static_cast<int>(2 * n) + v);
          } else {
            UNodal(c, n, v) = 100.0 * dist(rng);
          }
        }
        for (std::size_t q = 0; q < Q; ++q) {
          wBF(c, n, q) = dist(rng);
          for (int d = 0; d < 3; ++d) {
            gradBF(c, n, q, d) = 1e-5 * dist(rng);  // 1/m scale gradients
            wGradBF(c, n, q, d) = dist(rng);
          }
        }
      }
      for (std::size_t q = 0; q < Q; ++q) {
        force_passive(c, q, 0) = 10.0 * dist(rng);
        force_passive(c, q, 1) = 10.0 * dist(rng);
      }
    }
  }
};

template <class ScalarT>
void run_staged(ChainData<ScalarT>& d) {
  physics::VelocityGradient<ScalarT> vg{d.UNodal, d.gradBF, d.Ugrad,
                                        ChainData<ScalarT>::N,
                                        ChainData<ScalarT>::Q};
  pk::parallel_for("vg", pk::RangePolicy<pk::Serial>(d.C), vg);
  physics::ViscosityFO<ScalarT> visc;
  visc.Ugrad = d.Ugrad;
  visc.muLandIce = d.mu;
  visc.numQPs = ChainData<ScalarT>::Q;
  pk::parallel_for("visc", pk::RangePolicy<pk::Serial>(d.C), visc);
  physics::BodyForceFO<ScalarT> bf{d.force_passive, d.force,
                                   ChainData<ScalarT>::Q};
  pk::parallel_for("bf", pk::RangePolicy<pk::Serial>(d.C), bf);
  physics::StokesFOResid<ScalarT> resid;
  resid.Ugrad = d.Ugrad;
  resid.muLandIce = d.mu;
  resid.force = d.force;
  resid.wGradBF = d.wGradBF;
  resid.wBF = d.wBF;
  resid.Residual = d.R_staged;
  resid.numNodes = ChainData<ScalarT>::N;
  resid.numQPs = ChainData<ScalarT>::Q;
  pk::parallel_for(
      "resid",
      pk::RangePolicy<pk::Serial, physics::LandIce_3D_Opt_Tag<8>>(d.C), resid);
}

template <class ScalarT>
void run_fused(ChainData<ScalarT>& d) {
  physics::FusedStokesChain<ScalarT> fused;
  fused.UNodal = d.UNodal;
  fused.gradBF = d.gradBF;
  fused.wGradBF = d.wGradBF;
  fused.wBF = d.wBF;
  fused.force_passive = d.force_passive;
  fused.Residual = d.R_fused;
  fused.numNodes = ChainData<ScalarT>::N;
  fused.numQPs = ChainData<ScalarT>::Q;
  pk::parallel_for("fused", pk::RangePolicy<pk::Serial>(d.C), fused);
}

}  // namespace

class FusedChainEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(FusedChainEquivalence, ResidualPathMatchesStaged) {
  ChainData<double> d(GetParam());
  run_staged(d);
  run_fused(d);
  for (std::size_t c = 0; c < d.C; ++c) {
    for (std::size_t n = 0; n < d.N; ++n) {
      for (int v = 0; v < 2; ++v) {
        const double ref = d.R_staged(c, n, v);
        EXPECT_NEAR(d.R_fused(c, n, v), ref,
                    1e-11 * std::max(1.0, std::abs(ref)));
      }
    }
  }
}

TEST_P(FusedChainEquivalence, JacobianPathMatchesStaged) {
  ChainData<Fad> d(GetParam() + 100);
  run_staged(d);
  run_fused(d);
  for (std::size_t c = 0; c < d.C; ++c) {
    for (std::size_t n = 0; n < d.N; ++n) {
      for (int v = 0; v < 2; ++v) {
        const Fad& ref = d.R_staged(c, n, v);
        const Fad& got = d.R_fused(c, n, v);
        EXPECT_NEAR(got.val(), ref.val(),
                    1e-11 * std::max(1.0, std::abs(ref.val())));
        for (int l = 0; l < 16; ++l) {
          EXPECT_NEAR(got.dx(l), ref.dx(l),
                      1e-10 * std::max(1.0, std::abs(ref.dx(l))));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusedChainEquivalence,
                         ::testing::Values(1u, 7u, 42u));

TEST(ChainTraces, StagedStagesHaveExpectedShapes) {
  const auto stages = core::record_chain_stages(core::KernelKind::kJacobian,
                                                4096);
  ASSERT_EQ(stages.size(), 4u);
  EXPECT_EQ(stages[0].name, "VelocityGradient");
  EXPECT_EQ(stages[3].name, "StokesFOResid");
  for (const auto& st : stages) {
    EXPECT_FALSE(st.trace.empty()) << st.name;
    EXPECT_GT(st.info.flops_per_cell, 0.0) << st.name;
  }
}

TEST(ChainTraces, FusedEliminatesIntermediateArrays) {
  const auto fused = core::record_fused_chain(core::KernelKind::kJacobian,
                                              4096);
  for (const auto& a : fused.trace.arrays()) {
    EXPECT_NE(a.name, "Ugrad");
    EXPECT_NE(a.name, "muLandIce");
    EXPECT_NE(a.name, "force");
  }
  // Residual written once per element, like the optimized kernel.
  int residual_id = -1;
  for (std::size_t i = 0; i < fused.trace.arrays().size(); ++i) {
    if (fused.trace.arrays()[i].name == "Residual") {
      residual_id = static_cast<int>(i);
    }
  }
  ASSERT_GE(residual_id, 0);
  std::size_t writes = 0;
  for (const auto& r : fused.trace.records()) {
    if (r.array_id == residual_id) {
      EXPECT_EQ(r.kind, gpusim::AccessKind::kWrite);
      ++writes;
    }
  }
  EXPECT_EQ(writes, 16u);
}

TEST(ChainTraces, FusedMinBytesBelowStagedSum) {
  const std::size_t cells = 8192;
  for (auto kind : {core::KernelKind::kResidual, core::KernelKind::kJacobian}) {
    const auto stages = core::record_chain_stages(kind, cells);
    std::uint64_t staged_min = 0;
    for (const auto& st : stages) {
      staged_min += gpusim::ExecModel::theoretical_min_bytes(st.trace, cells);
    }
    const auto fused = core::record_fused_chain(kind, cells);
    const auto fused_min =
        gpusim::ExecModel::theoretical_min_bytes(fused.trace, cells);
    EXPECT_LT(fused_min, staged_min) << core::to_string(kind);
    if (kind == core::KernelKind::kJacobian) {
      EXPECT_LT(static_cast<double>(fused_min),
                0.5 * static_cast<double>(staged_min))
          << "dropping the SFad intermediates should halve the minimum";
    }
  }
}
