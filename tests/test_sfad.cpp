// AD correctness: SFad derivatives verified against central finite
// differences across the operator and math-function set, plus DFad
// cross-checks and the composite Glen's-law expression the physics uses.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "ad/dfad.hpp"
#include "ad/scalar_traits.hpp"
#include "ad/sfad.hpp"

using mali::ad::DFad;
using mali::ad::SFad;
using Fad2 = SFad<double, 2>;

namespace {

/// d/dx f(x, y) by central differences.
double fd_x(const std::function<double(double, double)>& f, double x, double y,
            double h = 1e-6) {
  return (f(x + h, y) - f(x - h, y)) / (2.0 * h);
}
double fd_y(const std::function<double(double, double)>& f, double x, double y,
            double h = 1e-6) {
  return (f(x, y + h) - f(x, y - h)) / (2.0 * h);
}

}  // namespace

TEST(SFad, SeededConstruction) {
  Fad2 x(3.0, 0);
  EXPECT_EQ(x.val(), 3.0);
  EXPECT_EQ(x.dx(0), 1.0);
  EXPECT_EQ(x.dx(1), 0.0);
}

TEST(SFad, ConstantHasZeroDerivatives) {
  Fad2 c(7.5);
  EXPECT_EQ(c.val(), 7.5);
  EXPECT_EQ(c.dx(0), 0.0);
  EXPECT_EQ(c.dx(1), 0.0);
}

TEST(SFad, AssignScalarClearsDerivatives) {
  Fad2 x(3.0, 0);
  x = 2.0;
  EXPECT_EQ(x.val(), 2.0);
  EXPECT_EQ(x.dx(0), 0.0);
}

TEST(SFad, Seed) {
  Fad2 x;
  x.seed(4.0, 1);
  EXPECT_EQ(x.val(), 4.0);
  EXPECT_EQ(x.dx(0), 0.0);
  EXPECT_EQ(x.dx(1), 1.0);
}

TEST(SFad, ComparisonOnValues) {
  Fad2 a(1.0, 0), b(2.0, 1);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(a >= a);
  EXPECT_TRUE(a == Fad2(1.0, 1));  // value comparison, as in Sacado
  EXPECT_TRUE(a != b);
}

TEST(SFad, UnaryNegation) {
  Fad2 x(3.0, 0);
  const Fad2 y = -x;
  EXPECT_EQ(y.val(), -3.0);
  EXPECT_EQ(y.dx(0), -1.0);
}

// ---- parameterized binary-operation derivative checks ----

struct BinaryCase {
  const char* name;
  std::function<Fad2(const Fad2&, const Fad2&)> fad;
  std::function<double(double, double)> val;
};

class SFadBinaryOp
    : public ::testing::TestWithParam<std::tuple<BinaryCase, std::pair<double, double>>> {};

TEST_P(SFadBinaryOp, MatchesFiniteDifferences) {
  const auto& [op, xy] = GetParam();
  const auto [xv, yv] = xy;
  Fad2 x(xv, 0), y(yv, 1);
  const Fad2 r = op.fad(x, y);
  EXPECT_NEAR(r.val(), op.val(xv, yv), 1e-12) << op.name;
  EXPECT_NEAR(r.dx(0), fd_x(op.val, xv, yv), 1e-5) << op.name << " d/dx";
  EXPECT_NEAR(r.dx(1), fd_y(op.val, xv, yv), 1e-5) << op.name << " d/dy";
}

INSTANTIATE_TEST_SUITE_P(
    Ops, SFadBinaryOp,
    ::testing::Combine(
        ::testing::Values(
            BinaryCase{"add", [](const Fad2& a, const Fad2& b) { return a + b; },
                       [](double a, double b) { return a + b; }},
            BinaryCase{"sub", [](const Fad2& a, const Fad2& b) { return a - b; },
                       [](double a, double b) { return a - b; }},
            BinaryCase{"mul", [](const Fad2& a, const Fad2& b) { return a * b; },
                       [](double a, double b) { return a * b; }},
            BinaryCase{"div", [](const Fad2& a, const Fad2& b) { return a / b; },
                       [](double a, double b) { return a / b; }},
            BinaryCase{"composite",
                       [](const Fad2& a, const Fad2& b) {
                         return 2.0 * a * (3.0 * b + a) - b / a + 1.5;
                       },
                       [](double a, double b) {
                         return 2.0 * a * (3.0 * b + a) - b / a + 1.5;
                       }},
            BinaryCase{"rational",
                       [](const Fad2& a, const Fad2& b) {
                         return (a * a + b * b) / (a * b + 4.0);
                       },
                       [](double a, double b) {
                         return (a * a + b * b) / (a * b + 4.0);
                       }}),
        ::testing::Values(std::pair{1.3, 2.7}, std::pair{-0.8, 1.1},
                          std::pair{4.0, -2.5}, std::pair{0.3, 0.9})));

// ---- unary math functions ----

struct UnaryCase {
  const char* name;
  std::function<Fad2(const Fad2&)> fad;
  std::function<double(double)> val;
};

class SFadUnaryFn
    : public ::testing::TestWithParam<std::tuple<UnaryCase, double>> {};

TEST_P(SFadUnaryFn, MatchesFiniteDifferences) {
  const auto& [fn, xv] = GetParam();
  Fad2 x(xv, 0);
  const Fad2 r = fn.fad(x);
  EXPECT_NEAR(r.val(), fn.val(xv), 1e-12) << fn.name;
  const double h = 1e-6;
  const double fd = (fn.val(xv + h) - fn.val(xv - h)) / (2.0 * h);
  EXPECT_NEAR(r.dx(0), fd, 2e-5) << fn.name;
}

INSTANTIATE_TEST_SUITE_P(
    Fns, SFadUnaryFn,
    ::testing::Combine(
        ::testing::Values(
            UnaryCase{"sqrt", [](const Fad2& a) { return sqrt(a); },
                      [](double a) { return std::sqrt(a); }},
            UnaryCase{"exp", [](const Fad2& a) { return exp(a); },
                      [](double a) { return std::exp(a); }},
            UnaryCase{"log", [](const Fad2& a) { return log(a); },
                      [](double a) { return std::log(a); }},
            UnaryCase{"pow-1/3",
                      [](const Fad2& a) { return pow(a, -1.0 / 3.0); },
                      [](double a) { return std::pow(a, -1.0 / 3.0); }},
            UnaryCase{"fabs", [](const Fad2& a) { return fabs(a); },
                      [](double a) { return std::fabs(a); }}),
        ::testing::Values(0.4, 1.0, 2.7, 9.1)));

TEST(SFad, CompoundAssignments) {
  Fad2 x(2.0, 0), y(3.0, 1);
  Fad2 a = x;
  a += y;
  EXPECT_EQ(a.val(), 5.0);
  EXPECT_EQ(a.dx(0), 1.0);
  EXPECT_EQ(a.dx(1), 1.0);
  a *= x;  // a = (x+y)*x; da/dx = 2x + y
  EXPECT_EQ(a.val(), 10.0);
  EXPECT_NEAR(a.dx(0), 7.0, 1e-12);
  EXPECT_NEAR(a.dx(1), 2.0, 1e-12);
  a /= y;
  EXPECT_NEAR(a.val(), 10.0 / 3.0, 1e-12);
  a -= x;
  EXPECT_NEAR(a.val(), 10.0 / 3.0 - 2.0, 1e-12);
}

TEST(SFad, GlenViscosityDerivativeMatchesFD) {
  // mu(eps2) = 0.5 A^{-1/n} (eps2 + reg)^{(1-n)/(2n)} with eps2 = f(ux, uy).
  const double A = 1e-16, n = 3.0, reg = 1e-10;
  auto mu = [&](double ux, double uy) {
    const double eps2 = ux * ux + 0.25 * uy * uy;
    return 0.5 * std::pow(A, -1.0 / n) * std::pow(eps2 + reg, (1.0 - n) / (2.0 * n));
  };
  const double uxv = 3e-3, uyv = -1e-3;
  Fad2 ux(uxv, 0), uy(uyv, 1);
  const Fad2 eps2 = ux * ux + 0.25 * (uy * uy);
  const Fad2 m = (0.5 * std::pow(A, -1.0 / n)) * pow(eps2 + reg, (1.0 - n) / (2.0 * n));
  EXPECT_NEAR(m.val(), mu(uxv, uyv), std::abs(mu(uxv, uyv)) * 1e-12);
  EXPECT_NEAR(m.dx(0), fd_x(mu, uxv, uyv, 1e-9), std::abs(m.dx(0)) * 1e-4);
  EXPECT_NEAR(m.dx(1), fd_y(mu, uxv, uyv, 1e-9), std::abs(m.dx(1)) * 1e-4);
}

TEST(DFad, MatchesSFad) {
  Fad2 xs(1.7, 0), ys(2.3, 1);
  DFad<double> xd(2, 0, 1.7), yd(2, 1, 2.3);
  const Fad2 rs = 2.0 * xs * ys + xs / ys - sqrt(xs * ys);
  const DFad<double> rd =
      DFad<double>(2.0) * xd * yd + xd / yd - sqrt(xd * yd);
  EXPECT_NEAR(rs.val(), rd.val(), 1e-13);
  EXPECT_NEAR(rs.dx(0), rd.dx(0), 1e-13);
  EXPECT_NEAR(rs.dx(1), rd.dx(1), 1e-13);
}

TEST(DFad, MixedSizePromotion) {
  DFad<double> x(3, 1, 2.0);
  DFad<double> c(5.0);  // constant, no derivative storage
  const DFad<double> r = x * c + c;
  EXPECT_EQ(r.val(), 15.0);
  EXPECT_EQ(r.dx(1), 5.0);
  EXPECT_EQ(r.dx(0), 0.0);
}

TEST(ScalarTraits, Classification) {
  static_assert(!mali::ad::is_fad_v<double>);
  static_assert(mali::ad::is_fad_v<Fad2>);
  static_assert(mali::ad::ScalarTraits<Fad2>::num_deriv == 2);
  Fad2 x(3.5, 1);
  EXPECT_EQ(mali::ad::value_of(x), 3.5);
  EXPECT_EQ(mali::ad::value_of(4.25), 4.25);
  EXPECT_EQ(mali::ad::ScalarTraits<Fad2>::dx(x, 1), 1.0);
  EXPECT_EQ(mali::ad::ScalarTraits<double>::dx(3.0, 0), 0.0);
}

TEST(SFad, SixteenDerivativeJacobianWidth) {
  // The paper's configuration: 16 derivative components per element.
  using Fad16 = SFad<double, 16>;
  static_assert(sizeof(Fad16) == 17 * sizeof(double),
                "SFad<double,16> must be value + 16 derivatives");
  Fad16 x(2.0, 7);
  const Fad16 y = 3.0 * x * x;
  EXPECT_EQ(y.val(), 12.0);
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(y.dx(i), i == 7 ? 12.0 : 0.0);
  }
}
