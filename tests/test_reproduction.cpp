// Reproduction regression tests: pins the modeled results to the paper's
// published values within documented tolerances, so any change to the
// kernels, traces, or model calibration that drifts away from the paper
// fails loudly.  Tolerances follow EXPERIMENTS.md: optimized-kernel
// efficiencies tight (the model nails them), baselines and speedups looser
// (the paper's own tables disagree internally; see the consistency note).

#include <gtest/gtest.h>

#include <string>

#include "core/study.hpp"
#include "perf/portability_metric.hpp"

using namespace mali;
using core::KernelKind;
using physics::KernelVariant;

namespace {

class Reproduction : public ::testing::Test {
 protected:
  static const core::OptimizationStudy& study() {
    static const core::OptimizationStudy s([] {
      core::StudyConfig cfg;
      cfg.n_cells = 65536;  // quarter workset: ratios are scale-stable
                             // (bench_scaling), 10x faster in CI
      cfg.sim.scale = 0.25;
      return cfg;
    }());
    return s;
  }

  static gpusim::SimResult tuned(const gpusim::GpuArch& arch, KernelKind kind,
                                 KernelVariant v) {
    const pk::LaunchConfig launch =
        (arch.has_accum_vgprs && v == KernelVariant::kOptimized)
            ? pk::LaunchConfig{128, 2}
            : pk::LaunchConfig{};
    return study().simulate(arch, kind, v, launch);
  }
};

}  // namespace

TEST_F(Reproduction, Table3SpeedupsWithinBand) {
  struct Row {
    KernelKind kind;
    bool a100;
    double paper;
  } rows[] = {
      {KernelKind::kJacobian, true, 3.33},
      {KernelKind::kJacobian, false, 2.59},
      {KernelKind::kResidual, true, 2.18},
      {KernelKind::kResidual, false, 3.46},
  };
  for (const auto& r : rows) {
    const auto& arch = r.a100 ? study().a100() : study().mi250x_gcd();
    const auto base = tuned(arch, r.kind, KernelVariant::kBaseline);
    const auto opt = tuned(arch, r.kind, KernelVariant::kOptimized);
    const double speedup = base.time_s / opt.time_s;
    // Within 1.5x of the paper's factor, and inside its stated 2x-4x band
    // (with a little slack for simulation-scale noise).
    EXPECT_GT(speedup, r.paper / 1.5) << core::to_string(r.kind) << " " << arch.name;
    EXPECT_LT(speedup, r.paper * 1.5) << core::to_string(r.kind) << " " << arch.name;
    EXPECT_GT(speedup, 1.9);
    EXPECT_LT(speedup, 4.6);
  }
}

TEST_F(Reproduction, Fig3BandwidthFractions) {
  // Paper Fig. 3: baselines below ~40% of peak BW; optimized ~90% on A100
  // and ~60% on the GCD.
  for (const auto kind : {KernelKind::kJacobian, KernelKind::kResidual}) {
    const auto ba = tuned(study().a100(), kind, KernelVariant::kBaseline);
    EXPECT_NEAR(ba.achieved_bw / study().a100().hbm_bw_bytes_per_s, 0.40, 0.07);
    const auto oa = tuned(study().a100(), kind, KernelVariant::kOptimized);
    EXPECT_NEAR(oa.achieved_bw / study().a100().hbm_bw_bytes_per_s, 0.90, 0.05);
    const auto bg = tuned(study().mi250x_gcd(), kind, KernelVariant::kBaseline);
    EXPECT_NEAR(bg.achieved_bw / study().mi250x_gcd().hbm_bw_bytes_per_s, 0.40,
                0.07);
    const auto og = tuned(study().mi250x_gcd(), kind, KernelVariant::kOptimized);
    EXPECT_NEAR(og.achieved_bw / study().mi250x_gcd().hbm_bw_bytes_per_s, 0.60,
                0.05);
  }
}

TEST_F(Reproduction, Table4OptimizedEfficiencies) {
  struct Row {
    KernelKind kind;
    double paper_a100_edm, paper_gcd_edm;
    double paper_a100_et, paper_gcd_et;
  } rows[] = {
      {KernelKind::kJacobian, 0.84, 0.81, 0.79, 0.53},
      {KernelKind::kResidual, 1.00, 1.00, 0.88, 0.60},
  };
  for (const auto& r : rows) {
    const auto a = tuned(study().a100(), r.kind, KernelVariant::kOptimized);
    const auto g = tuned(study().mi250x_gcd(), r.kind, KernelVariant::kOptimized);
    EXPECT_NEAR(a.e_dm(), r.paper_a100_edm, 0.08) << core::to_string(r.kind);
    EXPECT_NEAR(g.e_dm(), r.paper_gcd_edm, 0.08) << core::to_string(r.kind);
    EXPECT_NEAR(a.e_time(), r.paper_a100_et, 0.08) << core::to_string(r.kind);
    EXPECT_NEAR(g.e_time(), r.paper_gcd_et, 0.08) << core::to_string(r.kind);
  }
}

TEST_F(Reproduction, Table2AllocationsAndSpeedups) {
  // The allocation pattern must be exact; the launch-bounds speedups within
  // ~0.15x of the paper's.
  struct Row {
    pk::LaunchConfig cfg;
    int jac_arch, jac_accum;
    double jac_speedup;  // vs default
  } rows[] = {
      {{128, 2}, 128, 128, 1.54},
      {{128, 4}, 128, 0, 1.00},
      {{256, 2}, 128, 128, 1.54},
      {{1024, 2}, 128, 0, 0.98},
  };
  const auto dflt = study().simulate(study().mi250x_gcd(),
                                     KernelKind::kJacobian,
                                     KernelVariant::kOptimized, {});
  EXPECT_EQ(dflt.launch.alloc.arch_vgprs, 128);
  EXPECT_EQ(dflt.launch.alloc.accum_vgprs, 0);
  for (const auto& r : rows) {
    const auto sim = study().simulate(study().mi250x_gcd(),
                                      KernelKind::kJacobian,
                                      KernelVariant::kOptimized, r.cfg);
    EXPECT_EQ(sim.launch.alloc.arch_vgprs, r.jac_arch);
    EXPECT_EQ(sim.launch.alloc.accum_vgprs, r.jac_accum);
    EXPECT_NEAR(dflt.time_s / sim.time_s, r.jac_speedup, 0.15);
  }
}

TEST_F(Reproduction, Table4PhiImprovements) {
  // "an increment between 20% and 50% on the performance portability
  // metric" — check every efficiency family improves by 20-55 points.
  for (const auto kind : {KernelKind::kJacobian, KernelKind::kResidual}) {
    for (const bool time_eff : {true, false}) {
      auto phi_of = [&](KernelVariant v) {
        const auto a = tuned(study().a100(), kind, v);
        const auto g = tuned(study().mi250x_gcd(), kind, v);
        return perf::phi(std::vector<double>{
            time_eff ? a.e_time() : a.e_dm(),
            time_eff ? g.e_time() : g.e_dm()});
      };
      const double delta =
          phi_of(KernelVariant::kOptimized) - phi_of(KernelVariant::kBaseline);
      EXPECT_GT(delta, 0.20) << core::to_string(kind)
                             << (time_eff ? " e_time" : " e_DM");
      EXPECT_LT(delta, 0.55) << core::to_string(kind)
                             << (time_eff ? " e_time" : " e_DM");
    }
  }
}

TEST_F(Reproduction, JacobianDominatesResidualTime) {
  // "the most expensive GPU operation in the solver": the Jacobian kernel
  // must cost several times the Residual on both parts, in both variants.
  for (const auto& arch : study().archs()) {
    for (const auto v : {KernelVariant::kBaseline, KernelVariant::kOptimized}) {
      const auto jac = tuned(arch, KernelKind::kJacobian, v);
      const auto res = tuned(arch, KernelKind::kResidual, v);
      EXPECT_GT(jac.time_s / res.time_s, 4.0)
          << arch.name << " " << physics::to_string(v);
    }
  }
}
