# Gnuplot script for the Fig. 3 rooflines.
# Usage:
#   ./build/bench/bench_fig3_roofline | awk '/# CSV/{f=1;next} f' > fig3.csv
#   gnuplot -e "csv='fig3.csv'" scripts/plot_fig3.gp
set datafile separator ','
set logscale xy
set xlabel 'Arithmetic intensity (FLOP/byte)'
set ylabel 'GFLOP/s'
set key left top
set grid
set terminal pngcairo size 1000,600
set output 'fig3_roofline.png'
# Roofline ceilings (peak BW diagonals and FP64 ceilings).
a100_bw = 1555.0   # GB/s -> GFLOP/s per (FLOP/byte)
a100_fp = 9700.0
gcd_bw  = 1600.0
gcd_fp  = 23900.0
roof_a100(x) = (x*a100_bw < a100_fp) ? x*a100_bw : a100_fp
roof_gcd(x)  = (x*gcd_bw  < gcd_fp)  ? x*gcd_bw  : gcd_fp
plot [0.05:100] \
  roof_a100(x) w l lw 2 lc rgb '#76b900' t 'A100 roofline', \
  roof_gcd(x)  w l lw 2 lc rgb '#ed1c24' t 'MI250X GCD roofline', \
  csv u 4:($1 eq 'NVIDIA A100' ? $5 : 1/0) w p pt 7 ps 1.5 lc rgb '#2a6099' t 'A100 kernels', \
  csv u 4:($1 ne 'NVIDIA A100' ? $5 : 1/0) w p pt 5 ps 1.5 lc rgb '#c9211e' t 'GCD kernels'
