#!/usr/bin/env python3
"""Validate BENCH_*.json records emitted by the bench binaries.

CI runs this over every bench artifact before uploading it, so a bench that
writes a malformed record (hand-rolled writer bugs: trailing commas, bare
NaN/Inf from a broken timer, truncated output on early exit) fails the job
instead of shipping an unreadable artifact.

Checks, per file:
  * the file parses as strict JSON (Python's json module rejects NaN and
    Infinity here via parse_constant);
  * the top level is an object with a non-empty string "bench" and an
    object "problem" -- the shared schema every bench writer follows;
  * when a "rows" key exists it is a non-empty array of objects;
  * bench-specific required keys (see REQUIRED) are present.

Usage: validate_bench_json.py FILE [FILE...]
Exits 0 when every file passes, 1 otherwise (all failures are reported).
"""

import json
import sys

# Bench name -> extra top-level keys that must be present.
REQUIRED = {
    "simd_batch": ["native_width", "rows", "gate", "gate_ok", "equiv_ok"],
    "forecast": ["rows"],
    "pipelined_krylov": ["rows"],
    "comm_guards": ["overhead_pct"],
    "ensemble": ["speedup"],
}


def _reject_constant(name):
    raise ValueError(f"non-finite JSON constant {name!r} is not allowed")


def validate(path):
    """Returns a list of problems found in `path` (empty means valid)."""
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f, parse_constant=_reject_constant)
    except (OSError, ValueError) as exc:
        return [f"failed to parse: {exc}"]

    if not isinstance(doc, dict):
        return ["top level is not a JSON object"]

    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        problems.append('missing or non-string "bench" key')
    if not isinstance(doc.get("problem"), dict):
        problems.append('missing or non-object "problem" key')

    if "rows" in doc:
        rows = doc["rows"]
        if not isinstance(rows, list) or not rows:
            problems.append('"rows" is not a non-empty array')
        elif not all(isinstance(r, dict) for r in rows):
            problems.append('"rows" contains a non-object entry')

    for key in REQUIRED.get(bench, []):
        if key not in doc:
            problems.append(f'bench "{bench}" is missing required key "{key}"')

    return problems


def main(argv):
    if len(argv) < 2:
        print(f"usage: {argv[0]} FILE [FILE...]", file=sys.stderr)
        return 1
    failed = False
    for path in argv[1:]:
        problems = validate(path)
        if problems:
            failed = True
            for p in problems:
                print(f"{path}: FAIL: {p}", file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
