#!/usr/bin/env bash
# Builds, tests, and regenerates every paper table/figure plus the CSV
# blocks the plot scripts consume.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build
mkdir -p out
for b in build/bench/*; do
  name=$(basename "$b")
  echo "== $name =="
  "$b" | tee "out/$name.txt"
done
awk '/# CSV/{f=1;next} f' out/bench_fig3_roofline.txt > out/fig3.csv || true
awk '/# CSV/{f=1;next} f' out/bench_fig5_time_oriented.txt > out/fig5.csv || true
echo "outputs in ./out"
