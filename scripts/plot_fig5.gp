# Gnuplot script for the Fig. 5 time-oriented model.
# Usage:
#   ./build/bench/bench_fig5_time_oriented | awk '/# CSV/{f=1;next} f' > fig5.csv
#   gnuplot -e "csv='fig5.csv'" scripts/plot_fig5.gp
set datafile separator ','
set logscale xy
set xlabel 'GPU HBM data movement (GBytes)'
set ylabel 'Time per invocation (ms)'
set key left top
set grid
set terminal pngcairo size 1000,600
set output 'fig5_time_oriented.png'
# Architectural bound: t(ms) = bytes(GB) / BW(GB/ms); both parts ~1.6 TB/s.
bw = 1.58  # GB/ms (common lower bound, as in the paper's Fig. 5)
plot [0.05:50] \
  x/bw w l lw 2 lc rgb '#888888' t 'architectural bound (peak HBM)', \
  csv u 4:5 w p pt 7 ps 1.5 lc variable t 'kernels (baseline & optimized)', \
  csv u 6:7 w p pt 4 ps 2 lc rgb '#000000' t 'application bound (min bytes)'
