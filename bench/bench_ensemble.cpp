// Ensemble engine throughput (DESIGN.md §15): members/hour for the same
// parameter sweep run three ways —
//
//   cold      one fresh StokesFOProblem + fresh AMG per member, Newton
//             from the analytic guess (what a naive per-member script pays),
//   amortized the EnsembleEngine: ONE shared problem, recycled AMG
//             hierarchy + Chebyshev bounds, neighbor warm starts,
//   cached    the engine rerun against its populated cache (every member
//             a hit, zero solves).
//
// The acceptance criteria this bench demonstrates and records:
//   * the amortized path is faster than the cold path (exit 2 otherwise),
//   * the cached rerun serves every member (no misses), and
//   * the members section of the results document is byte-identical
//     between the computing run and the cache-served rerun.
//
//   ./bench_ensemble [--dx-km=F] [--layers=N] [--years=F]
//                    [--out=BENCH_ensemble.json]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ensemble/engine.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "timestepping/forecast_driver.hpp"
#include "util/fp_format.hpp"
#include "util/json_writer.hpp"

using namespace mali;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

ensemble::EnsembleManifest make_manifest(double dx_km, int layers,
                                         double years) {
  ensemble::EnsembleManifest m;
  m.name = "bench-sweep";
  m.dx_km = dx_km;
  m.layers = layers;
  m.years = years;
  m.velocity_every = 1;
  // The engine's criterion is purely absolute, in the dome's momentum
  // residual units (||F|| starts ~2e16 and floors near 1e7): 1e9 is
  // genuinely reachable, so a cold start pays ~11 Newton iterations and a
  // warm start from a neighbor member stops after 2-3.  An unreachable
  // tolerance would run every member to max_iters and hide the warm-start
  // savings entirely.
  m.newton_max_iters = 40;
  m.newton_tol = 1e9;
  m.rank_groups = 1;
  m.glen_n = {3.0};
  m.glen_A = {0.8e-16, 1.0e-16, 1.2e-16};
  m.friction_scale = {0.85, 1.0, 1.15};
  m.forcing = {"constant"};
  return m;
}

/// The naive per-member loop: everything rebuilt from scratch, every time.
double run_cold(const ensemble::EnsembleManifest& m) {
  const auto members = ensemble::expand_members(m);
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& p : members) {
    physics::StokesFOConfig pcfg;
    pcfg.dx_m = m.dx_km * 1e3;
    pcfg.n_layers = m.layers;
    physics::StokesFOProblem problem(pcfg);
    physics::PhysicalConstants c = problem.config().constants;
    c.glen_n = p.glen_n;
    c.glen_A = p.glen_A;
    problem.set_constants(c);
    problem.set_basal_friction_scale(p.friction_scale);

    timestepping::ForecastConfig fcfg;
    fcfg.years = m.years;
    fcfg.velocity_every = m.velocity_every;
    fcfg.forcing = p.forcing;
    fcfg.thermal_enabled = false;
    fcfg.newton.max_iters = m.newton_max_iters;
    fcfg.newton.abs_tol = m.newton_tol;
    fcfg.newton.rel_tol = 0.0;  // mirror the engine's absolute criterion
    // A fresh AMG per member, like the engine's but never recycled.
    fcfg.make_precond = [](const physics::StokesFOProblem& prob) {
      linalg::AmgConfig acfg;
      acfg.smoother = linalg::AmgSmoother::kChebyshev;
      return std::unique_ptr<linalg::Preconditioner>(
          std::make_unique<linalg::SemicoarseningAmg>(prob.extrusion_info(),
                                                      acfg));
    };
    timestepping::ForecastDriver driver(problem, fcfg);
    (void)driver.run();
  }
  return seconds_since(t0);
}

}  // namespace

int main(int argc, char** argv) {
  double dx_km = 220.0;
  int layers = 3;
  double years = 0.5;
  std::string out_path = "BENCH_ensemble.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dx-km=", 8) == 0) dx_km = std::atof(argv[i] + 8);
    if (std::strncmp(argv[i], "--layers=", 9) == 0) layers = std::atoi(argv[i] + 9);
    if (std::strncmp(argv[i], "--years=", 8) == 0) years = std::atof(argv[i] + 8);
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  const ensemble::EnsembleManifest manifest =
      make_manifest(dx_km, layers, years);
  const std::size_t n = manifest.n_members();
  std::printf("ensemble bench: dome dx=%.0f km, %d layers, %.2f yr horizon, "
              "%zu members\n\n",
              dx_km, layers, years, n);

  // ---- cold: fresh problem + fresh AMG per member ----
  const double cold_s = run_cold(manifest);
  std::printf("%-10s %9.3f s  (%0.1f members/hr)\n", "cold", cold_s,
              cold_s > 0.0 ? 3600.0 * n / cold_s : 0.0);

  // ---- amortized: the engine (shared problem, recycled AMG, warm starts)
  ensemble::EnsembleConfig ecfg;
  ecfg.use_cache = true;  // populates the cache the rerun below reads
  ensemble::EnsembleEngine engine(manifest, ecfg);
  const auto t1 = std::chrono::steady_clock::now();
  const auto warm_out = engine.run();
  const double warm_s = seconds_since(t1);
  std::printf("%-10s %9.3f s  (%0.1f members/hr)  %zu warm start(s), AMG "
              "%zu build(s) + %zu reuse(s)\n",
              "amortized", warm_s, warm_s > 0.0 ? 3600.0 * n / warm_s : 0.0,
              warm_out.stats.warm_starts, warm_out.stats.amg_builds,
              warm_out.stats.amg_reuses);

  // ---- cached: same engine, same manifest — every member a hit ----
  const auto t2 = std::chrono::steady_clock::now();
  const auto cached_out = engine.run();
  const double cached_s = seconds_since(t2);
  std::printf("%-10s %9.3f s  (%zu hit(s), %zu miss(es))\n", "cached",
              cached_s, cached_out.stats.cache_hits,
              cached_out.stats.cache_misses);

  const double speedup = warm_s > 0.0 ? cold_s / warm_s : 0.0;
  const std::string warm_members =
      ensemble::EnsembleEngine::members_json(warm_out);
  const std::string cached_members =
      ensemble::EnsembleEngine::members_json(cached_out);
  const bool warm_faster = warm_s < cold_s;
  const bool all_cached = cached_out.stats.cache_misses == 0;
  const bool bit_identical = warm_members == cached_members;

  std::printf("\namortized speedup vs cold:     %.2fx  %s\n", speedup,
              warm_faster ? "PASS" : "FAIL");
  std::printf("cached rerun all hits:         %s\n",
              all_cached ? "PASS" : "FAIL");
  std::printf("members section bit-identical: %s\n",
              bit_identical ? "PASS" : "FAIL");

  // JSON record for CI artifact upload and the repo-root snapshot.  Fixed
  // key order, doubles shortest-round-trip (never truncated).
  util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("ensemble");
  w.key("problem").begin_object();
  w.key("dx_km").value(dx_km);
  w.key("layers").value(layers);
  w.key("years").value(years);
  w.key("members").value(n);
  w.end_object();
  w.key("cold_s").value(cold_s);
  w.key("amortized_s").value(warm_s);
  w.key("cached_s").value(cached_s);
  w.key("speedup").value(speedup);
  w.key("members_per_hour_cold").value(cold_s > 0.0 ? 3600.0 * n / cold_s
                                                    : 0.0);
  w.key("members_per_hour_amortized")
      .value(warm_s > 0.0 ? 3600.0 * n / warm_s : 0.0);
  w.key("warm_starts").value(warm_out.stats.warm_starts);
  w.key("amg_builds").value(warm_out.stats.amg_builds);
  w.key("amg_reuses").value(warm_out.stats.amg_reuses);
  w.key("cached_rerun_hits").value(cached_out.stats.cache_hits);
  w.key("cached_rerun_misses").value(cached_out.stats.cache_misses);
  w.key("warm_faster_than_cold").value(warm_faster);
  w.key("cached_all_hits").value(all_cached);
  w.key("members_bit_identical").value(bit_identical);
  w.end_object();
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(w.str().c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "could not open %s for writing\n", out_path.c_str());
    return 1;
  }
  return (warm_faster && all_cached && bit_identical) ? 0 : 2;
}
