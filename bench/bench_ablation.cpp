// Ablation study (extension beyond the paper): applies each of the three
// optimizations — loop optimizations, loop fusion, local accumulation — in
// isolation and models the resulting time and HBM traffic on both GPUs.
// Quantifies DESIGN.md's claim that local accumulation carries most of the
// data-movement win while loop fusion/loop optimizations recover the
// instruction-stream efficiency.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "perf/report.hpp"

using namespace mali;

int main(int argc, char** argv) {
  const core::OptimizationStudy study(bench::study_config(argc, argv));

  std::printf(
      "ABLATION — each optimization in isolation (modeled GPUs, %zu cells)\n\n",
      study.config().n_cells);

  const physics::KernelVariant variants[] = {
      physics::KernelVariant::kBaseline,
      physics::KernelVariant::kLoopOptOnly,
      physics::KernelVariant::kFusedOnly,
      physics::KernelVariant::kLocalAccumOnly,
      physics::KernelVariant::kOptimized,
  };

  for (const auto& arch : study.archs()) {
    std::printf("%s:\n", arch.name.c_str());
    perf::Table t({"Kernel", "Variant", "time (ms)", "GB moved", "e_DM",
                   "speedup vs baseline"});
    for (const auto kind :
         {core::KernelKind::kJacobian, core::KernelKind::kResidual}) {
      double base_time = 0.0;
      for (const auto v : variants) {
        const auto sim = study.simulate(arch, kind, v);
        if (v == physics::KernelVariant::kBaseline) base_time = sim.time_s;
        t.add_row({core::to_string(kind), physics::to_string(v),
                   perf::fmt(sim.time_s * 1e3, 4),
                   perf::fmt(sim.hbm_bytes / 1e9, 4),
                   perf::fmt_pct(sim.e_dm()),
                   perf::fmt_speedup(base_time / sim.time_s)});
      }
    }
    t.print(std::cout);
    std::printf("\n");
  }

  std::printf(
      "Reading: local accumulation alone removes the redundant global\n"
      "read-modify-write traffic (e_DM jumps); fusion alone halves the\n"
      "accumulation sweeps; loop optimizations alone mainly help the\n"
      "instruction stream.  All three compose into the optimized kernel.\n");
  return 0;
}
