// CPU wall-clock benchmarks of the actual StokesFOResid kernel variants
// (google-benchmark).  The paper's optimizations are GPU-targeted, but the
// same restructuring — hoisted branches, compile-time trip counts, fused
// loops, register-resident accumulators — also pays off on CPUs; these
// numbers are the corroborating *measured* (not modeled) evidence.
//
// Workset: synthetic Antarctica at 32 km / 10 layers (~30K hexahedra).

#include <benchmark/benchmark.h>

#include <memory>

#include "physics/stokes_fo_problem.hpp"

using namespace mali;
using physics::JacobianEval;
using physics::KernelVariant;
using physics::ResidualEval;

namespace {

physics::StokesFOProblem& shared_problem() {
  static auto problem = [] {
    physics::StokesFOConfig cfg;
    cfg.dx_m = 32.0e3;
    cfg.n_layers = 10;
    auto p = std::make_unique<physics::StokesFOProblem>(cfg);
    const auto U = p->analytic_initial_guess();
    p->evaluate_fields<ResidualEval>(U);
    p->evaluate_fields<JacobianEval>(U);
    return p;
  }();
  return *problem;
}

template <class EvalT>
void bench_variant(benchmark::State& state, KernelVariant v) {
  auto& p = shared_problem();
  for (auto _ : state) {
    p.run_resid_kernel<EvalT>(v);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(p.workset().n_cells));
  state.counters["cells"] = static_cast<double>(p.workset().n_cells);
}

}  // namespace

// The pk::Threads backend executes on pool workers, so report wall time and
// bound the iteration counts to keep the suite's runtime predictable.
#define MALI_KERNEL_BENCH(eval, variant, iters)                        \
  static void BM_##eval##_##variant(benchmark::State& state) {         \
    bench_variant<physics::eval>(state, KernelVariant::k##variant);    \
  }                                                                    \
  BENCHMARK(BM_##eval##_##variant)                                     \
      ->Unit(benchmark::kMillisecond)                                  \
      ->UseRealTime()                                                  \
      ->Iterations(iters)

MALI_KERNEL_BENCH(ResidualEval, Baseline, 20);
MALI_KERNEL_BENCH(ResidualEval, LoopOptOnly, 20);
MALI_KERNEL_BENCH(ResidualEval, FusedOnly, 20);
MALI_KERNEL_BENCH(ResidualEval, LocalAccumOnly, 20);
MALI_KERNEL_BENCH(ResidualEval, Optimized, 20);

MALI_KERNEL_BENCH(JacobianEval, Baseline, 5);
MALI_KERNEL_BENCH(JacobianEval, LoopOptOnly, 5);
MALI_KERNEL_BENCH(JacobianEval, FusedOnly, 5);
MALI_KERNEL_BENCH(JacobianEval, LocalAccumOnly, 5);
MALI_KERNEL_BENCH(JacobianEval, Optimized, 5);
