// Scatter-mode comparison: serial vs colored vs atomic element→global
// scatter of the StokesFO residual and Jacobian on a 16 km-style workset.
//
// The paper's optimized kernels leave the assembly bottlenecked by a serial
// scatter epilogue on many-core hosts; the colored mode parallelizes it with
// a conflict-free cell coloring (no atomics), the atomic mode with lock-free
// adds.  This bench isolates the scatter phase (fields staged once, scatter
// repeated) and also reports the end-to-end per-phase assembly breakdown.
//
//   bench_scatter [--dx-km F] [--layers N] [--reps N]
//
// Thread count follows MALI_NUM_THREADS (default: hardware concurrency).

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "perf/phase_report.hpp"
#include "perf/report.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "portability/thread_pool.hpp"
#include "portability/timer.hpp"

using namespace mali;
using physics::ScatterMode;

namespace {

double arg_num(int argc, char** argv, const std::string& key, double dflt) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (key == argv[i]) return std::atof(argv[i + 1]);
  }
  return dflt;
}

}  // namespace

int main(int argc, char** argv) {
  physics::StokesFOConfig cfg;
  // Default: a reduced version of the paper's 16 km / 20-layer Antarctica
  // workset that still stresses the scatter (use --dx-km 16 --layers 20 for
  // the full thing on a large host).
  cfg.dx_m = arg_num(argc, argv, "--dx-km", 64.0) * 1e3;
  cfg.n_layers = static_cast<int>(arg_num(argc, argv, "--layers", 10));
  const int reps = static_cast<int>(arg_num(argc, argv, "--reps", 5));

  physics::StokesFOProblem problem(cfg);
  const auto U = problem.analytic_initial_guess();
  const std::size_t threads = pk::ThreadPool::instance().size();
  std::printf(
      "Scatter-mode comparison — %zu cells, %zu dofs, %d colors, %zu "
      "threads, %d reps\n\n",
      problem.mesh().n_cells(), problem.n_dofs(),
      problem.workset_coloring(0).n_colors, threads, reps);

  struct Row {
    ScatterMode mode;
    double resid_s = 0.0;
    double jac_s = 0.0;
  };
  Row rows[] = {{ScatterMode::kSerial}, {ScatterMode::kColored},
                {ScatterMode::kAtomic}};

  std::vector<double> F;
  auto J = problem.create_matrix();
  for (auto& row : rows) {
    problem.set_scatter_mode(row.mode);
    // Warm-up (allocates field buffers, faults pages).
    problem.residual(U, F);
    problem.residual_and_jacobian(U, F, J);
    problem.reset_phase_timers();
    for (int r = 0; r < reps; ++r) problem.residual(U, F);
    const double resid_scatter = problem.phase_timers().total("scatter");
    problem.reset_phase_timers();
    for (int r = 0; r < reps; ++r) problem.residual_and_jacobian(U, F, J);
    const double jac_scatter = problem.phase_timers().total("scatter");
    row.resid_s = resid_scatter / reps;
    row.jac_s = jac_scatter / reps;
  }

  const double base_r = rows[0].resid_s;
  const double base_j = rows[0].jac_s;
  perf::Table t({"Scatter mode", "residual scatter (ms)", "speedup",
                 "jacobian scatter (ms)", "speedup"});
  for (const auto& row : rows) {
    t.add_row({to_string(row.mode), perf::fmt(row.resid_s * 1e3, 4),
               perf::fmt_speedup(base_r / row.resid_s),
               perf::fmt(row.jac_s * 1e3, 4),
               perf::fmt_speedup(base_j / row.jac_s)});
  }
  t.print(std::cout);

  // End-to-end per-phase breakdown for the colored default.
  problem.set_scatter_mode(ScatterMode::kColored);
  problem.reset_phase_timers();
  for (int r = 0; r < reps; ++r) problem.residual_and_jacobian(U, F, J);
  std::printf("\nPer-phase Jacobian assembly breakdown (colored, %d reps):\n",
              reps);
  perf::print_phase_report(std::cout, problem.phase_timers());

  std::printf(
      "\nReading: with >=4 threads the colored scatter should beat the\n"
      "serial epilogue on both evaluations; the atomic mode trades the\n"
      "coloring's extra kernel launches for CAS traffic on shared rows.\n"
      "(On a single hardware thread all three degrade to ~serial speed.)\n");
  return 0;
}
