// Extension: workset-size sweep on the GPU model.  Albany assembles in
// worksets to bound device memory; each workset is one kernel launch, so
// shrinking the workset trades memory for launch-latency overhead and lost
// bandwidth-saturating concurrency.  This bench models the optimized
// Jacobian's total time per assembly as a function of workset size.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "perf/report.hpp"

using namespace mali;

int main(int argc, char** argv) {
  const auto base_cfg = bench::study_config(argc, argv);
  const std::size_t total_cells = base_cfg.n_cells;

  std::printf(
      "EXTENSION — workset size vs modeled assembly time (optimized "
      "Jacobian, %zu total cells)\n\n",
      total_cells);

  perf::Table t({"Machine", "workset", "launches", "per-launch (ms)",
                 "total (ms)", "overhead vs single", "SFad fields (MB)"});

  const std::size_t ws_sizes[] = {2048, 8192, 32768, 131072, total_cells};
  for (const auto* arch_sel : {"a100", "gcd"}) {
    // Reference: one launch covering everything.
    double single_total = 0.0;
    {
      core::StudyConfig cfg = base_cfg;
      const core::OptimizationStudy study(cfg);
      const auto& arch = std::string(arch_sel) == "a100" ? study.a100()
                                                         : study.mi250x_gcd();
      const pk::LaunchConfig launch = arch.has_accum_vgprs
                                          ? pk::LaunchConfig{128, 2}
                                          : pk::LaunchConfig{};
      single_total = study
                         .simulate(arch, core::KernelKind::kJacobian,
                                   physics::KernelVariant::kOptimized, launch)
                         .time_s;
    }
    for (const std::size_t ws : ws_sizes) {
      core::StudyConfig cfg = base_cfg;
      cfg.n_cells = ws;
      const core::OptimizationStudy study(cfg);
      const auto& arch = std::string(arch_sel) == "a100" ? study.a100()
                                                         : study.mi250x_gcd();
      const pk::LaunchConfig launch = arch.has_accum_vgprs
                                          ? pk::LaunchConfig{128, 2}
                                          : pk::LaunchConfig{};
      const auto sim = study.simulate(arch, core::KernelKind::kJacobian,
                                      physics::KernelVariant::kOptimized,
                                      launch);
      const std::size_t launches = (total_cells + ws - 1) / ws;
      const double total = sim.time_s * static_cast<double>(launches);
      // SFad field memory: the five ScalarT arrays at 17 doubles each.
      const double field_mb =
          static_cast<double>(ws) * (16 + 48 + 8 + 16 + 16) * 17.0 * 8.0 / 1e6;
      t.add_row({arch.name, std::to_string(ws), std::to_string(launches),
                 perf::fmt(sim.time_s * 1e3, 4), perf::fmt(total * 1e3, 4),
                 perf::fmt_pct(total / single_total - 1.0),
                 perf::fmt(field_mb, 4)});
    }
  }
  t.print(std::cout);

  std::printf(
      "\nReading: worksets of ~32K cells already keep the launch overhead\n"
      "in the low percents while cutting the Jacobian's SFad field memory\n"
      "by an order of magnitude — the trade Albany's workset design makes.\n"
      "(Single-workset rows print 0%% overhead by construction; smaller\n"
      "worksets pay kernel latency plus reduced tail concurrency.)\n");
  return 0;
}
