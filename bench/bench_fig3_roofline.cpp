// Reproduces Fig. 3: roofline placement of the baseline and optimized
// Jacobian/Residual kernels on the modeled A100 (left) and MI250X GCD
// (right) — arithmetic intensity, GFLOP/s, and the fraction of the memory-
// bandwidth roof each point attains.  Also emits a CSV block for plotting.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "perf/report.hpp"
#include "perf/roofline.hpp"

using namespace mali;

int main(int argc, char** argv) {
  const core::OptimizationStudy study(bench::study_config(argc, argv));

  std::printf(
      "FIG. 3 — roofline for baseline/optimized Jacobian and Residual\n"
      "(modeled GPUs, %zu cells)\n\n",
      study.config().n_cells);

  for (const auto& arch : study.archs()) {
    const perf::Roofline roof{arch.name, arch.fp64_flops,
                              arch.hbm_bw_bytes_per_s};
    std::printf("%s: peak %.1f TFLOP/s (FP64), %.2f TB/s HBM, ridge at "
                "AI=%.1f FLOP/byte\n",
                arch.name.c_str(), arch.fp64_flops / 1e12,
                arch.hbm_bw_bytes_per_s / 1e12, roof.ridge_point());
    perf::Table t({"Kernel", "Variant", "AI (FLOP/B)", "GFLOP/s",
                   "% of roofline", "% of peak BW", "memory-bound?"});
    for (const auto kind :
         {core::KernelKind::kJacobian, core::KernelKind::kResidual}) {
      for (const auto v : {physics::KernelVariant::kBaseline,
                           physics::KernelVariant::kOptimized}) {
        const pk::LaunchConfig launch =
            (arch.has_accum_vgprs && v == physics::KernelVariant::kOptimized)
                ? pk::LaunchConfig{128, 2}
                : pk::LaunchConfig{};
        const auto sim = study.simulate(arch, kind, v, launch);
        perf::RooflinePoint p{std::string(core::to_string(kind)) + "/" +
                                  physics::to_string(v),
                              sim.arithmetic_intensity, sim.gflops_per_s};
        t.add_row({core::to_string(kind), physics::to_string(v),
                   perf::fmt(p.ai, 3), perf::fmt(p.gflops, 4),
                   perf::fmt_pct(p.fraction_of_roof(roof)),
                   perf::fmt_pct(p.fraction_of_bw(roof)),
                   roof.memory_bound(p.ai) ? "yes" : "no"});
      }
    }
    t.print(std::cout);
    std::printf("\n");
  }

  // CSV for external plotting: machine,kernel,variant,ai,gflops.
  std::printf("# CSV\nmachine,kernel,variant,ai_flop_per_byte,gflops\n");
  for (const auto& c : study.run_standard_cases()) {
    std::printf("%s,%s,%s,%.4f,%.2f\n", c.arch.c_str(), to_string(c.kind),
                physics::to_string(c.variant), c.sim.arithmetic_intensity,
                c.sim.gflops_per_s);
  }

  std::printf(
      "\nPaper's takeaways, checked against the table above:\n"
      "  * baseline Jacobian sits below ~40%% of peak memory bandwidth on\n"
      "    both GPUs;\n"
      "  * optimizations raise arithmetic intensity (less data moved) and\n"
      "    push the A100 to ~90%% and the GCD to ~60%% of peak bandwidth;\n"
      "  * every kernel is memory-bound (AI far left of the ridge point).\n");
  return 0;
}
