// Guard-decorator overhead: the NaN/Inf validation the resilience layer
// wraps around every residual evaluation and operator apply is a pure
// streaming scan of the output vector, so it must stay a small fraction of
// the evaluation it guards.  This bench times raw vs guarded residual
// evaluations and Jacobian-operator applies on the FO Stokes problem and
// reports the relative overhead.
//
//   ./bench_resilience [--dx-km=F] [--layers=N] [--reps=N]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "nonlinear/newton.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "resilience/guards.hpp"

using namespace mali;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  double dx_km = 128.0;
  int layers = 6, reps = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dx-km=", 8) == 0) dx_km = std::atof(argv[i] + 8);
    if (std::strncmp(argv[i], "--layers=", 9) == 0) layers = std::atoi(argv[i] + 9);
    if (std::strncmp(argv[i], "--reps=", 7) == 0) reps = std::atoi(argv[i] + 7);
  }

  physics::StokesFOConfig cfg;
  cfg.dx_m = dx_km * 1e3;
  cfg.n_layers = layers;
  physics::StokesFOProblem problem(cfg);
  resilience::GuardedProblem guarded(problem);

  const std::size_t n = problem.n_dofs();
  std::vector<double> U = problem.analytic_initial_guess();
  std::vector<double> F(n), x(n, 1.0), y(n);
  std::printf("guard overhead on %zu dofs (%d reps each)\n\n", n, reps);
  std::printf("%-28s %12s %12s %9s\n", "phase", "raw [ms]", "guarded [ms]",
              "overhead");

  // Residual evaluations.
  problem.residual(U, F);  // warm up
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) problem.residual(U, F);
  const double t_raw_res = seconds_since(t0) / reps;
  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) guarded.residual(U, F);
  const double t_grd_res = seconds_since(t0) / reps;
  std::printf("%-28s %12.3f %12.3f %+8.2f%%\n", "residual", t_raw_res * 1e3,
              t_grd_res * 1e3, 100.0 * (t_grd_res / t_raw_res - 1.0));

  // Jacobian-operator applies (the matrix-free GMRES inner loop).
  auto op_raw = problem.jacobian_operator(U);
  auto op_grd = guarded.jacobian_operator(U);
  op_raw->apply(x, y);  // warm up
  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) op_raw->apply(x, y);
  const double t_raw_op = seconds_since(t0) / reps;
  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) op_grd->apply(x, y);
  const double t_grd_op = seconds_since(t0) / reps;
  std::printf("%-28s %12.3f %12.3f %+8.2f%%\n", "jacobian-operator apply",
              t_raw_op * 1e3, t_grd_op * 1e3,
              100.0 * (t_grd_op / t_raw_op - 1.0));

  // Assembled residual+Jacobian (the heaviest guarded phase: the guard
  // additionally scans the nnz values array).
  auto J = problem.create_matrix();
  J.set_zero();
  problem.residual_and_jacobian(U, F, J);  // warm up
  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    J.set_zero();
    problem.residual_and_jacobian(U, F, J);
  }
  const double t_raw_jac = seconds_since(t0) / reps;
  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    J.set_zero();
    guarded.residual_and_jacobian(U, F, J);
  }
  const double t_grd_jac = seconds_since(t0) / reps;
  std::printf("%-28s %12.3f %12.3f %+8.2f%%\n", "residual+jacobian",
              t_raw_jac * 1e3, t_grd_jac * 1e3,
              100.0 * (t_grd_jac / t_raw_jac - 1.0));
  return 0;
}
