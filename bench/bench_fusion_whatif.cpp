// Extension (toward the paper's future work): cross-kernel fusion of the
// evaluator chain.  The paper's optimizations restructure the StokesFOResid
// kernel internally; the next step is fusing VelocityGradient, ViscosityFO,
// BodyForce and StokesFOResid into one kernel so the intermediate fields
// (Ugrad, mu, force — 17-word SFad arrays for the Jacobian!) never touch
// HBM.  This bench models the staged pipeline vs the fused mega-kernel.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/chain_traces.hpp"
#include "perf/report.hpp"

using namespace mali;

int main(int argc, char** argv) {
  const auto cfg = bench::study_config(argc, argv);
  const core::OptimizationStudy study(cfg);
  const gpusim::ExecModel model(cfg.sim);

  std::printf(
      "FUSION WHAT-IF — staged evaluator chain vs fused mega-kernel\n"
      "(%zu cells; Jacobian chain carries SFad<double,16> intermediates)\n\n",
      cfg.n_cells);

  perf::Table t({"Machine", "Kernel", "Pipeline", "GB moved", "time (ms)",
                 "chain speedup"});
  for (const auto& arch : study.archs()) {
    const pk::LaunchConfig launch = arch.has_accum_vgprs
                                        ? pk::LaunchConfig{128, 2}
                                        : pk::LaunchConfig{};
    for (const auto kind :
         {core::KernelKind::kJacobian, core::KernelKind::kResidual}) {
      const auto stages = core::record_chain_stages(kind, cfg.n_cells);
      double staged_time = 0.0, staged_bytes = 0.0;
      for (const auto& st : stages) {
        const auto sim =
            model.simulate(arch, st.trace, st.info, cfg.n_cells, launch);
        staged_time += sim.time_s;
        staged_bytes += static_cast<double>(sim.hbm_bytes);
      }
      const auto fused = core::record_fused_chain(kind, cfg.n_cells);
      const auto fsim =
          model.simulate(arch, fused.trace, fused.info, cfg.n_cells, launch);

      t.add_row({arch.name, core::to_string(kind), "staged (4 kernels)",
                 perf::fmt(staged_bytes / 1e9, 4),
                 perf::fmt(staged_time * 1e3, 4), "1.00x"});
      t.add_row({arch.name, core::to_string(kind), "fused (1 kernel)",
                 perf::fmt(fsim.hbm_bytes / 1e9, 4),
                 perf::fmt(fsim.time_s * 1e3, 4),
                 perf::fmt_speedup(staged_time / fsim.time_s)});
    }
  }
  t.print(std::cout);

  std::printf(
      "\nReading: for the Jacobian the intermediate SFad fields dominate the\n"
      "staged chain's traffic (Ugrad alone is written and re-read at 136 B\n"
      "per entry); fusing the chain removes them entirely at the cost of\n"
      "higher register pressure — the quantitative case for the paper's\n"
      "\"continue optimizing the velocity solver\" future work.\n");
  return 0;
}
