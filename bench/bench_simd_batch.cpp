// SIMD element batching of the fused kernels: scalar FusedStokesChain
// (streams the precomputed gradBF/wGradBF/wBF arrays, ~496 doubles/cell)
// vs FusedStokesChainBatched<W> (recomputes geometry in pack registers
// from nodal data, ~72 doubles/cell), plus the matrix-free tangent pair
// StokesFOTangent vs StokesFOTangentBatched<W>.  Reports per-element time
// and the achieved bandwidth against the perf:: byte models, and GATES on
// the fused-residual speedup: the native-width batched kernel must be
// >= 1.5x the scalar chain (the tentpole claim of the SIMD PR).
//
//   ./bench_simd_batch [--dx-km=F] [--layers=N] [--reps=N]
//                      [--gate=F] [--out=BENCH_simd.json]
//
// Both arms run on the serial execution space: the gate measures the
// per-core kernel speedup, not thread scaling.  Exit status: 0 when the
// gate holds, 2 when it does not, 1 on I/O failure.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "perf/data_movement.hpp"
#include "physics/fused_chain.hpp"
#include "physics/fused_chain_batched.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "physics/stokes_jacobian_apply.hpp"
#include "physics/stokes_jacobian_apply_batched.hpp"
#include "portability/simd.hpp"
#include "portability/timer.hpp"
#include "util/json_writer.hpp"

using namespace mali;

namespace {

struct Arm {
  std::string kernel;
  int width = 1;
  double ns_per_cell = 0.0;
  double gbps = 0.0;
  double speedup = 1.0;   // vs the scalar arm of the same kernel
  double max_rel = 0.0;   // max relative dof difference vs the scalar arm
};

double max_rel_diff(const pk::View<double, 3>& a, const pk::View<double, 3>& b,
                    std::size_t C, int N) {
  double m = 0.0;
  for (std::size_t c = 0; c < C; ++c) {
    for (int k = 0; k < N; ++k) {
      for (int comp = 0; comp < 2; ++comp) {
        const double ref = a(c, k, comp);
        const double d = std::abs(b(c, k, comp) - ref);
        m = std::max(m, d / std::max(1.0, std::abs(ref)));
      }
    }
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  double dx_km = 32.0, gate = 1.5;
  int layers = 10, reps = 20;
  std::string out_path = "BENCH_simd.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dx-km=", 8) == 0) dx_km = std::atof(argv[i] + 8);
    if (std::strncmp(argv[i], "--layers=", 9) == 0) layers = std::atoi(argv[i] + 9);
    if (std::strncmp(argv[i], "--reps=", 7) == 0) reps = std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--gate=", 7) == 0) gate = std::atof(argv[i] + 7);
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  physics::StokesFOConfig cfg;
  cfg.dx_m = dx_km * 1e3;
  cfg.n_layers = layers;
  physics::StokesFOProblem problem(cfg);
  const auto& ws = problem.workset();
  const std::size_t C = ws.n_cells;
  const int N = ws.num_nodes;
  const int Q = ws.num_qps;
  const auto U = problem.analytic_initial_guess();
  std::printf("SIMD element batching — dx=%.0f km, %d layers: %zu cells "
              "(%zu padded), native width %d, best of %d reps\n\n",
              dx_km, layers, C, ws.n_cells_padded, pk::kSimdNativeWidth, reps);

  // Stage realistic inputs: gathers UNodal for the whole-mesh workset.
  auto& f = problem.evaluate_fields<physics::ResidualEval>(U);

  // ---- scalar fused residual (streams the precomputed FE arrays) ----
  physics::FusedStokesChain<double> scalar_chain;
  scalar_chain.UNodal = f.UNodal;
  scalar_chain.gradBF = ws.gradBF;
  scalar_chain.wGradBF = ws.wGradBF;
  scalar_chain.wBF = ws.wBF;
  scalar_chain.force_passive = problem.force_passive();
  scalar_chain.Residual = f.Residual;
  scalar_chain.glen_A = cfg.constants.glen_A;
  scalar_chain.glen_n = cfg.constants.glen_n;
  scalar_chain.eps_reg2 = cfg.constants.eps_reg2;
  scalar_chain.numNodes = static_cast<unsigned>(N);
  scalar_chain.numQPs = static_cast<unsigned>(Q);
  scalar_chain.prepare();

  pk::Timer timer;
  auto time_best = [&](auto&& run) {
    run();  // warm-up
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      timer.reset();
      run();
      best = std::min(best, timer.seconds());
    }
    return best;
  };

  const double t_scalar = time_best([&] {
    pk::parallel_for("FusedStokesChain", pk::RangePolicy<pk::Serial>(C),
                     scalar_chain);
  });
  pk::View<double, 3> res_scalar("res_scalar", ws.n_cells_padded,
                                 static_cast<std::size_t>(N), 2);
  for (std::size_t c = 0; c < C; ++c) {
    for (int k = 0; k < N; ++k) {
      res_scalar(c, k, 0) = f.Residual(c, k, 0);
      res_scalar(c, k, 1) = f.Residual(c, k, 1);
    }
  }

  // Streaming-chain byte model: the fused chain's actual array traffic.
  const std::vector<perf::ArrayAccessSpec> scalar_arrays = {
      {"UNodal", static_cast<std::size_t>(N) * 2, sizeof(double), false},
      {"gradBF", static_cast<std::size_t>(N * Q * 3), sizeof(double), false},
      {"wGradBF", static_cast<std::size_t>(N * Q * 3), sizeof(double), false},
      {"wBF", static_cast<std::size_t>(N * Q), sizeof(double), false},
      {"force", static_cast<std::size_t>(Q) * 2, sizeof(double), false},
      {"Residual", static_cast<std::size_t>(N) * 2, sizeof(double), true},
  };
  const double scalar_bytes =
      static_cast<double>(C * perf::min_bytes_per_cell(scalar_arrays));
  const double batched_bytes =
      static_cast<double>(perf::batched_fused_resid_min_bytes(
          C, static_cast<std::size_t>(N), static_cast<std::size_t>(Q)));

  std::vector<Arm> arms;
  arms.push_back({"fused residual (scalar)", 1, t_scalar / C * 1e9,
                  scalar_bytes / t_scalar / 1e9, 1.0, 0.0});

  // ---- batched fused residual, W in {2, 4, 8} ----
  double native_speedup = 0.0;
  auto run_batched_resid = [&]<int W>() {
    const std::size_t cnt_pad =
        (C + static_cast<std::size_t>(W) - 1) / W * static_cast<std::size_t>(W);
    physics::FusedStokesChainBatched<W> chain;
    chain.UNodal = f.UNodal;
    chain.coords = ws.coords;
    chain.ref_grad = problem.ref_grad();
    chain.ref_val = problem.ref_val();
    chain.qp_weight = problem.qp_weights();
    chain.force_passive = problem.force_passive();
    chain.Residual = f.Residual;
    chain.glen_A = cfg.constants.glen_A;
    chain.glen_n = cfg.constants.glen_n;
    chain.eps_reg2 = cfg.constants.eps_reg2;
    chain.numNodes = static_cast<unsigned>(N);
    chain.numQPs = static_cast<unsigned>(Q);
    chain.prepare();
    const double t = time_best([&] {
      pk::parallel_for("FusedStokesChainBatched",
                       pk::SimdRangePolicy<W, pk::Serial>(cnt_pad), chain);
    });
    Arm a;
    a.kernel = "fused residual (batched)";
    a.width = W;
    a.ns_per_cell = t / C * 1e9;
    a.gbps = batched_bytes / t / 1e9;
    a.speedup = t_scalar / t;
    a.max_rel = max_rel_diff(res_scalar, f.Residual, C, N);
    arms.push_back(a);
    if (W == pk::kSimdNativeWidth) native_speedup = a.speedup;
  };
  run_batched_resid.template operator()<2>();
  run_batched_resid.template operator()<4>();
  run_batched_resid.template operator()<8>();
  if (native_speedup == 0.0) native_speedup = arms.back().speedup;

  // ---- matrix-free tangent: scalar vs native-width batched ----
  const std::size_t n = problem.n_dofs();
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(0.1 * static_cast<double>(i + 1));
  }
  pk::View<double, 1> Uview("Uview", n);
  pk::View<double, 1> Xview("Xview", n);
  for (std::size_t i = 0; i < n; ++i) {
    Uview(i) = U[i];
    Xview(i) = x[i];
  }
  pk::View<double, 3> tan_out("tan_out", ws.n_cells_padded,
                              static_cast<std::size_t>(N), 2);

  physics::StokesFOTangent scalar_tan;
  scalar_tan.cell_nodes = ws.cell_nodes;
  scalar_tan.coords = ws.coords;
  scalar_tan.U = Uview;
  scalar_tan.X = Xview;
  scalar_tan.ref_grad = problem.ref_grad();
  scalar_tan.qp_weight = problem.qp_weights();
  scalar_tan.Tangent = tan_out;
  scalar_tan.glen_A = cfg.constants.glen_A;
  scalar_tan.glen_n = cfg.constants.glen_n;
  scalar_tan.eps_reg2 = cfg.constants.eps_reg2;
  scalar_tan.numNodes = N;
  scalar_tan.numQPs = Q;
  const double t_tan_scalar = time_best([&] {
    pk::parallel_for("StokesFOTangent", pk::RangePolicy<pk::Serial>(C),
                     scalar_tan);
  });
  pk::View<double, 3> tan_scalar("tan_scalar", ws.n_cells_padded,
                                 static_cast<std::size_t>(N), 2);
  for (std::size_t c = 0; c < C; ++c) {
    for (int k = 0; k < N; ++k) {
      tan_scalar(c, k, 0) = tan_out(c, k, 0);
      tan_scalar(c, k, 1) = tan_out(c, k, 1);
    }
  }
  // Both tangent arms read the same nodal data (the batched one changes the
  // flop schedule, not the traffic) — one shared byte model.
  perf::JacobianApplyModel jm;
  jm.n_cells = C;
  jm.num_nodes = static_cast<std::size_t>(N);
  jm.n_basal_faces = 0;
  const double tan_bytes = static_cast<double>(jm.matrix_free_stream_bytes());
  arms.push_back({"mf tangent (scalar)", 1, t_tan_scalar / C * 1e9,
                  tan_bytes / t_tan_scalar / 1e9, 1.0, 0.0});

  auto run_batched_tan = [&]<int W>() {
    const std::size_t cnt_pad =
        (C + static_cast<std::size_t>(W) - 1) / W * static_cast<std::size_t>(W);
    physics::StokesFOTangentBatched<W> tan;
    tan.cell_nodes = ws.cell_nodes;
    tan.coords = ws.coords;
    tan.U = Uview;
    tan.X = Xview;
    tan.ref_grad = problem.ref_grad();
    tan.qp_weight = problem.qp_weights();
    tan.Tangent = tan_out;
    tan.glen_A = cfg.constants.glen_A;
    tan.glen_n = cfg.constants.glen_n;
    tan.eps_reg2 = cfg.constants.eps_reg2;
    tan.numNodes = N;
    tan.numQPs = Q;
    tan.prepare();
    const double t = time_best([&] {
      pk::parallel_for("StokesFOTangentBatched",
                       pk::SimdRangePolicy<W, pk::Serial>(cnt_pad), tan);
    });
    Arm a;
    a.kernel = "mf tangent (batched)";
    a.width = W;
    a.ns_per_cell = t / C * 1e9;
    a.gbps = tan_bytes / t / 1e9;
    a.speedup = t_tan_scalar / t;
    a.max_rel = max_rel_diff(tan_scalar, tan_out, C, N);
    arms.push_back(a);
  };
  if (pk::kSimdNativeWidth == 8) {
    run_batched_tan.template operator()<8>();
  } else {
    run_batched_tan.template operator()<4>();
  }

  std::printf("%-26s %5s %12s %10s %9s %10s\n", "kernel", "W", "ns/cell",
              "GB/s", "speedup", "max rel");
  for (const auto& a : arms) {
    std::printf("%-26s %5d %12.1f %10.2f %8.2fx %10.1e\n", a.kernel.c_str(),
                a.width, a.ns_per_cell, a.gbps, a.speedup, a.max_rel);
  }

  const bool gate_ok = native_speedup >= gate;
  bool equiv_ok = true;
  for (const auto& a : arms) equiv_ok = equiv_ok && a.max_rel <= 1e-13;
  std::printf("\nfused residual, native W=%d: %.2fx (gate >= %.2fx): %s\n",
              pk::kSimdNativeWidth, native_speedup, gate,
              gate_ok ? "PASS" : "FAIL");
  std::printf("batched == scalar (<= 1e-13 rel):  %s\n",
              equiv_ok ? "PASS" : "FAIL");

  util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("simd_batch");
  w.key("problem").begin_object();
  w.key("dx_km").value(dx_km);
  w.key("layers").value(layers);
  w.key("cells").value(C);
  w.key("cells_padded").value(ws.n_cells_padded);
  w.end_object();
  w.key("native_width").value(pk::kSimdNativeWidth);
  w.key("reps").value(reps);
  w.key("rows").begin_array();
  for (const auto& a : arms) {
    w.begin_object();
    w.key("kernel").value(a.kernel);
    w.key("width").value(a.width);
    w.key("ns_per_cell").value(a.ns_per_cell);
    w.key("gbps").value(a.gbps);
    w.key("speedup").value(a.speedup);
    w.key("max_rel").value(a.max_rel);
    w.end_object();
  }
  w.end_array();
  w.key("gate").value(gate);
  w.key("native_speedup").value(native_speedup);
  w.key("gate_ok").value(gate_ok);
  w.key("equiv_ok").value(equiv_ok);
  w.end_object();
  if (std::FILE* fp = std::fopen(out_path.c_str(), "w")) {
    std::fputs(w.str().c_str(), fp);
    std::fputc('\n', fp);
    std::fclose(fp);
    std::printf("\nwrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "could not open %s for writing\n", out_path.c_str());
    return 1;
  }
  return (gate_ok && equiv_ok) ? 0 : 2;
}
