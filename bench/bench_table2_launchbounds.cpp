// Reproduces Table II: Kokkos LaunchBounds<MaxThreads,MinBlocks> sweep for
// the optimized Jacobian and Residual kernels on the modeled MI250X GCD —
// time per call, architectural/accumulation VGPR allocation, and speedup
// vs. the vendor-default configuration, with the paper's rocprof-measured
// values in brackets.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "perf/report.hpp"

using namespace mali;

int main(int argc, char** argv) {
  const core::OptimizationStudy study(bench::study_config(argc, argv));
  const auto& gcd = study.mi250x_gcd();

  std::printf(
      "TABLE II — LaunchBounds sweep on the modeled %s\n"
      "(optimized kernels, %zu cells; paper values in brackets)\n\n",
      gcd.name.c_str(), study.config().n_cells);

  for (const auto kind :
       {core::KernelKind::kJacobian, core::KernelKind::kResidual}) {
    const bool jac = kind == core::KernelKind::kJacobian;
    std::printf("%s kernel (default block size %d):\n", core::to_string(kind),
                jac ? 256 : 1024);
    perf::Table t({"<MaxThreads,MinBlocks>", "time (s)", "Arch. VGPRs",
                   "Accum. VGPRs", "speedup"});
    double default_time = 0.0;
    for (const auto& row : bench::kPaperTable2) {
      const pk::LaunchConfig launch{row.max_threads, row.min_blocks};
      const auto sim = study.simulate(
          gcd, kind, physics::KernelVariant::kOptimized, launch);
      if (launch.is_default()) default_time = sim.time_s;
      const double paper_time = jac ? row.jac_time : row.res_time;
      const int paper_arch = jac ? row.jac_arch : row.res_arch;
      const int paper_accum = jac ? row.jac_accum : row.res_accum;
      const double paper_default = jac ? bench::kPaperTable2[0].jac_time
                                       : bench::kPaperTable2[0].res_time;
      t.add_row(
          {row.config,
           perf::fmt_sci(sim.time_s) + "  [" + perf::fmt_sci(paper_time) + "]",
           std::to_string(sim.launch.alloc.arch_vgprs) + "  [" +
               std::to_string(paper_arch) + "]",
           std::to_string(sim.launch.alloc.accum_vgprs) + "  [" +
               std::to_string(paper_accum) + "]",
           perf::fmt_speedup(default_time / sim.time_s) + "  [" +
               perf::fmt_speedup(paper_default / paper_time) + "]"});
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Paper's takeaway: best performance at <128,2> / <256,2>, where the\n"
      "compiler can use the accumulation VGPR file — reproduced above.\n");
  return 0;
}
