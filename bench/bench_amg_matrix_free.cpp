// Matrix-free GMRES preconditioning: block-Jacobi vs operator-probed
// semicoarsening AMG.
//
// The matrix-free Jacobian path never assembles the global matrix, which
// historically cut it off from the production preconditioner (MDSC-AMG
// consumes a CRS matrix).  The operator-probed compute() closes that gap:
// a constant number of colored probe applies (<= 27 * dofs_per_node on the
// extruded lattice) reconstructs the fine matrix once per Newton step, the
// usual Galerkin hierarchy is built on it, and with the Chebyshev smoother
// the fine level afterwards runs entirely through the live operator.
//
// This bench answers two questions on the reduced Antarctica mesh:
//   1. single linear solve — GMRES iterations and wall time under
//      block-Jacobi vs probed AMG (same matrix-free operator, same rhs);
//   2. full Newton run at equal tolerance — total GMRES iterations in
//      matrix-free mode with each preconditioner, plus the assembled+AMG
//      reference trajectory.
// The probe setup cost is reported against the per-iteration savings via
// perf::AmgCycleModel.
//
//   bench_amg_matrix_free [--dx-km F] [--layers N] [--steps N]
//
// Thread count follows MALI_NUM_THREADS (default: hardware concurrency).

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "linalg/block_jacobi.hpp"
#include "linalg/gmres.hpp"
#include "linalg/linear_operator.hpp"
#include "linalg/semicoarsening_amg.hpp"
#include "nonlinear/newton.hpp"
#include "perf/data_movement.hpp"
#include "perf/report.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "portability/thread_pool.hpp"
#include "portability/timer.hpp"

using namespace mali;

namespace {

double arg_num(int argc, char** argv, const std::string& key, double dflt) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (key == argv[i]) return std::atof(argv[i + 1]);
  }
  return dflt;
}

physics::StokesFOConfig make_config(int argc, char** argv) {
  physics::StokesFOConfig cfg;
  cfg.dx_m = arg_num(argc, argv, "--dx-km", 64.0) * 1e3;
  cfg.n_layers = static_cast<int>(arg_num(argc, argv, "--layers", 10));
  cfg.jacobian = linalg::JacobianMode::kMatrixFree;
  return cfg;
}

struct NewtonRun {
  nonlinear::NewtonResult result;
  double seconds = 0.0;
};

NewtonRun run_newton(physics::StokesFOConfig cfg, linalg::JacobianMode mode,
                     linalg::Preconditioner& M, int steps) {
  cfg.jacobian = mode;
  physics::StokesFOProblem problem(cfg);
  nonlinear::NewtonConfig ncfg;
  ncfg.max_iters = steps;
  ncfg.jacobian = mode;
  const nonlinear::NewtonSolver newton(ncfg);
  auto U = problem.analytic_initial_guess();
  pk::Timer timer;
  NewtonRun run;
  run.result = newton.solve(problem, M, U);
  run.seconds = timer.seconds();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const physics::StokesFOConfig cfg = make_config(argc, argv);
  const int steps = static_cast<int>(arg_num(argc, argv, "--steps", 8));

  physics::StokesFOProblem problem(cfg);
  const std::size_t n = problem.n_dofs();
  std::printf(
      "Matrix-free preconditioning: block-Jacobi vs operator-probed AMG — "
      "%zu cells, %zu dofs, %zu threads\n\n",
      problem.mesh().n_cells(), n, pk::ThreadPool::instance().size());

  // ---- 1. single linear solve at the analytic initial guess ----
  const auto U = problem.analytic_initial_guess();
  const auto op = problem.jacobian_operator(U);
  std::vector<double> F(n);
  problem.residual(U, F);
  std::vector<double> rhs(n);
  for (std::size_t i = 0; i < n; ++i) rhs[i] = -F[i];

  linalg::GmresConfig gcfg;
  const linalg::Gmres gmres(gcfg);
  pk::Timer timer;

  linalg::BlockJacobiPreconditioner bj(2);
  timer.reset();
  bj.compute(*op);
  const double bj_setup_s = timer.seconds();
  std::vector<double> dU(n, 0.0);
  timer.reset();
  const auto bj_lin = gmres.solve(*op, bj, rhs, dU);
  const double bj_solve_s = timer.seconds();

  linalg::AmgConfig acfg;
  acfg.smoother = linalg::AmgSmoother::kChebyshev;
  linalg::SemicoarseningAmg amg(problem.extrusion_info(), acfg);
  timer.reset();
  amg.compute(*op);
  const double amg_setup_s = timer.seconds();
  std::fill(dU.begin(), dU.end(), 0.0);
  timer.reset();
  const auto amg_lin = gmres.solve(*op, amg, rhs, dU);
  const double amg_solve_s = timer.seconds();

  std::printf("Single GMRES solve of J dU = -F (rel tol %.0e), matrix-free "
              "operator:\n",
              gcfg.rel_tol);
  perf::Table t({"preconditioner", "setup (ms)", "iterations", "rel residual",
                 "solve (ms)"});
  t.add_row({"block-Jacobi", perf::fmt(bj_setup_s * 1e3, 4),
             std::to_string(bj_lin.iterations),
             perf::fmt_sci(bj_lin.rel_residual),
             perf::fmt(bj_solve_s * 1e3, 4)});
  t.add_row({"probed AMG", perf::fmt(amg_setup_s * 1e3, 4),
             std::to_string(amg_lin.iterations),
             perf::fmt_sci(amg_lin.rel_residual),
             perf::fmt(amg_solve_s * 1e3, 4)});
  t.print(std::cout);

  // ---- byte model: what the probe costs, what each V-cycle streams ----
  perf::JacobianApplyModel jm;
  jm.n_rows = n;
  jm.nnz = problem.create_matrix().nnz();
  jm.n_cells = problem.mesh().n_cells();
  jm.n_nodes = problem.mesh().n_nodes();
  jm.num_nodes = problem.workset().num_nodes;
  jm.n_basal_faces =
      problem.config().mms.enabled ? 0 : problem.mesh().base().n_cells();
  perf::AmgCycleModel am;
  am.fine_apply_bytes = jm.matrix_free_stream_bytes();
  am.probe_applies = amg.probe_applies();
  am.fine_matrix_free = amg.fine_matrix_free();
  for (std::size_t l = 0; l < amg.n_levels(); ++l) {
    am.level_rows.push_back(amg.level_dofs(l));
    am.level_nnz.push_back(amg.level_nnz(l));
  }
  std::printf(
      "\nperf::AmgCycleModel — %zu levels, %zu probe applies at setup:\n"
      "  setup %.3f MB streamed, V-cycle %.3f MB per application\n"
      "  (one matrix-free operator apply streams %.3f MB)\n",
      amg.n_levels(), am.probe_applies, am.setup_bytes() / 1e6,
      am.vcycle_bytes() / 1e6, am.fine_apply_bytes / 1e6);

  // ---- 2. full Newton runs at equal tolerance ----
  std::printf("\nFull Newton run (max %d steps, linear tol %.0e):\n", steps,
              gcfg.rel_tol);
  linalg::BlockJacobiPreconditioner bj2(2);
  const auto run_bj =
      run_newton(cfg, linalg::JacobianMode::kMatrixFree, bj2, steps);
  linalg::SemicoarseningAmg amg_mf(problem.extrusion_info(), acfg);
  const auto run_amg =
      run_newton(cfg, linalg::JacobianMode::kMatrixFree, amg_mf, steps);
  linalg::SemicoarseningAmg amg_asm(problem.extrusion_info());
  const auto run_ref =
      run_newton(cfg, linalg::JacobianMode::kAssembled, amg_asm, steps);

  perf::Table nt({"configuration", "newton steps", "total GMRES iters",
                  "final ||F||", "time (s)"});
  const auto row = [&](const char* name, const NewtonRun& r) {
    nt.add_row({name, std::to_string(r.result.iterations),
                std::to_string(r.result.total_linear_iters),
                perf::fmt_sci(r.result.residual_norm),
                perf::fmt(r.seconds, 4)});
  };
  row("matrix-free + block-Jacobi", run_bj);
  row("matrix-free + probed AMG", run_amg);
  row("assembled + AMG (reference)", run_ref);
  nt.print(std::cout);

  std::printf(
      "\nReading: the probed AMG pays %zu operator applies per Newton step\n"
      "at setup and repays them with the multigrid iteration count — total\n"
      "GMRES iterations drop well below block-Jacobi while matching the\n"
      "assembled+AMG reference, so the matrix-free path keeps its bytes/\n"
      "iteration advantage without giving up the production preconditioner.\n",
      amg.probe_applies());
  const bool amg_wins =
      run_amg.result.total_linear_iters < run_bj.result.total_linear_iters;
  std::printf("probed AMG total iters %s block-Jacobi (%zu vs %zu)\n",
              amg_wins ? "<" : ">=", run_amg.result.total_linear_iters,
              run_bj.result.total_linear_iters);
  return amg_wins ? 0 : 1;
}
