// Extension: MALI's native prismatic (WEDGE6) discretization vs the paper's
// hexahedral test configuration, compared at equal column counts (each quad
// splits into two triangles, so the prism workset has 2x the cells but 3/4
// the quadrature work per column).  Models time and data movement of both
// kernel pairs on both GPUs — the discretization trade-off behind the
// paper's mesh choice.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "perf/report.hpp"

using namespace mali;

int main(int argc, char** argv) {
  const auto cfg = bench::study_config(argc, argv);
  const core::OptimizationStudy study(cfg);

  // Equal ice volume: C hexes vs 2C prisms.
  const std::size_t hex_cells = cfg.n_cells;
  const std::size_t prism_cells = 2 * cfg.n_cells;

  std::printf(
      "EXTENSION — HEX8 (%zu cells, 8 qp, SFad<16>) vs WEDGE6 (%zu cells, "
      "6 qp, SFad<12>)\noptimized StokesFOResid kernels\n\n",
      hex_cells, prism_cells);

  perf::Table t({"Machine", "Kernel", "Element", "time (ms)", "GB moved",
                 "min GB", "e_DM"});
  const gpusim::ExecModel model(cfg.sim);
  for (const auto& arch : study.archs()) {
    for (const auto kind :
         {core::KernelKind::kJacobian, core::KernelKind::kResidual}) {
      struct Case {
        const char* name;
        int nodes, qps;
        std::size_t cells;
      } cases[] = {{"HEX8", 8, 8, hex_cells}, {"WEDGE6", 6, 6, prism_cells}};
      for (const auto& c : cases) {
        const auto trace = core::record_kernel_trace(
            kind, physics::KernelVariant::kOptimized, c.cells, c.nodes, c.qps);
        const auto info = core::kernel_model_info(
            kind, physics::KernelVariant::kOptimized, c.nodes, c.qps);
        const pk::LaunchConfig launch = arch.has_accum_vgprs
                                            ? pk::LaunchConfig{128, 2}
                                            : pk::LaunchConfig{};
        const auto sim = model.simulate(arch, trace, info, c.cells, launch);
        t.add_row({arch.name, core::to_string(kind), c.name,
                   perf::fmt(sim.time_s * 1e3, 4),
                   perf::fmt(sim.hbm_bytes / 1e9, 4),
                   perf::fmt(sim.min_bytes / 1e9, 4),
                   perf::fmt_pct(sim.e_dm())});
      }
    }
  }
  t.print(std::cout);

  std::printf(
      "\nReading: at equal column counts the prism Jacobian carries 12\n"
      "derivative components instead of 16, so its SFad data is narrower,\n"
      "but twice as many elements touch the shared basis arrays — the net\n"
      "data movement of the two discretizations is comparable, which is\n"
      "why the paper's optimizations apply to MALI's production prisms\n"
      "just as well as to the hexahedral test.\n");
  return 0;
}
