// Extension (the paper's stated future work): "conduct scalability
// studies".  Sweeps the workset size from 16K to 1M hexahedra (mesh
// refinement / more layers) and models how time per invocation, achieved
// bandwidth and the efficiencies scale on both GPUs — including the
// latency-floor regime at small worksets that dominates strong scaling.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "perf/report.hpp"

using namespace mali;

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::printf(
      "SCALING EXTENSION — workset-size sweep, optimized kernels\n\n");

  const std::size_t sizes[] = {16384, 65536, 262144, 1048576};

  for (const auto kind :
       {core::KernelKind::kJacobian, core::KernelKind::kResidual}) {
    perf::Table t({"Machine", "cells", "time (ms)", "GB moved", "BW%",
                   "e_time", "cells/s"});
    for (const std::size_t n : sizes) {
      core::StudyConfig cfg;
      cfg.n_cells = n;
      cfg.sim.scale = n > 262144 ? 0.125 : 0.25;
      const core::OptimizationStudy study(cfg);
      for (const auto* arch : {&study.a100(), &study.mi250x_gcd()}) {
        const pk::LaunchConfig launch = arch->has_accum_vgprs
                                            ? pk::LaunchConfig{128, 2}
                                            : pk::LaunchConfig{};
        const auto sim = study.simulate(*arch, kind,
                                        physics::KernelVariant::kOptimized,
                                        launch);
        t.add_row({arch->name, std::to_string(n),
                   perf::fmt(sim.time_s * 1e3, 4),
                   perf::fmt(sim.hbm_bytes / 1e9, 4),
                   perf::fmt_pct(sim.achieved_bw / arch->hbm_bw_bytes_per_s),
                   perf::fmt_pct(sim.e_time()),
                   perf::fmt(static_cast<double>(n) / sim.time_s / 1e6, 4) +
                       "M"});
      }
    }
    std::printf("%s kernel:\n", core::to_string(kind));
    t.print(std::cout);
    std::printf("\n");
  }

  std::printf(
      "Reading: throughput (cells/s) saturates once the workset covers the\n"
      "device (weak-scaling regime); at small worksets the kernel-launch\n"
      "latency floor erodes e_time — the strong-scaling limit the paper's\n"
      "future work targets.\n");
  return 0;
}
