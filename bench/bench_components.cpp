// Component benchmarks (google-benchmark): the substrate pieces the solve
// spends its time in — sparse matrix-vector products, preconditioner
// applications, AMG V-cycles, residual/Jacobian assembly, and the cache
// simulator's probe throughput (which sets the cost of full-scale modeled
// replays).

#include <benchmark/benchmark.h>

#include <memory>
#include <random>

#include "gpusim/cache_sim.hpp"
#include "linalg/gmres.hpp"
#include "linalg/semicoarsening_amg.hpp"
#include "physics/stokes_fo_problem.hpp"

using namespace mali;

namespace {

struct SolverFixture {
  std::unique_ptr<physics::StokesFOProblem> problem;
  linalg::CrsMatrix J;
  std::vector<double> U, F, x, b;
  std::unique_ptr<linalg::SemicoarseningAmg> amg;

  SolverFixture() {
    physics::StokesFOConfig cfg;
    cfg.dx_m = 64.0e3;
    cfg.n_layers = 10;
    problem = std::make_unique<physics::StokesFOProblem>(cfg);
    // Assemble at the first Newton iterate (U = 0): the system every solve
    // in the paper's test starts from.
    U.assign(problem->n_dofs(), 0.0);
    J = problem->create_matrix();
    problem->residual_and_jacobian(U, F, J);
    amg = std::make_unique<linalg::SemicoarseningAmg>(
        problem->extrusion_info());
    amg->compute(J);
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> dist(-1, 1);
    b.resize(problem->n_dofs());
    for (auto& v : b) v = dist(rng);
    x.assign(b.size(), 0.0);
  }
};

SolverFixture& fixture() {
  static SolverFixture f;
  return f;
}

}  // namespace

static void BM_SpMV(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    f.J.apply(f.b, f.x);
    benchmark::DoNotOptimize(f.x.data());
  }
  state.counters["nnz"] = static_cast<double>(f.J.nnz());
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.J.nnz() * 16));
}
BENCHMARK(BM_SpMV)->Unit(benchmark::kMillisecond)->UseRealTime();

static void BM_AmgVCycle(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    f.amg->apply(f.b, f.x);
    benchmark::DoNotOptimize(f.x.data());
  }
}
BENCHMARK(BM_AmgVCycle)->Unit(benchmark::kMillisecond)->UseRealTime();

static void BM_GmresSolveAmg(benchmark::State& state) {
  auto& f = fixture();
  linalg::GmresConfig cfg;
  cfg.rel_tol = 1e-6;  // the paper's linear tolerance
  cfg.max_iters = 500;
  const linalg::Gmres gmres(cfg);
  for (auto _ : state) {
    f.x.assign(f.b.size(), 0.0);
    const auto r = gmres.solve(f.J, *f.amg, f.b, f.x);
    state.counters["iters"] = static_cast<double>(r.iterations);
  }
}
BENCHMARK(BM_GmresSolveAmg)->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(3);

static void BM_ResidualAssembly(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    f.problem->residual(f.U, f.F);
    benchmark::DoNotOptimize(f.F.data());
  }
  state.counters["cells"] = static_cast<double>(f.problem->workset().n_cells);
}
BENCHMARK(BM_ResidualAssembly)->Unit(benchmark::kMillisecond)->UseRealTime();

static void BM_JacobianAssembly(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    f.problem->residual_and_jacobian(f.U, f.F, f.J);
    benchmark::DoNotOptimize(f.F.data());
  }
  state.counters["cells"] = static_cast<double>(f.problem->workset().n_cells);
}
BENCHMARK(BM_JacobianAssembly)->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(10);

static void BM_CacheSimProbe(benchmark::State& state) {
  gpusim::CacheSim cache(8 << 20, 64, 16, gpusim::CacheSim::Replacement::kRandom);
  const std::uint64_t span = 64 << 20;
  std::uint64_t addr = 0;
  for (auto _ : state) {
    cache.access(addr % span, 4096, false);
    addr += 4096 * 7;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64);
  state.counters["hit_rate"] = cache.stats().hit_rate();
}
BENCHMARK(BM_CacheSimProbe);
