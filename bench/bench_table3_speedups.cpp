// Reproduces Table III: time per call and speedup vs. baseline for the
// Jacobian and Residual kernels on the modeled NVIDIA A100 and one GCD of
// an AMD MI250X, side by side with the paper's measurements.
//
// Absolute times differ from the paper (our workset is the synthetic
// Antarctica and the substrate is a performance model, not Perlmutter /
// Frontier); the comparison targets are the speedup factors.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "perf/report.hpp"

using namespace mali;

int main(int argc, char** argv) {
  const core::OptimizationStudy study(bench::study_config(argc, argv));
  std::printf(
      "TABLE III — time per call and speedup, baseline vs optimized\n"
      "(modeled GPUs, %zu-cell workset; paper values in brackets)\n\n",
      study.config().n_cells);

  perf::Table t({"Kernel", "Machine", "Baseline (s)", "Optimized (s)",
                 "Speedup", "Paper speedup"});

  for (const auto& row : bench::kPaperTable3) {
    const bool jac = std::string(row.kernel) == "Jacobian";
    const auto kind = jac ? core::KernelKind::kJacobian
                          : core::KernelKind::kResidual;
    struct MachineCase {
      const gpusim::GpuArch& arch;
      double paper_base, paper_opt;
    } machines[] = {
        {study.a100(), row.base_a100, row.opt_a100},
        {study.mi250x_gcd(), row.base_gcd, row.opt_gcd},
    };
    for (const auto& m : machines) {
      const auto base =
          study.simulate(m.arch, kind, physics::KernelVariant::kBaseline);
      const pk::LaunchConfig tuned =
          m.arch.has_accum_vgprs ? pk::LaunchConfig{128, 2} : pk::LaunchConfig{};
      const auto opt = study.simulate(m.arch, kind,
                                      physics::KernelVariant::kOptimized, tuned);
      t.add_row({row.kernel, m.arch.name,
                 perf::fmt_sci(base.time_s) + "  [" +
                     perf::fmt_sci(m.paper_base) + "]",
                 perf::fmt_sci(opt.time_s) + "  [" +
                     perf::fmt_sci(m.paper_opt) + "]",
                 perf::fmt_speedup(base.time_s / opt.time_s),
                 perf::fmt_speedup(m.paper_base / m.paper_opt)});
    }
  }
  t.print(std::cout);
  std::printf(
      "\nPaper's takeaway: data-locality optimizations reduce time per call\n"
      "between 2x and 4x for both kernels and GPUs — reproduced above.\n");
  return 0;
}
