// Extension (the paper's future work): weak scaling of the optimized
// Jacobian kernel across multi-GPU Perlmutter/Frontier-like systems —
// MODELED over the Slingshot fabric, then cross-checked against MEASURED
// halo/kernel/total times from the in-process rank-parallel solve
// (dist::solve_distributed), which runs the real halo exchange protocol.
//
// Each GPU keeps the paper's per-GPU workset (~256K cells); the partition
// grows with the GPU count and the halo exchange of velocity dofs is
// modeled per neighbor.  The neighbor count comes from the ACTUAL partition
// adjacency (strips <= 2, block grids up to 8 including corners) — not a
// hardcoded constant.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "dist/dist_solver.hpp"
#include "gpusim/multi_gpu.hpp"
#include "mesh/ice_geometry.hpp"
#include "mesh/partition.hpp"
#include "perf/report.hpp"
#include "physics/stokes_fo_problem.hpp"

using namespace mali;

namespace {

/// Measured counterpart of the model: runs the domain-decomposed MMS solve
/// in-process and reports per-rank maxima of the kernel/halo wall-clock the
/// rank runtime records, next to the modeled split for the same partition.
void measured_section() {
  std::printf(
      "\nMEASURED — in-process rank-parallel MMS solve (strips and blocks),\n"
      "real halo exchange; model charged with the same partition's halo\n"
      "columns and true max-neighbor count:\n\n");

  physics::StokesFOConfig pcfg;
  pcfg.dx_m = 40.0e3;
  pcfg.n_layers = 5;
  pcfg.mms.enabled = true;
  pcfg.geometry.square_mask = true;
  const physics::StokesFOProblem problem(pcfg);
  const std::size_t levels = problem.mesh().levels();

  const gpusim::NetworkModel net;
  perf::Table t({"decomp", "ranks", "nbrs", "halo cols", "meas kernel (ms)",
                 "meas halo (ms)", "meas total (ms)", "model halo (ms)",
                 "newton"});

  for (const auto decomp : {dist::Decomp::kStrips, dist::Decomp::kBlocks}) {
    for (const int ranks : {1, 2, 4}) {
      dist::DistConfig dcfg;
      dcfg.ranks = ranks;
      dcfg.decomp = decomp;
      dcfg.newton.max_iters = 3;
      dcfg.newton.gmres.rel_tol = 1e-8;
      dcfg.newton.gmres.max_iters = 2000;
      const auto res = dist::solve_distributed(problem, dcfg);

      double kernel_ms = 0.0, halo_ms = 0.0, total_ms = 0.0;
      for (const auto& r : res.ranks) {
        kernel_ms = std::max(kernel_ms, r.kernel_s * 1e3);
        halo_ms = std::max(halo_ms, r.halo.total_s() * 1e3);
        total_ms = std::max(total_ms, r.total_s * 1e3);
      }
      const double model_halo_ms =
          ranks > 1 ? 1e3 * (gpusim::halo_bytes(
                                 res.partition.max_halo_columns(), levels) /
                                 net.nic_bw_bytes_per_s +
                             net.message_latency_s *
                                 res.partition.max_neighbors())
                    : 0.0;
      t.add_row({dist::to_string(decomp), std::to_string(ranks),
                 std::to_string(res.partition.max_neighbors()),
                 std::to_string(res.partition.max_halo_columns()),
                 perf::fmt(kernel_ms, 3), perf::fmt(halo_ms, 3),
                 perf::fmt(total_ms, 3), perf::fmt(model_halo_ms, 4),
                 res.converged ? "conv" : "DIV"});
    }
  }
  t.print(std::cout);

  std::printf(
      "\nReading: the measured halo column counts the WAIT inside each\n"
      "exchange — rank threads run the Krylov iteration in lockstep, so the\n"
      "recv blocks until the neighbor arrives and the column is really a\n"
      "load-imbalance + synchronization measurement (it grows with rank\n"
      "count while pure copy time stays microseconds).  The model's wire\n"
      "time charges only bytes/bandwidth + per-neighbor latency, which is\n"
      "why it sits orders of magnitude below; on a real fabric the truth\n"
      "lies between the two.  The model now charges latency per REAL\n"
      "neighbor (blocks: up to 8), which the old hardcoded 2-neighbor\n"
      "constant understated by up to 4x.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = bench::study_config(argc, argv);
  const core::OptimizationStudy study(cfg);

  std::printf(
      "WEAK-SCALING EXTENSION — optimized Jacobian, %zu cells per GPU,\n"
      "20-layer columns, halo = ghost velocity columns over Slingshot-11\n\n",
      cfg.n_cells);

  // Per-GPU kernel times (fixed per-GPU work by construction).
  const gpusim::NetworkModel net;
  const std::size_t levels = 21;

  perf::Table t({"Machine", "GPUs", "mesh (km)", "halo cols/rank", "nbrs",
                 "kernel (ms)", "halo (ms)", "total (ms)", "efficiency",
                 "imbalance"});

  for (const auto* arch_ptr : {&study.a100(), &study.mi250x_gcd()}) {
    const auto& arch = *arch_ptr;
    const pk::LaunchConfig launch = arch.has_accum_vgprs
                                        ? pk::LaunchConfig{128, 2}
                                        : pk::LaunchConfig{};
    const auto sim = study.simulate(arch, core::KernelKind::kJacobian,
                                    physics::KernelVariant::kOptimized,
                                    launch);
    double single = 0.0;
    for (const int n_gpus : {1, 4, 16, 64}) {
      // Weak scaling: total cells = n_gpus x per-GPU cells.  Refine the
      // mesh so each GPU keeps its workset (dx ~ 1/sqrt(n_gpus)).
      const double dx_km = 16.0 / std::sqrt(static_cast<double>(n_gpus));
      mesh::IceGeometry geom;
      const mesh::QuadGrid grid(geom, {dx_km * 1e3});
      const int side = static_cast<int>(std::lround(std::sqrt(n_gpus)));
      const auto part = side * side == n_gpus
                            ? mesh::partition_blocks(grid, side, side)
                            : mesh::partition_strips(grid, n_gpus);
      const double bytes =
          gpusim::halo_bytes(part.max_halo_columns(), levels);
      const auto point = gpusim::scaling_point(
          n_gpus, sim.time_s, bytes, net,
          n_gpus == 1 ? sim.time_s : single, part.max_neighbors());
      if (n_gpus == 1) single = point.total_time_s;
      t.add_row({arch.name, std::to_string(n_gpus), perf::fmt(dx_km, 3),
                 std::to_string(part.max_halo_columns()),
                 std::to_string(point.neighbors),
                 perf::fmt(point.kernel_time_s * 1e3, 4),
                 perf::fmt(point.halo_time_s * 1e3, 4),
                 perf::fmt(point.total_time_s * 1e3, 4),
                 perf::fmt_pct(n_gpus == 1 ? 1.0 : point.efficiency),
                 perf::fmt(part.imbalance(), 3)});
    }
  }
  t.print(std::cout);

  std::printf(
      "\nReading: halo exchange is microseconds against milliseconds of\n"
      "kernel work, so the kernel-level optimizations (not communication)\n"
      "govern weak scaling at the paper's per-GPU workset — supporting the\n"
      "paper's single-node focus.  Imbalance grows mildly with the part\n"
      "count as blocks straddle the lobed margin.\n");

  measured_section();
  return 0;
}
