// Extension (the paper's future work): modeled weak scaling of the
// optimized Jacobian kernel across multi-GPU Perlmutter/Frontier-like
// systems.  Each GPU keeps the paper's per-GPU workset (~256K cells); the
// partition grows with the GPU count and the halo exchange of velocity
// dofs is modeled over the Slingshot fabric.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "gpusim/multi_gpu.hpp"
#include "mesh/ice_geometry.hpp"
#include "mesh/partition.hpp"
#include "perf/report.hpp"

using namespace mali;

int main(int argc, char** argv) {
  const auto cfg = bench::study_config(argc, argv);
  const core::OptimizationStudy study(cfg);

  std::printf(
      "WEAK-SCALING EXTENSION — optimized Jacobian, %zu cells per GPU,\n"
      "20-layer columns, halo = ghost velocity columns over Slingshot-11\n\n",
      cfg.n_cells);

  // Per-GPU kernel times (fixed per-GPU work by construction).
  const gpusim::NetworkModel net;
  const std::size_t levels = 21;

  perf::Table t({"Machine", "GPUs", "mesh (km)", "halo cols/rank",
                 "kernel (ms)", "halo (ms)", "total (ms)", "efficiency",
                 "imbalance"});

  for (const auto* arch_ptr : {&study.a100(), &study.mi250x_gcd()}) {
    const auto& arch = *arch_ptr;
    const pk::LaunchConfig launch = arch.has_accum_vgprs
                                        ? pk::LaunchConfig{128, 2}
                                        : pk::LaunchConfig{};
    const auto sim = study.simulate(arch, core::KernelKind::kJacobian,
                                    physics::KernelVariant::kOptimized,
                                    launch);
    double single = 0.0;
    for (const int n_gpus : {1, 4, 16, 64}) {
      // Weak scaling: total cells = n_gpus x per-GPU cells.  Refine the
      // mesh so each GPU keeps its workset (dx ~ 1/sqrt(n_gpus)).
      const double dx_km = 16.0 / std::sqrt(static_cast<double>(n_gpus));
      mesh::IceGeometry geom;
      const mesh::QuadGrid grid(geom, {dx_km * 1e3});
      const int side = static_cast<int>(std::lround(std::sqrt(n_gpus)));
      const auto part = side * side == n_gpus
                            ? mesh::partition_blocks(grid, side, side)
                            : mesh::partition_strips(grid, n_gpus);
      const double bytes =
          gpusim::halo_bytes(part.max_halo_columns(), levels);
      const auto point = gpusim::scaling_point(
          n_gpus, sim.time_s, bytes, net,
          n_gpus == 1 ? sim.time_s : single);
      if (n_gpus == 1) single = point.total_time_s;
      t.add_row({arch.name, std::to_string(n_gpus), perf::fmt(dx_km, 3),
                 std::to_string(part.max_halo_columns()),
                 perf::fmt(point.kernel_time_s * 1e3, 4),
                 perf::fmt(point.halo_time_s * 1e3, 4),
                 perf::fmt(point.total_time_s * 1e3, 4),
                 perf::fmt_pct(n_gpus == 1 ? 1.0 : point.efficiency),
                 perf::fmt(part.imbalance(), 3)});
    }
  }
  t.print(std::cout);

  std::printf(
      "\nReading: halo exchange is microseconds against milliseconds of\n"
      "kernel work, so the kernel-level optimizations (not communication)\n"
      "govern weak scaling at the paper's per-GPU workset — supporting the\n"
      "paper's single-node focus.  Imbalance grows mildly with the part\n"
      "count as blocks straddle the lobed margin.\n");
  return 0;
}
