// Classic vs pipelined GMRES inside the distributed Newton solve on the
// dome problem (full Glen-law nonlinearity, no MMS shortcut): wall-clock,
// MEASURED reduction traffic from the communicator counters, and the
// ReductionLatencyModel's analytic expectation printed side by side (the
// ROADMAP's model-vs-measured idiom).
//
// The acceptance criteria this bench demonstrates and records:
//   * pipelined GMRES issues ~1 collective per linear iteration (measured
//     by the rank-0 CommCounters; classic pays j+3 at Arnoldi step j), and
//   * pipelined is no slower than classic at ranks >= 4.
//
//   ./bench_pipelined_krylov [--dx-km=F] [--layers=N] [--reps=N]
//                            [--out=BENCH_pipelined.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dist/dist_solver.hpp"
#include "linalg/pipelined_krylov.hpp"
#include "perf/reduction_latency.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "util/json_writer.hpp"

using namespace mali;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Row {
  int ranks = 0;
  linalg::KrylovKind kind = linalg::KrylovKind::kGmres;
  double wall_s = 0.0;           // best of reps
  std::size_t linear_iters = 0;  // summed over Newton steps
  std::size_t allreduces = 0;    // rank 0, measured
  std::size_t reduced_values = 0;
  double collectives_per_iter = 0.0;
  double model_sync_per_iter_us = 0.0;
  double residual_norm = 0.0;
  bool converged = false;
};

}  // namespace

int main(int argc, char** argv) {
  double dx_km = 150.0;
  int layers = 3, reps = 3;
  std::string out_path = "BENCH_pipelined.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dx-km=", 8) == 0) dx_km = std::atof(argv[i] + 8);
    if (std::strncmp(argv[i], "--layers=", 9) == 0) layers = std::atoi(argv[i] + 9);
    if (std::strncmp(argv[i], "--reps=", 7) == 0) reps = std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  // The dome: nonlinear rheology + basal friction, square_mask off so the
  // margin exercises the irregular ownership the halo plans deal with.
  physics::StokesFOConfig cfg;
  cfg.dx_m = dx_km * 1e3;
  cfg.n_layers = layers;
  physics::StokesFOProblem problem(cfg);
  std::printf("pipelined-Krylov bench: dome dx=%.0f km, %d layers, %zu dofs, "
              "best of %d reps\n\n",
              dx_km, layers, problem.n_dofs(), reps);
  std::printf("%5s  %-11s %10s %9s %12s %12s %10s %14s\n", "ranks", "krylov",
              "wall [s]", "lin.iter", "collectives", "values", "coll/iter",
              "model [us/it]");

  std::vector<Row> rows;
  for (const int ranks : {1, 2, 4, 7}) {
    for (const auto kind :
         {linalg::KrylovKind::kGmres, linalg::KrylovKind::kPipeGmres}) {
      dist::DistConfig dcfg;
      dcfg.ranks = ranks;
      dcfg.decomp = dist::Decomp::kStrips;
      dcfg.jacobian = linalg::JacobianMode::kMatrixFree;
      dcfg.overlap = true;  // halo import in the reduction's shadow
      dcfg.krylov = kind;
      dcfg.newton.max_iters = 12;
      dcfg.newton.rel_tol = 1e-8;
      dcfg.newton.gmres.rel_tol = 1e-6;
      dcfg.newton.gmres.max_iters = 600;
      dcfg.newton.gmres.restart = 200;

      Row row;
      row.ranks = ranks;
      row.kind = kind;
      row.wall_s = 1e300;
      for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto res = dist::solve_distributed(problem, dcfg);
        row.wall_s = std::min(row.wall_s, seconds_since(t0));
        row.converged = res.converged;
        row.residual_norm = res.residual_norm;
        row.linear_iters = res.ranks[0].newton.total_linear_iters;
        row.allreduces = res.ranks[0].comm.allreduces;
        row.reduced_values = res.ranks[0].comm.reduced_values;
      }
      row.collectives_per_iter =
          row.linear_iters > 0
              ? static_cast<double>(row.allreduces) /
                    static_cast<double>(row.linear_iters)
              : 0.0;
      perf::ReductionLatencyModel rlm;
      rlm.ranks = ranks;
      rlm.restart = dcfg.newton.gmres.restart;
      row.model_sync_per_iter_us =
          (kind == linalg::KrylovKind::kPipeGmres
               ? rlm.pipelined_gmres_sync_per_iter_s()
               : rlm.classic_gmres_sync_per_iter_s()) *
          1e6;
      std::printf("%5d  %-11s %10.3f %9zu %12zu %12zu %10.2f %14.2f%s\n",
                  ranks, linalg::to_string(kind), row.wall_s,
                  row.linear_iters, row.allreduces, row.reduced_values,
                  row.collectives_per_iter, row.model_sync_per_iter_us,
                  row.converged ? "" : "  [NOT CONVERGED]");
      rows.push_back(row);
    }
  }

  // Per-rank-count summary: collectives saved and relative wall-clock.
  std::printf("\n%5s %18s %18s %12s\n", "ranks", "collectives ratio",
              "model sync ratio", "wall ratio");
  bool one_collective_ok = true, not_slower_at_scale = true;
  for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
    const Row& classic = rows[i];
    const Row& pipe = rows[i + 1];
    perf::ReductionLatencyModel rlm;
    rlm.ranks = classic.ranks;
    rlm.restart = 200;
    const double coll_ratio =
        pipe.allreduces > 0 ? static_cast<double>(classic.allreduces) /
                                  static_cast<double>(pipe.allreduces)
                            : 0.0;
    const double wall_ratio = pipe.wall_s > 0.0 ? classic.wall_s / pipe.wall_s
                                                : 0.0;
    std::printf("%5d %17.1fx %17.1fx %11.2fx\n", classic.ranks, coll_ratio,
                rlm.gmres_sync_ratio(), wall_ratio);
    // The fused batch must amortize to 1 collective/iter; the small excess
    // over 1.0 is the per-solve constants (||b||, restart beta norms, the
    // true-residual confirm) plus Newton's own residual/scale reductions,
    // all of which are O(Newton steps), not O(linear iterations).
    if (pipe.collectives_per_iter > 1.10) one_collective_ok = false;
    if (classic.ranks >= 4 && pipe.wall_s > 1.10 * classic.wall_s) {
      not_slower_at_scale = false;
    }
  }
  std::printf("\n1 collective/iter (pipelined): %s\n",
              one_collective_ok ? "PASS" : "FAIL");
  std::printf("no slower at ranks >= 4:       %s\n",
              not_slower_at_scale ? "PASS" : "FAIL");

  // JSON record for CI artifact upload and the repo-root snapshot.  Fixed
  // key order, doubles shortest-round-trip (never truncated): identical
  // measurements produce byte-identical files.
  util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("pipelined_krylov");
  w.key("problem").begin_object();
  w.key("dx_km").value(dx_km);
  w.key("layers").value(layers);
  w.key("dofs").value(problem.n_dofs());
  w.end_object();
  w.key("reps").value(reps);
  w.key("rows").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.key("ranks").value(r.ranks);
    w.key("krylov").value(linalg::to_string(r.kind));
    w.key("wall_s").value(r.wall_s);
    w.key("linear_iters").value(r.linear_iters);
    w.key("allreduces").value(r.allreduces);
    w.key("reduced_values").value(r.reduced_values);
    w.key("collectives_per_iter").value(r.collectives_per_iter);
    w.key("model_sync_per_iter_us").value(r.model_sync_per_iter_us);
    w.key("converged").value(r.converged);
    w.end_object();
  }
  w.end_array();
  w.key("one_collective_per_iter").value(one_collective_ok);
  w.key("no_slower_at_ranks_ge_4").value(not_slower_at_scale);
  w.end_object();
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(w.str().c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "could not open %s for writing\n", out_path.c_str());
    return 1;
  }
  return (one_collective_ok && not_slower_at_scale) ? 0 : 2;
}
