// Assembled vs matrix-free Jacobian apply on the reduced Antarctica mesh.
//
// The assembled path pays the element loop once per Newton step (assembly)
// and then streams the CRS matrix through HBM on *every* GMRES iteration;
// the matrix-free path re-evaluates the per-element tangent each apply,
// recomputing cell geometry in registers, so its per-iteration traffic is
// the nodal data only.  This bench times both applies, runs a
// preconditioned GMRES solve in each mode, and prints the measured times
// next to the perf::JacobianApplyModel byte model — the trade-FLOPs-for-
// bytes lever of the paper's e_DM metric applied to the solver.
//
//   bench_matrix_free [--dx-km F] [--layers N] [--reps N]
//
// Thread count follows MALI_NUM_THREADS (default: hardware concurrency).
// See bench_amg_matrix_free for the preconditioner side of the story:
// block-Jacobi vs the operator-probed semicoarsening AMG on this same
// matrix-free operator.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "linalg/block_jacobi.hpp"
#include "linalg/gmres.hpp"
#include "linalg/linear_operator.hpp"
#include "perf/data_movement.hpp"
#include "perf/report.hpp"
#include "physics/matrix_free_operator.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "portability/thread_pool.hpp"
#include "portability/timer.hpp"

using namespace mali;

namespace {

double arg_num(int argc, char** argv, const std::string& key, double dflt) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (key == argv[i]) return std::atof(argv[i + 1]);
  }
  return dflt;
}

}  // namespace

int main(int argc, char** argv) {
  physics::StokesFOConfig cfg;
  cfg.dx_m = arg_num(argc, argv, "--dx-km", 64.0) * 1e3;
  cfg.n_layers = static_cast<int>(arg_num(argc, argv, "--layers", 10));
  const int reps = static_cast<int>(arg_num(argc, argv, "--reps", 10));

  physics::StokesFOProblem problem(cfg);
  const auto U = problem.analytic_initial_guess();
  const std::size_t n = problem.n_dofs();
  std::printf(
      "Assembled vs matrix-free Jacobian apply — %zu cells, %zu dofs, %zu "
      "threads, %d reps\n\n",
      problem.mesh().n_cells(), n, pk::ThreadPool::instance().size(), reps);

  // Random apply direction (fixed seed: run-to-run comparable).
  std::mt19937_64 rng(20240814);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> x(n), y(n), F(n);
  for (auto& v : x) v = dist(rng);

  // ---- assembled path: setup = assembly, apply = SpMV ----
  auto J = problem.create_matrix();
  pk::Timer timer;
  problem.residual_and_jacobian(U, F, J);  // warm-up (allocates buffers)
  timer.reset();
  J.set_zero();
  problem.residual_and_jacobian(U, F, J);
  const double asm_setup_s = timer.seconds();
  const linalg::AssembledOperator Jop(J);
  Jop.apply(x, y);  // warm-up
  timer.reset();
  for (int r = 0; r < reps; ++r) Jop.apply(x, y);
  const double asm_apply_s = timer.seconds() / reps;

  // ---- matrix-free path: setup = linearize (block diagonal), apply =
  //      per-element tangent + scatter ----
  timer.reset();
  const auto op = problem.jacobian_operator(U);
  const double mf_setup_s = timer.seconds();
  op->apply(x, y);  // warm-up
  timer.reset();
  for (int r = 0; r < reps; ++r) op->apply(x, y);
  const double mf_apply_s = timer.seconds() / reps;

  // ---- byte model (perf/data_movement.hpp) ----
  perf::JacobianApplyModel m;
  m.n_rows = n;
  m.nnz = J.nnz();
  m.n_cells = problem.mesh().n_cells();
  m.n_nodes = problem.mesh().n_nodes();
  m.num_nodes = problem.workset().num_nodes;
  m.n_basal_faces = problem.mesh().base().n_cells();
  const double asm_bytes = static_cast<double>(m.assembled_stream_bytes());
  const double mf_bytes = static_cast<double>(m.matrix_free_stream_bytes());

  perf::Table t({"Jacobian mode", "setup (ms)", "apply (ms)",
                 "modeled MB/apply", "min MB", "bytes vs assembled"});
  t.add_row({"assembled SpMV", perf::fmt(asm_setup_s * 1e3, 4),
             perf::fmt(asm_apply_s * 1e3, 4), perf::fmt(asm_bytes / 1e6, 4),
             perf::fmt(m.assembled_min_bytes() / 1e6, 4),
             perf::fmt_speedup(1.0)});
  t.add_row({"matrix-free", perf::fmt(mf_setup_s * 1e3, 4),
             perf::fmt(mf_apply_s * 1e3, 4), perf::fmt(mf_bytes / 1e6, 4),
             perf::fmt(m.matrix_free_min_bytes() / 1e6, 4),
             perf::fmt_speedup(asm_bytes / mf_bytes)});
  t.print(std::cout);

  // ---- one preconditioned GMRES solve per mode, side by side ----
  std::vector<double> rhs(n);
  for (std::size_t i = 0; i < n; ++i) rhs[i] = -F[i];
  linalg::GmresConfig gcfg;
  const linalg::Gmres gmres(gcfg);
  linalg::BlockJacobiPreconditioner M(2);

  std::vector<double> dU(n, 0.0);
  M.compute(Jop);
  timer.reset();
  const auto asm_lin = gmres.solve(Jop, M, rhs, dU);
  const double asm_solve_s = timer.seconds();

  std::fill(dU.begin(), dU.end(), 0.0);
  M.compute(*op);
  timer.reset();
  const auto mf_lin = gmres.solve(*op, M, rhs, dU);
  const double mf_solve_s = timer.seconds();

  std::printf("\nBlock-Jacobi GMRES on J dU = -F (rel tol %.0e):\n",
              gcfg.rel_tol);
  perf::Table s({"Jacobian mode", "iterations", "rel residual", "solve (s)",
                 "modeled GB streamed"});
  s.add_row({"assembled SpMV", std::to_string(asm_lin.iterations),
             perf::fmt_sci(asm_lin.rel_residual), perf::fmt(asm_solve_s, 4),
             perf::fmt(asm_bytes * asm_lin.iterations / 1e9, 4)});
  s.add_row({"matrix-free", std::to_string(mf_lin.iterations),
             perf::fmt_sci(mf_lin.rel_residual), perf::fmt(mf_solve_s, 4),
             perf::fmt(mf_bytes * mf_lin.iterations / 1e9, 4)});
  s.print(std::cout);

  std::printf(
      "\nReading: identical preconditioning gives (near-)identical GMRES\n"
      "iteration counts — the operators agree to FP reassociation — while\n"
      "the modeled bytes/iteration drop %.1fx in matrix-free mode.  On a\n"
      "CPU host the recomputation makes each apply slower; on the HBM-bound\n"
      "GPUs of the paper the byte ratio is the quantity that matters.\n",
      asm_bytes / mf_bytes);
  return 0;
}
