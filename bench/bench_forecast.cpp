// Transient forecast engine throughput (DESIGN.md §14): model-years/hour
// and steps/hour for the coupled velocity–thickness–thermal cycle on the
// dome, with the per-phase wall-clock split (velocity / transport /
// thermal) from the driver's timers and the mass-budget residual pinned
// per configuration.
//
// The acceptance criteria this bench demonstrates and records:
//   * every configuration reaches the horizon (completed == true), and
//   * the per-step mass-budget identity holds to FP roundoff
//     (max relative residual <= 1e-10 — loose vs the 1e-12 test pin so
//     long benches with many steps keep headroom).
//
//   ./bench_forecast [--dx-km=F] [--layers=N] [--years=F]
//                    [--out=BENCH_forecast.json]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "physics/stokes_fo_problem.hpp"
#include "timestepping/forecast_driver.hpp"
#include "util/json_writer.hpp"

using namespace mali;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Row {
  std::string name;
  double wall_s = 0.0;
  int steps = 0;
  int velocity_solves = 0;
  int rejections = 0;
  double years = 0.0;
  double steps_per_hour = 0.0;
  double model_years_per_hour = 0.0;
  double velocity_frac = 0.0;
  double transport_frac = 0.0;
  double thermal_frac = 0.0;
  double max_mass_residual = 0.0;
  double volume_change_frac = 0.0;
  bool completed = false;
};

}  // namespace

int main(int argc, char** argv) {
  double dx_km = 220.0;
  int layers = 3;
  double years = 20.0;
  std::string out_path = "BENCH_forecast.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dx-km=", 8) == 0) dx_km = std::atof(argv[i] + 8);
    if (std::strncmp(argv[i], "--layers=", 9) == 0) layers = std::atoi(argv[i] + 9);
    if (std::strncmp(argv[i], "--years=", 8) == 0) years = std::atof(argv[i] + 8);
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  struct Config {
    const char* name;
    int velocity_every;
    bool thermal;
    mpas::FluxScheme flux;
    std::string forcing;
  };
  const Config configs[] = {
      {"smb_only_upwind", -1, false, mpas::FluxScheme::kUpwind, "constant"},
      {"frozen_velocity_muscl", 0, false, mpas::FluxScheme::kVanLeerMuscl,
       "ramp:anomaly=-0.2,start=1,end=10"},
      {"coupled_thermal", 2, true, mpas::FluxScheme::kVanLeerMuscl,
       "cycle:amplitude=0.3,period=5"},
  };

  std::printf("forecast bench: dome dx=%.0f km, %d layers, horizon %.0f yr\n\n",
              dx_km, layers, years);
  std::printf("%-22s %9s %6s %7s %9s %10s %8s %8s %8s %12s\n", "config",
              "wall [s]", "steps", "v.slv", "steps/hr", "m.yr/hr", "vel%",
              "trans%", "therm%", "mass resid");

  std::vector<Row> rows;
  bool all_completed = true, mass_ok = true;
  for (const Config& c : configs) {
    physics::StokesFOConfig pcfg;
    pcfg.dx_m = dx_km * 1e3;
    pcfg.n_layers = layers;
    physics::StokesFOProblem problem(pcfg);

    timestepping::ForecastConfig fcfg;
    fcfg.years = years;
    fcfg.forcing = c.forcing;
    fcfg.velocity_every = c.velocity_every;
    fcfg.thermal_enabled = c.thermal;
    fcfg.transport.flux = c.flux;
    fcfg.transport.time = mpas::TimeScheme::kHeunRk2;
    fcfg.transport.min_thickness = 0.0;
    fcfg.controller.dt_init = 0.25;
    fcfg.controller.dt_max = 2.0;
    fcfg.newton.max_iters = 10;

    timestepping::ForecastDriver driver(problem, fcfg);
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = driver.run();
    const double wall = seconds_since(t0);

    Row row;
    row.name = c.name;
    row.wall_s = wall;
    row.steps = res.steps;
    row.velocity_solves = res.velocity_solves;
    row.rejections = res.rejections;
    row.years = res.t_final;
    row.steps_per_hour = wall > 0.0 ? 3600.0 * res.steps / wall : 0.0;
    row.model_years_per_hour = wall > 0.0 ? 3600.0 * res.t_final / wall : 0.0;
    const double vel = res.timers.total("velocity");
    const double tra = res.timers.total("transport");
    const double the = res.timers.total("thermal");
    const double phases = vel + tra + the;
    if (phases > 0.0) {
      row.velocity_frac = vel / phases;
      row.transport_frac = tra / phases;
      row.thermal_frac = the / phases;
    }
    row.max_mass_residual = res.max_mass_residual;
    row.volume_change_frac =
        res.volume_initial > 0.0
            ? (res.volume_final - res.volume_initial) / res.volume_initial
            : 0.0;
    row.completed = res.completed;
    all_completed = all_completed && res.completed;
    mass_ok = mass_ok && res.max_mass_residual <= 1e-10;

    std::printf("%-22s %9.3f %6d %7d %9.0f %10.0f %7.1f%% %7.1f%% %7.1f%% %12.3e%s\n",
                row.name.c_str(), row.wall_s, row.steps, row.velocity_solves,
                row.steps_per_hour, row.model_years_per_hour,
                100.0 * row.velocity_frac, 100.0 * row.transport_frac,
                100.0 * row.thermal_frac, row.max_mass_residual,
                row.completed ? "" : "  [INCOMPLETE]");
    rows.push_back(row);
  }

  std::printf("\nall runs completed:            %s\n",
              all_completed ? "PASS" : "FAIL");
  std::printf("mass residual <= 1e-10:        %s\n", mass_ok ? "PASS" : "FAIL");

  // JSON record for CI artifact upload and the repo-root snapshot.  Fixed
  // key order, doubles shortest-round-trip (never truncated): identical
  // measurements produce byte-identical files.
  util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("forecast");
  w.key("problem").begin_object();
  w.key("dx_km").value(dx_km);
  w.key("layers").value(layers);
  w.key("years").value(years);
  w.end_object();
  w.key("rows").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.key("config").value(r.name);
    w.key("wall_s").value(r.wall_s);
    w.key("steps").value(r.steps);
    w.key("velocity_solves").value(r.velocity_solves);
    w.key("rejections").value(r.rejections);
    w.key("steps_per_hour").value(r.steps_per_hour);
    w.key("model_years_per_hour").value(r.model_years_per_hour);
    w.key("velocity_frac").value(r.velocity_frac);
    w.key("transport_frac").value(r.transport_frac);
    w.key("thermal_frac").value(r.thermal_frac);
    w.key("max_mass_residual").value(r.max_mass_residual);
    w.key("volume_change_frac").value(r.volume_change_frac);
    w.key("completed").value(r.completed);
    w.end_object();
  }
  w.end_array();
  w.key("all_completed").value(all_completed);
  w.key("mass_residual_ok").value(mass_ok);
  w.end_object();
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(w.str().c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "could not open %s for writing\n", out_path.c_str());
    return 1;
  }
  return (all_completed && mass_ok) ? 0 : 2;
}
