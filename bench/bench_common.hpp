#pragma once
// Shared plumbing for the paper-table benches: a default study configured
// at the paper's workset size (~256K hexahedra), simulation-scale handling
// via argv/environment, and the paper's published numbers for side-by-side
// PAPER vs MODEL columns.

#include <cstdlib>
#include <cstring>
#include <string>

#include "core/study.hpp"

namespace mali::bench {

/// Parses `--scale=<f>` / `--cells=<n>` (or MALI_SIM_SCALE / MALI_SIM_CELLS
/// env vars).  The default 0.25 down-samples the cache simulation 4x while
/// preserving traffic ratios; pass --scale=1 for the exact full-size replay.
inline core::StudyConfig study_config(int argc, char** argv) {
  core::StudyConfig cfg;
  cfg.n_cells = 262144;  // the paper's ~256K hexahedra per GPU
  cfg.sim.scale = 0.25;
  if (const char* s = std::getenv("MALI_SIM_SCALE")) cfg.sim.scale = std::atof(s);
  if (const char* s = std::getenv("MALI_SIM_CELLS")) {
    cfg.n_cells = static_cast<std::size_t>(std::atoll(s));
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      cfg.sim.scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--cells=", 8) == 0) {
      cfg.n_cells = static_cast<std::size_t>(std::atoll(argv[i] + 8));
    }
  }
  return cfg;
}

// ---- paper-reported values (for PAPER columns and EXPERIMENTS.md) ----

struct PaperTable3Row {
  const char* kernel;
  double base_a100, opt_a100, base_gcd, opt_gcd;  // seconds
};
inline constexpr PaperTable3Row kPaperTable3[] = {
    {"Jacobian", 1.2e-1, 3.6e-2, 1.4e-1, 5.4e-2},
    {"Residual", 3.7e-3, 1.7e-3, 8.3e-3, 2.4e-3},
};

struct PaperTable2Row {
  const char* config;
  unsigned max_threads, min_blocks;  // 0,0 = default
  double jac_time, res_time;
  int jac_arch, jac_accum, res_arch, res_accum;
};
inline constexpr PaperTable2Row kPaperTable2[] = {
    {"Default", 0, 0, 8.3e-2, 2.8e-3, 128, 0, 84, 4},
    {"128,2", 128, 2, 5.4e-2, 2.4e-3, 128, 128, 128, 0},
    {"128,4", 128, 4, 8.3e-2, 2.6e-3, 128, 0, 84, 4},
    {"256,2", 256, 2, 5.4e-2, 2.4e-3, 128, 128, 128, 0},
    {"1024,2", 1024, 2, 8.5e-2, 3.0e-3, 128, 0, 84, 4},
};

struct PaperTable4Row {
  const char* variant;  // Baseline / Optimized
  const char* eff;      // e_time / e_DM
  const char* kernel;
  double a100, gcd, phi;
};
inline constexpr PaperTable4Row kPaperTable4[] = {
    {"Baseline", "e_time", "Jacobian", 0.39, 0.38, 0.39},
    {"Baseline", "e_time", "Residual", 0.62, 0.42, 0.50},
    {"Baseline", "e_DM", "Jacobian", 0.53, 0.42, 0.47},
    {"Baseline", "e_DM", "Residual", 0.65, 0.41, 0.50},
    {"Optimized", "e_time", "Jacobian", 0.79, 0.53, 0.63},
    {"Optimized", "e_time", "Residual", 0.88, 0.60, 0.71},
    {"Optimized", "e_DM", "Jacobian", 0.84, 0.81, 0.83},
    {"Optimized", "e_DM", "Residual", 1.00, 1.00, 1.00},
};

}  // namespace mali::bench
