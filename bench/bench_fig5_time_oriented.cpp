// Reproduces Figs. 4 and 5: the time-oriented performance-portability model.
// For each kernel/variant/architecture it prints the point (HBM GBytes
// moved, time per invocation) together with the two bounds — the
// architectural diagonal (bytes / peak bandwidth) and the application wall
// (theoretical minimum data movement) — and the resulting efficiencies.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "perf/report.hpp"
#include "perf/time_oriented.hpp"

using namespace mali;

int main(int argc, char** argv) {
  const core::OptimizationStudy study(bench::study_config(argc, argv));
  const auto cases = study.run_standard_cases();

  std::printf(
      "FIG. 5 — time-oriented performance portability model\n"
      "(modeled GPUs, %zu cells)\n\n",
      study.config().n_cells);

  // Fig. 4's illustration: bounds for each kernel (application wall and the
  // achievable corner on each machine).
  std::printf("Application bounds (theoretical minimum data movement):\n");
  for (const auto kind :
       {core::KernelKind::kJacobian, core::KernelKind::kResidual}) {
    const auto sim =
        study.simulate(study.a100(), kind, physics::KernelVariant::kOptimized);
    std::printf("  %-8s  min bytes = %7.3f GB;  achievable corner: %.3f ms "
                "(A100), %.3f ms (GCD)\n",
                core::to_string(kind), sim.min_bytes / 1e9,
                1e3 * sim.min_bytes / study.a100().hbm_bw_bytes_per_s,
                1e3 * sim.min_bytes / study.mi250x_gcd().hbm_bw_bytes_per_s);
  }
  std::printf("\n");

  perf::Table t({"Kernel", "Variant", "Machine", "GB moved", "time (ms)",
                 "arch-bound time (ms)", "e_time", "e_DM"});
  for (const auto& c : cases) {
    const auto p = study.to_point(c);
    t.add_row({p.kernel, p.variant, p.machine, perf::fmt(p.bytes_moved / 1e9, 4),
               perf::fmt(p.time_s * 1e3, 4),
               perf::fmt(p.arch_bound_time_s() * 1e3, 4),
               perf::fmt_pct(p.e_time()), perf::fmt_pct(p.e_dm())});
  }
  t.print(std::cout);

  // CSV series for re-plotting Fig. 5.
  std::printf(
      "\n# CSV\nmachine,kernel,variant,gbytes_moved,time_ms,min_gbytes,"
      "min_time_ms\n");
  for (const auto& c : cases) {
    const auto p = study.to_point(c);
    std::printf("%s,%s,%s,%.4f,%.4f,%.4f,%.4f\n", p.machine.c_str(),
                p.kernel.c_str(), p.variant.c_str(), p.bytes_moved / 1e9,
                p.time_s * 1e3, p.min_bytes / 1e9, p.min_time_s() * 1e3);
  }

  std::printf(
      "\nPaper's takeaways, checked against the table above:\n"
      "  * baseline implementations sit far from both bounds (poor data\n"
      "    locality);\n"
      "  * optimized implementations sit near the application wall —\n"
      "    near-minimal data movement on both architectures;\n"
      "  * the Jacobian moves an order of magnitude more data than the\n"
      "    Residual (17x on the SFad-typed arrays; the double-typed\n"
      "    wBF/wGradBF arrays compress the total ratio — see "
      "EXPERIMENTS.md).\n");
  return 0;
}
