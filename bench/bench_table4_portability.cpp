// Reproduces Table IV: the performance-portability metric Φ computed from
// the time-per-invocation efficiency (e_time) and the GPU HBM data-movement
// efficiency (e_DM) across {A100, MI250X GCD}, for the baseline and
// optimized Jacobian/Residual kernels.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "perf/portability_metric.hpp"
#include "perf/report.hpp"

using namespace mali;

int main(int argc, char** argv) {
  const core::OptimizationStudy study(bench::study_config(argc, argv));
  const auto cases = study.run_standard_cases();

  auto find = [&](core::KernelKind kind, physics::KernelVariant v,
                  const std::string& arch) -> const core::CaseResult& {
    for (const auto& c : cases) {
      if (c.kind == kind && c.variant == v && c.arch == arch) return c;
    }
    throw mali::Error("case not found");
  };

  std::printf(
      "TABLE IV — performance portability metric Phi from e_time and e_DM\n"
      "(modeled GPUs, %zu cells; paper values in brackets)\n\n",
      study.config().n_cells);

  perf::Table t({"Variant", "Efficiency", "Kernel", "A100", "1 GCD MI250X",
                 "Phi"});
  for (const auto& row : bench::kPaperTable4) {
    const auto variant = std::string(row.variant) == "Baseline"
                             ? physics::KernelVariant::kBaseline
                             : physics::KernelVariant::kOptimized;
    const auto kind = std::string(row.kernel) == "Jacobian"
                          ? core::KernelKind::kJacobian
                          : core::KernelKind::kResidual;
    const bool time_eff = std::string(row.eff) == "e_time";
    const auto& ca = find(kind, variant, study.a100().name);
    const auto& cg = find(kind, variant, study.mi250x_gcd().name);
    const double ea = time_eff ? ca.sim.e_time() : ca.sim.e_dm();
    const double eg = time_eff ? cg.sim.e_time() : cg.sim.e_dm();
    const double f = perf::phi(std::vector<double>{ea, eg});
    t.add_row({row.variant, row.eff, row.kernel,
               perf::fmt_pct(ea) + "  [" + perf::fmt_pct(row.a100) + "]",
               perf::fmt_pct(eg) + "  [" + perf::fmt_pct(row.gcd) + "]",
               perf::fmt_pct(f) + "  [" + perf::fmt_pct(row.phi) + "]"});
  }
  t.print(std::cout);

  // The headline deltas.
  auto phi_of = [&](physics::KernelVariant v, core::KernelKind k, bool time) {
    const auto& ca = find(k, v, study.a100().name);
    const auto& cg = find(k, v, study.mi250x_gcd().name);
    return perf::phi(std::vector<double>{
        time ? ca.sim.e_time() : ca.sim.e_dm(),
        time ? cg.sim.e_time() : cg.sim.e_dm()});
  };
  std::printf("\nPhi improvements, optimized over baseline:\n");
  for (const auto kind :
       {core::KernelKind::kJacobian, core::KernelKind::kResidual}) {
    for (const bool time_eff : {true, false}) {
      const double b = phi_of(physics::KernelVariant::kBaseline, kind, time_eff);
      const double o = phi_of(physics::KernelVariant::kOptimized, kind, time_eff);
      std::printf("  %-8s %-7s  %3.0f%% -> %3.0f%%  (+%.0f points)\n",
                  core::to_string(kind), time_eff ? "e_time" : "e_DM",
                  100 * b, 100 * o, 100 * (o - b));
    }
  }
  std::printf(
      "\nPaper's takeaway: optimizations improve Phi by 20-50 points, with\n"
      "the largest gains in the data-movement efficiency — reproduced.\n"
      "Note: the paper's baseline e_time values (Table IV) are mutually\n"
      "inconsistent with its Table III times and Fig. 3 bandwidths; ours\n"
      "satisfy e_time = (achieved BW fraction) x e_DM by construction.\n");
  return 0;
}
