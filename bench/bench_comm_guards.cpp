// Comm-guard overhead: the fault-tolerance layer frames every halo
// payload and reduction contribution with an FNV-1a checksum and bounds
// every wait with a timeout (DESIGN.md §16).  Both are O(payload) scans /
// O(1) bookkeeping next to the assembly and Krylov work they protect, so
// the guarded distributed solve must stay within a few percent of the
// unguarded one — and bit-identical, since the guards only observe.
//
//   ./bench_comm_guards [--dx-km=F] [--layers=N] [--ranks=N] [--reps=N]
//                       [--gate-pct=F] [--out=BENCH_comm_guards.json]
//
// Exit status: 0 when the overhead gate holds, 2 when it does not, 1 on
// I/O failure.  CI uploads the JSON as an artifact.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dist/dist_solver.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "util/json_writer.hpp"

using namespace mali;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  double dx_km = 150.0, gate_pct = 3.0;
  int layers = 3, ranks = 4, reps = 5;
  std::string out_path = "BENCH_comm_guards.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dx-km=", 8) == 0) dx_km = std::atof(argv[i] + 8);
    if (std::strncmp(argv[i], "--layers=", 9) == 0) layers = std::atoi(argv[i] + 9);
    if (std::strncmp(argv[i], "--ranks=", 8) == 0) ranks = std::atoi(argv[i] + 8);
    if (std::strncmp(argv[i], "--reps=", 7) == 0) reps = std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--gate-pct=", 11) == 0)
      gate_pct = std::atof(argv[i] + 11);
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }

  physics::StokesFOConfig cfg;
  cfg.dx_m = dx_km * 1e3;
  cfg.n_layers = layers;
  physics::StokesFOProblem problem(cfg);
  std::printf("comm-guard bench: dome dx=%.0f km, %d layers, %zu dofs, "
              "%d ranks, best of %d reps\n\n",
              dx_km, layers, problem.n_dofs(), ranks, reps);

  dist::DistConfig base;
  base.ranks = ranks;
  base.decomp = dist::Decomp::kStrips;
  base.jacobian = linalg::JacobianMode::kMatrixFree;
  base.overlap = true;
  base.newton.max_iters = 12;
  base.newton.rel_tol = 1e-8;
  base.newton.gmres.rel_tol = 1e-6;
  base.newton.gmres.max_iters = 600;
  base.newton.gmres.restart = 200;

  dist::DistConfig guarded_cfg = base;
  guarded_cfg.guards.checksums = true;
  guarded_cfg.guards.timeout_s = 30.0;

  // Interleave the reps so thermal/allocator drift hits both arms evenly;
  // min-of-reps discards scheduler noise.
  double t_plain = 1e300, t_guarded = 1e300;
  dist::DistResult r_plain, r_guarded;
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    r_plain = dist::solve_distributed(problem, base);
    t_plain = std::min(t_plain, seconds_since(t0));
    t0 = std::chrono::steady_clock::now();
    r_guarded = dist::solve_distributed(problem, guarded_cfg);
    t_guarded = std::min(t_guarded, seconds_since(t0));
  }

  // The guards only observe: the guarded solve is bitwise the plain one.
  bool bit_identical = r_plain.converged == r_guarded.converged &&
                       r_plain.U.size() == r_guarded.U.size();
  if (bit_identical) {
    for (std::size_t i = 0; i < r_plain.U.size(); ++i) {
      if (std::memcmp(&r_plain.U[i], &r_guarded.U[i], sizeof(double)) != 0) {
        bit_identical = false;
        break;
      }
    }
  }

  const double overhead_pct = 100.0 * (t_guarded / t_plain - 1.0);
  const bool gate_ok = overhead_pct <= gate_pct;
  std::printf("%-22s %10s %12s\n", "arm", "wall [s]", "checksums");
  std::printf("%-22s %10.3f %12s%s\n", "unguarded", t_plain, "off",
              r_plain.converged ? "" : "  [NOT CONVERGED]");
  std::printf("%-22s %10.3f %12s%s\n", "guarded", t_guarded, "on",
              r_guarded.converged ? "" : "  [NOT CONVERGED]");
  std::printf("\noverhead: %+.2f%% (gate <= %.1f%%): %s\n", overhead_pct,
              gate_pct, gate_ok ? "PASS" : "FAIL");
  std::printf("guarded solve bit-identical:      %s\n",
              bit_identical ? "PASS" : "FAIL");

  util::JsonWriter w;
  w.begin_object();
  w.key("bench").value("comm_guards");
  w.key("problem").begin_object();
  w.key("dx_km").value(dx_km);
  w.key("layers").value(layers);
  w.key("dofs").value(problem.n_dofs());
  w.end_object();
  w.key("ranks").value(ranks);
  w.key("reps").value(reps);
  w.key("wall_s_unguarded").value(t_plain);
  w.key("wall_s_guarded").value(t_guarded);
  w.key("overhead_pct").value(overhead_pct);
  w.key("gate_pct").value(gate_pct);
  w.key("gate_ok").value(gate_ok);
  w.key("bit_identical").value(bit_identical);
  w.key("converged").value(r_plain.converged && r_guarded.converged);
  w.end_object();
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(w.str().c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "could not open %s for writing\n", out_path.c_str());
    return 1;
  }
  return (gate_ok && bit_identical) ? 0 : 2;
}
