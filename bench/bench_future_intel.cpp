// Extension (the paper's stated future work): "explore portability on INTEL
// GPUs" and "use our performance portability model to evaluate several
// kernels".  Adds a modeled Intel PVC stack to the platform set and
// recomputes the time-oriented efficiencies and Φ over three vendors.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "perf/portability_metric.hpp"
#include "perf/report.hpp"

using namespace mali;

int main(int argc, char** argv) {
  const auto cfg = bench::study_config(argc, argv);
  const core::OptimizationStudy study(cfg);
  const auto pvc = gpusim::make_pvc_stack();

  std::printf(
      "FUTURE-WORK EXTENSION — three-vendor portability (A100, MI250X GCD, "
      "Intel PVC stack)\n(%zu cells)\n\n",
      cfg.n_cells);

  std::vector<gpusim::GpuArch> platforms = {study.a100(), study.mi250x_gcd(),
                                            pvc};

  perf::Table t({"Kernel", "Variant", "Machine", "time (ms)", "GB moved",
                 "e_time", "e_DM"});
  struct PhiAcc {
    std::vector<double> et, edm;
  };

  for (const auto kind :
       {core::KernelKind::kJacobian, core::KernelKind::kResidual}) {
    for (const auto v : {physics::KernelVariant::kBaseline,
                         physics::KernelVariant::kOptimized}) {
      PhiAcc acc;
      for (const auto& arch : platforms) {
        const pk::LaunchConfig launch =
            (arch.has_accum_vgprs && v == physics::KernelVariant::kOptimized)
                ? pk::LaunchConfig{128, 2}
                : pk::LaunchConfig{};
        const auto sim = study.simulate(arch, kind, v, launch);
        acc.et.push_back(sim.e_time());
        acc.edm.push_back(sim.e_dm());
        t.add_row({core::to_string(kind), physics::to_string(v), arch.name,
                   perf::fmt(sim.time_s * 1e3, 4),
                   perf::fmt(sim.hbm_bytes / 1e9, 4),
                   perf::fmt_pct(sim.e_time()), perf::fmt_pct(sim.e_dm())});
      }
      std::printf("Phi(%s, %s) over 3 vendors: e_time %s, e_DM %s\n",
                  core::to_string(kind), physics::to_string(v),
                  perf::fmt_pct(perf::phi(acc.et)).c_str(),
                  perf::fmt_pct(perf::phi(acc.edm)).c_str());
    }
  }
  std::printf("\n");
  t.print(std::cout);

  std::printf(
      "\nReading: PVC's 204 MB L2 absorbs even the baseline's global\n"
      "read-modify-write accumulators, so its e_DM stays high — the\n"
      "optimizations there pay off mostly through the instruction stream.\n"
      "The data-locality optimizations remain portable: optimized e_DM is\n"
      "near the application bound on all three vendors.\n");
  return 0;
}
