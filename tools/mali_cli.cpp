// mali — the MiniMALI command-line driver.
//
//   mali solve     [--dx-km F] [--layers N] [--steps N] [--variant NAME]
//                  [--thermal] [--weertman] [--csv PATH] [--ppm PATH]
//   mali study     [--cells N] [--scale F] [--out report.md]
//   mali transport [--dx-km F] [--layers N] [--years F] [--ppm PATH]
//   mali ensemble  --manifest FILE [--out results.json] [--cache DIR]
//   mali export-jacobian [--dx-km F] [--layers N] --out PATH.mtx
//   mali archs
//
// Every subcommand exercises the public library API only.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <sstream>

#include "core/report_generator.hpp"
#include "core/study.hpp"
#include "dist/dist_solver.hpp"
#include "ensemble/engine.hpp"
#include "perf/phase_report.hpp"
#include "io/field_writer.hpp"
#include "io/vtk_writer.hpp"
#include "linalg/block_jacobi.hpp"
#include "linalg/linear_operator.hpp"
#include "linalg/matrix_market.hpp"
#include "linalg/semicoarsening_amg.hpp"
#include "perf/data_movement.hpp"
#include "perf/reduction_latency.hpp"
#include "mpas/fv_transport.hpp"
#include "nonlinear/newton.hpp"
#include "physics/stokes_fo_problem.hpp"
#include "resilience/comm_fault.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/guards.hpp"
#include "timestepping/forecast_driver.hpp"

namespace {

using namespace mali;

/// Tiny flag parser: --key value and --key (boolean) forms.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) continue;
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }
  [[nodiscard]] bool has(const std::string& k) const {
    return values_.count(k) > 0;
  }
  [[nodiscard]] double num(const std::string& k, double dflt) const {
    auto it = values_.find(k);
    return it == values_.end() || it->second.empty() ? dflt
                                                     : std::atof(it->second.c_str());
  }
  [[nodiscard]] std::string str(const std::string& k,
                                const std::string& dflt = "") const {
    auto it = values_.find(k);
    return it == values_.end() ? dflt : it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

physics::StokesFOConfig problem_config(const Args& args) {
  physics::StokesFOConfig cfg;
  cfg.dx_m = args.num("dx-km", 64.0) * 1e3;
  cfg.n_layers = static_cast<int>(args.num("layers", 10));
  if (args.has("thermal")) cfg.thermal_viscosity = true;
  if (args.has("weertman")) cfg.sliding.law = physics::SlidingLaw::kWeertman;
  if (args.has("workset")) {
    cfg.workset_size = static_cast<std::size_t>(args.num("workset", 0));
  }
  const std::string variant = args.str("variant", "optimized");
  const std::map<std::string, physics::KernelVariant> variants = {
      {"baseline", physics::KernelVariant::kBaseline},
      {"optimized", physics::KernelVariant::kOptimized},
      {"loop-opt", physics::KernelVariant::kLoopOptOnly},
      {"fused", physics::KernelVariant::kFusedOnly},
      {"local-accum", physics::KernelVariant::kLocalAccumOnly},
  };
  const auto it = variants.find(variant);
  MALI_CHECK_MSG(it != variants.end(), "unknown --variant: " + variant);
  cfg.variant = it->second;
  // Element→global scatter strategy (serial | colored | atomic).
  cfg.scatter =
      physics::scatter_mode_from_string(args.str("scatter", "colored"));
  // Jacobian representation (assembled | matrix-free).
  cfg.jacobian =
      linalg::jacobian_mode_from_string(args.str("jacobian", "assembled"));
  // SIMD element batching for the fused residual/tangent kernels
  // (auto | off | 1 | 2 | 4 | 8).  The CLI defaults to auto (native
  // width); the in-code config default stays scalar.
  cfg.simd_width = physics::simd_width_from_string(args.str("simd", "auto"));
  // Manufactured-solution mode (verification runs and the AMG equivalence
  // checks use it).
  if (args.has("mms")) cfg.mms.enabled = true;
  return cfg;
}

/// The preconditioner named by --precond.  All three are consumable from
/// both Jacobian modes: the AMG probes the fine matrix from operator
/// applies on the matrix-free path.  The default SGS smoother runs on the
/// probed matrix, reproducing the assembled+AMG GMRES counts exactly;
/// --smoother chebyshev keeps level 0 fully matrix-free instead (operator
/// applies + probed diagonal, the probed matrix never streamed after
/// setup) at a modest iteration-count premium.
std::unique_ptr<linalg::Preconditioner> make_preconditioner(
    const Args& args, const physics::StokesFOProblem& problem) {
  const std::string precond = args.str("precond", "amg");
  if (precond == "jacobi") {
    return std::make_unique<linalg::JacobiPreconditioner>();
  }
  if (precond == "block-jacobi") {
    return std::make_unique<linalg::BlockJacobiPreconditioner>(2);
  }
  MALI_CHECK_MSG(precond == "amg", "unknown --precond: " + precond +
                                       " (jacobi | block-jacobi | amg)");
  linalg::AmgConfig acfg;
  const std::string smoother = args.str("smoother", "sgs");
  if (smoother == "chebyshev") {
    acfg.smoother = linalg::AmgSmoother::kChebyshev;
  } else {
    MALI_CHECK_MSG(smoother == "sgs", "unknown --smoother: " + smoother +
                                          " (sgs | chebyshev)");
  }
  return std::make_unique<linalg::SemicoarseningAmg>(problem.extrusion_info(),
                                                     acfg);
}

/// perf::JacobianApplyModel filled in from the problem's mesh/graph sizes.
perf::JacobianApplyModel jacobian_apply_model(
    physics::StokesFOProblem& problem) {
  perf::JacobianApplyModel m;
  m.n_rows = problem.n_dofs();
  m.nnz = problem.create_matrix().nnz();  // graph only, never assembled
  m.n_cells = problem.mesh().n_cells();
  m.n_nodes = problem.mesh().n_nodes();
  m.num_nodes = problem.workset().num_nodes;
  m.n_basal_faces =
      problem.config().mms.enabled ? 0 : problem.mesh().base().n_cells();
  return m;
}

/// Modeled HBM traffic of one Jacobian apply (y = J x) in both modes, per
/// perf::JacobianApplyModel — the bytes a GMRES iteration streams.
void print_jacobian_apply_model(physics::StokesFOProblem& problem) {
  const perf::JacobianApplyModel m = jacobian_apply_model(problem);
  const double asm_b = static_cast<double>(m.assembled_stream_bytes());
  const double mf_b = static_cast<double>(m.matrix_free_stream_bytes());
  std::printf("modeled bytes per GMRES iteration (operator apply only):\n");
  std::printf("  assembled SpMV  %10.3f MB  (min %10.3f MB)\n", asm_b / 1e6,
              m.assembled_min_bytes() / 1e6);
  std::printf("  matrix-free     %10.3f MB  (min %10.3f MB)  %.2fx less\n",
              mf_b / 1e6, m.matrix_free_min_bytes() / 1e6, asm_b / mf_b);
}

/// Modeled probe-setup and V-cycle traffic of the semicoarsening AMG, per
/// perf::AmgCycleModel — what the operator-probed preconditioner costs at
/// setup and what each application streams.
void print_amg_cycle_model(physics::StokesFOProblem& problem,
                           const linalg::SemicoarseningAmg& amg,
                           bool matrix_free) {
  const perf::JacobianApplyModel j = jacobian_apply_model(problem);
  perf::AmgCycleModel m;
  m.fine_apply_bytes = matrix_free ? j.matrix_free_stream_bytes()
                                   : j.assembled_stream_bytes();
  m.probe_applies = amg.probe_applies();
  m.fine_matrix_free = amg.fine_matrix_free();
  for (std::size_t l = 0; l < amg.n_levels(); ++l) {
    m.level_rows.push_back(amg.level_dofs(l));
    m.level_nnz.push_back(amg.level_nnz(l));
  }
  std::printf(
      "modeled AMG traffic (%zu levels, %s fine level):\n"
      "  setup  %10.3f MB  (%zu probe applies + Galerkin streams)\n"
      "  V-cycle %9.3f MB per application\n",
      amg.n_levels(), m.fine_matrix_free ? "matrix-free" : "assembled",
      m.setup_bytes() / 1e6, m.probe_applies, m.vcycle_bytes() / 1e6);
}

/// Distributed fault-tolerance surface shared by `solve --ranks` and
/// `forecast --ranks` (DESIGN.md §16): comm-guard flags, the "comm:"
/// fault-spec dispatch, and the --resilience mapping onto the coordinated
/// restart loop.  When `dispatch_solver_fault` is false a non-comm
/// --inject-fault spec is left for the caller (the forecast carries solver
/// faults through its one-shot injector, not through DistConfig).
void configure_dist_resilience(const Args& args, dist::DistConfig& dcfg,
                               bool dispatch_solver_fault) {
  if (args.has("comm-guards")) dcfg.guards.checksums = true;
  dcfg.guards.timeout_s =
      args.num("comm-timeout", args.has("comm-guards") ? 30.0 : 0.0);
  dcfg.max_restarts = static_cast<int>(args.num("max-restarts", 0));
  dcfg.restart_backoff_s = args.num("restart-backoff", 0.0);
  if (args.has("inject-fault")) {
    const std::string spec = args.str("inject-fault");
    if (resilience::is_comm_fault_spec(spec)) {
      dcfg.inject_comm_fault = true;
      dcfg.comm_fault = resilience::comm_fault_spec_from_string(spec);
      // Detection needs the guards armed: checksums catch corruption,
      // bounded waits catch drops, stragglers, and dead ranks.
      dcfg.guards.checksums = true;
      if (dcfg.guards.timeout_s <= 0.0) dcfg.guards.timeout_s = 0.25;
      std::printf("comm fault injection: %s\n",
                  resilience::to_string(dcfg.comm_fault).c_str());
    } else if (dispatch_solver_fault) {
      dcfg.inject_solver_fault = true;
      dcfg.solver_fault = resilience::fault_spec_from_string(spec);
      std::printf("fault injection: %s\n",
                  resilience::to_string(dcfg.solver_fault).c_str());
    }
  }
  if (args.has("resilience")) {
    dcfg.solver_guards = true;
    dcfg.guards.checksums = true;
    dcfg.checkpoint = true;
    if (dcfg.max_restarts < 2) dcfg.max_restarts = 2;
  }
  // Rollback is pointless without a checkpoint to roll back to.
  if (dcfg.max_restarts > 0) dcfg.checkpoint = true;
}

/// `mali solve --ranks N`: the in-process domain-decomposed solve.  The
/// SPMD rank runtime mirrors an MPI run (real halo exchange, rank-reduced
/// norms); the per-rank preconditioners are the subdomain-local ones
/// (none | jacobi | block-jacobi).
int cmd_solve_distributed(const Args& args) {
  physics::StokesFOProblem problem(problem_config(args));
  dist::DistConfig dcfg;
  dcfg.ranks = static_cast<int>(args.num("ranks", 2));
  dcfg.decomp = dist::decomp_from_string(args.str("decomp", "strips"));
  dcfg.overlap = args.has("halo-overlap");
  dcfg.jacobian = problem.config().jacobian;
  dcfg.precond = args.str("precond", "block-jacobi");
  dcfg.krylov = linalg::krylov_kind_from_string(args.str("krylov", "gmres"));
  dcfg.newton.max_iters = static_cast<int>(args.num("steps", 8));
  dcfg.verbose = true;
  configure_dist_resilience(args, dcfg, /*dispatch_solver_fault=*/true);
  if (args.has("checkpoint")) dcfg.checkpoint = true;
  if (args.has("guards")) dcfg.solver_guards = true;

  std::printf(
      "mesh: %zu hexahedra, %zu dofs (%s Jacobian)\n"
      "distributed: %d ranks, %s decomposition, %s preconditioner, %s "
      "krylov, halo overlap %s\n",
      problem.mesh().n_cells(), problem.n_dofs(),
      linalg::to_string(problem.config().jacobian), dcfg.ranks,
      dist::to_string(dcfg.decomp), dcfg.precond.c_str(),
      linalg::to_string(dcfg.krylov), dcfg.overlap ? "on" : "off");
  if (dcfg.guards.checksums || dcfg.guards.bounded()) {
    std::printf("comm guards: checksums %s, wait timeout %s\n",
                dcfg.guards.checksums ? "on" : "off",
                dcfg.guards.bounded()
                    ? (std::to_string(dcfg.guards.timeout_s) + " s").c_str()
                    : "unbounded");
  }
  if (dcfg.max_restarts > 0) {
    std::printf("coordinated restart: up to %d attempt(s)%s\n",
                dcfg.max_restarts,
                dcfg.checkpoint ? ", replicated checkpoint rollback" : "");
  }

  const auto U0 = problem.analytic_initial_guess();
  dist::DistResult res;
  dist::DistRecoveryLog rlog;
  try {
    res = dist::solve_distributed(problem, dcfg, &U0, &rlog);
  } catch (const resilience::CommFaultError& e) {
    // Typed comm fault that survived the restart budget: fail loudly with
    // the fault record and the restart log's tail, never a hang.
    std::fprintf(stderr, "%s\n", e.fault().describe().c_str());
    if (!rlog.empty()) {
      std::fprintf(stderr, "last restart attempts:\n%s", rlog.tail().c_str());
    }
    return 3;
  } catch (const resilience::SolverFaultError& e) {
    std::fprintf(stderr, "%s\n", e.fault().describe().c_str());
    if (!rlog.empty()) {
      std::fprintf(stderr, "last restart attempts:\n%s", rlog.tail().c_str());
    }
    return 3;
  }
  if (res.restarts > 0) {
    std::printf("coordinated restarts: %d (recovered)\n%s", res.restarts,
                res.recovery.to_string().c_str());
  }

  std::printf("\n%-5s %11s %10s %10s %5s %12s %12s %12s %11s\n", "rank",
              "cells", "owned cols", "halo cols", "nbrs", "kernel (s)",
              "halo (s)", "total (s)", "halo MB");
  for (std::size_t r = 0; r < res.ranks.size(); ++r) {
    const auto& rep = res.ranks[r];
    std::printf("%-5zu %11zu %10zu %10zu %5d %12.4f %12.4f %12.4f %11.3f\n",
                r, rep.owned_cells, rep.owned_columns, rep.halo_columns,
                rep.n_neighbors, rep.kernel_s, rep.halo.total_s(),
                rep.total_s,
                static_cast<double>(rep.halo.bytes_sent) / 1e6);
  }
  std::printf("partition imbalance: %.3f, max neighbors: %d\n",
              res.partition.imbalance(), res.partition.max_neighbors());
  // Reduction-latency model next to the measured reduction counts (rank 0
  // is representative: the injected inner product keeps all ranks in
  // lockstep, so every rank issues the identical collective sequence).
  perf::ReductionLatencyModel rlm;
  rlm.ranks = dcfg.ranks;
  rlm.restart = dcfg.newton.gmres.restart;
  const dist::CommCounters& cc = res.ranks[0].comm;
  std::printf(
      "reductions (rank 0, measured): %zu collectives, %zu values reduced\n"
      "reduction model @ %d ranks: classic gmres %.1f reductions/iter "
      "(%.2f us sync), pipelined 1 (%.2f us, %.1fx less sync)\n",
      cc.allreduces, cc.reduced_values, dcfg.ranks,
      rlm.classic_gmres_avg_reductions(),
      rlm.classic_gmres_sync_per_iter_s() * 1e6,
      rlm.pipelined_gmres_sync_per_iter_s() * 1e6, rlm.gmres_sync_ratio());
  std::printf("Newton: %s in %d steps, ||F|| = %.3e\n",
              res.converged ? "converged" : "NOT converged",
              res.newton_iters, res.residual_norm);
  std::printf("mean velocity: %.6f m/yr\n",
              problem.mean_velocity(res.U));
  return res.converged ? 0 : 1;
}

int cmd_solve(const Args& args) {
  if (args.has("ranks")) return cmd_solve_distributed(args);
  physics::StokesFOProblem problem(problem_config(args));
  const bool matrix_free =
      problem.config().jacobian == linalg::JacobianMode::kMatrixFree;
  std::printf("mesh: %zu hexahedra, %zu dofs (%s Jacobian)\n",
              problem.mesh().n_cells(), problem.n_dofs(),
              linalg::to_string(problem.config().jacobian));
  // Every preconditioner works under either Jacobian mode; the AMG probes
  // its fine matrix from operator applies on the matrix-free path.
  std::unique_ptr<linalg::Preconditioner> M =
      make_preconditioner(args, problem);
  std::printf("preconditioner: %s\n", M->name());
  nonlinear::NewtonConfig ncfg;
  ncfg.max_iters = static_cast<int>(args.num("steps", 8));
  ncfg.verbose = true;
  ncfg.jacobian = problem.config().jacobian;
  // Inner Krylov method; the pipelined variants complete their fused
  // reduction immediately in this serial path (same math, one reduction).
  ncfg.krylov = linalg::krylov_kind_from_string(args.str("krylov", "gmres"));
  std::printf("krylov: %s\n", linalg::to_string(ncfg.krylov));

  // ---- resilience surface ----
  // --inject-fault plants a deterministic fault (see fault_spec_from_string
  // for the kind:site[:evaluation][:repeat] grammar); --guards wraps the
  // problem in NaN/Inf validation decorators (implied by injection);
  // --resilience arms the Newton recovery ladder; --checkpoint also writes
  // the last good state to disk (implies --resilience).
  std::unique_ptr<resilience::FaultInjector> injector;
  if (args.has("inject-fault")) {
    const auto spec =
        resilience::fault_spec_from_string(args.str("inject-fault"));
    injector = std::make_unique<resilience::FaultInjector>(spec);
    std::printf("fault injection: %s\n", resilience::to_string(spec).c_str());
  }
  const bool resilience_on = args.has("resilience") || args.has("checkpoint");
  if (resilience_on) {
    ncfg.recovery.enabled = true;
    ncfg.recovery.verbose = true;
    ncfg.recovery.checkpoint_path = args.str("checkpoint");
    // Preconditioner escalation, weakest to strongest.  The AMG rung
    // rebuilds from the problem's extrusion structure, so it works from
    // both Jacobian modes (probing on the matrix-free path).
    const linalg::ExtrusionInfo extrusion = problem.extrusion_info();
    ncfg.recovery.precond_ladder = {
        [] {
          return std::make_unique<linalg::JacobiPreconditioner>();
        },
        [] {
          return std::make_unique<linalg::BlockJacobiPreconditioner>(2);
        },
        [extrusion] {
          return std::make_unique<linalg::SemicoarseningAmg>(
              extrusion, linalg::AmgConfig{});
        },
    };
  }
  // The forced-stagnation site lives in the solver (the guards never see
  // the inner GMRES); hand the injector over regardless of --resilience so
  // injection without recovery still records the linear failure.
  ncfg.recovery.injector = injector.get();

  const bool guards_on = args.has("guards") || injector != nullptr;
  resilience::GuardedProblem guarded(problem, {}, injector.get());
  resilience::GuardedPreconditioner guarded_M(*M, injector.get());
  nonlinear::NonlinearProblem& prob =
      guards_on ? static_cast<nonlinear::NonlinearProblem&>(guarded) : problem;
  linalg::Preconditioner& precond =
      guards_on ? static_cast<linalg::Preconditioner&>(guarded_M) : *M;
  if (guards_on) std::printf("guards: NaN/Inf validation enabled\n");

  nonlinear::NewtonSolver newton(ncfg);
  auto U = problem.analytic_initial_guess();
  nonlinear::NewtonResult r;
  try {
    r = newton.solve(prob, precond, U);
  } catch (const resilience::SolverFaultError& e) {
    // Guard fault with recovery disabled (or its budget exhausted): fail
    // loudly with the typed record and a nonzero exit.
    std::fprintf(stderr, "%s\n", e.fault().describe().c_str());
    return 3;
  }
  std::printf("||F||: %.3e -> %.3e in %d steps (%zu GMRES iterations)\n",
              r.initial_norm, r.residual_norm, r.iterations,
              r.total_linear_iters);
  if (!r.recovery.empty()) {
    std::printf("recovery ladder: %zu attempt(s), %d fault(s) detected, %d "
                "step(s) recovered\n",
                r.recovery.size(), r.recovery.faults_detected,
                r.recovery.steps_recovered);
    std::fputs(r.recovery.to_string().c_str(), stdout);
  }
  if (r.faulted) {
    std::fprintf(stderr, "%s\n", r.fault.describe().c_str());
    if (!r.recovery.empty()) {
      std::fprintf(stderr, "last recovery attempts:\n%s",
                   r.recovery.tail().c_str());
    }
    return 3;
  }
  if (r.linear_failures > 0) {
    std::printf("WARNING: %d Newton step(s) took an inexact direction (inner "
                "GMRES missed its tolerance)\n",
                r.linear_failures);
  }
  if (r.line_search_stalled) {
    std::printf("WARNING: line search stalled at minimum damping on at least "
                "one step\n");
  }
  std::printf("mean velocity: %.6f m/yr\n", problem.mean_velocity(U));
  print_jacobian_apply_model(problem);
  if (const auto* amg = dynamic_cast<const linalg::SemicoarseningAmg*>(M.get())) {
    print_amg_cycle_model(problem, *amg, matrix_free);
  }
  if (args.has("phases")) {
    std::printf("per-phase assembly breakdown (%s scatter):\n",
                physics::to_string(problem.scatter_mode()));
    std::ostringstream os;
    perf::print_phase_report(os, problem.phase_timers());
    std::fputs(os.str().c_str(), stdout);
  }

  const auto& base = problem.mesh().base();
  if (args.has("csv")) {
    std::vector<double> u(base.n_nodes()), v(base.n_nodes());
    const auto& msh = problem.mesh();
    for (std::size_t col = 0; col < base.n_nodes(); ++col) {
      const std::size_t n = msh.node_id(col, msh.levels() - 1);
      u[col] = U[2 * n];
      v[col] = U[2 * n + 1];
    }
    io::write_node_csv(args.str("csv"), base, {"u_surface", "v_surface"},
                       {&u, &v});
    std::printf("surface velocity written to %s\n", args.str("csv").c_str());
  }
  if (args.has("ppm")) {
    const auto& msh = problem.mesh();
    std::vector<double> speed(base.n_cells(), 0.0);
    for (std::size_t c = 0; c < base.n_cells(); ++c) {
      for (int k = 0; k < 4; ++k) {
        const std::size_t n =
            msh.node_id(base.cell_node(c, k), msh.levels() - 1);
        speed[c] += 0.25 * std::hypot(U[2 * n], U[2 * n + 1]);
      }
    }
    io::HeatmapConfig hm;
    hm.log_scale = true;
    hm.pixels_per_cell = 6;
    io::write_heatmap_ppm(args.str("ppm"), base, speed, hm);
    std::printf("speed map written to %s\n", args.str("ppm").c_str());
  }
  if (args.has("vtk")) {
    std::vector<double> speed(problem.mesh().n_nodes());
    for (std::size_t n = 0; n < speed.size(); ++n) {
      speed[n] = std::hypot(U[2 * n], U[2 * n + 1]);
    }
    io::write_vtk(args.str("vtk"), problem.mesh(), {{"speed", &speed}},
                  {{"velocity", &U}});
    std::printf("ParaView snapshot written to %s\n", args.str("vtk").c_str());
  }
  return r.residual_norm < r.initial_norm ? 0 : 1;
}

int cmd_study(const Args& args) {
  core::StudyConfig cfg;
  cfg.n_cells = static_cast<std::size_t>(args.num("cells", 262144));
  cfg.sim.scale = args.num("scale", 0.25);
  const core::OptimizationStudy study(cfg);
  const auto path = args.str("out", "mali_report.md");
  core::write_markdown_report(study, path);
  std::printf("study report written to %s\n", path.c_str());
  return 0;
}

int cmd_transport(const Args& args) {
  mesh::IceGeometry geom;
  const mesh::QuadGrid grid(geom, {args.num("dx-km", 100.0) * 1e3});
  mpas::TransportConfig tcfg;
  tcfg.flux = mpas::FluxScheme::kVanLeerMuscl;
  tcfg.time = mpas::TimeScheme::kHeunRk2;
  mpas::FvTransport fv(grid, tcfg);

  std::vector<double> H(fv.n_cells()), smb(fv.n_cells());
  std::vector<double> u(fv.n_cells(), 0.0), v(fv.n_cells(), 0.0);
  for (std::size_t c = 0; c < fv.n_cells(); ++c) {
    double x, y;
    grid.cell_centroid(c, x, y);
    H[c] = geom.thickness(x, y);
    smb[c] = geom.surface_mass_balance(x, y);
  }
  const double years = args.num("years", 500.0);
  const double dt = 5.0;
  const double v0 = fv.volume(H);
  for (double t = 0.0; t < years; t += dt) fv.step(H, u, v, smb, dt);
  std::printf("SMB-only transport over %.0f yr: volume %.4e -> %.4e km^3 "
              "(%+.2f%%)\n",
              years, v0 / 1e9, fv.volume(H) / 1e9,
              100.0 * (fv.volume(H) / v0 - 1.0));
  if (args.has("ppm")) {
    io::write_heatmap_ppm(args.str("ppm"), grid, H, {});
    std::printf("thickness map written to %s\n", args.str("ppm").c_str());
  }
  return 0;
}

int cmd_forecast(const Args& args) {
  physics::StokesFOProblem problem(problem_config(args));
  std::printf("mesh: %zu hexahedra, %zu dofs (%s Jacobian)\n",
              problem.mesh().n_cells(), problem.n_dofs(),
              linalg::to_string(problem.config().jacobian));

  timestepping::ForecastConfig fcfg;
  fcfg.years = args.num("years", 10.0);
  fcfg.controller.dt_init = args.num("dt-init", 1.0);
  fcfg.controller.dt_min = args.num("dt-min", 1.0 / 1024.0);
  fcfg.controller.dt_max = args.num("dt-max", 10.0);
  fcfg.controller.growth = args.num("dt-growth", 1.25);
  fcfg.controller.backoff = args.num("dt-backoff", 0.5);
  fcfg.controller.cfl_fraction = args.num("cfl", 0.5);
  fcfg.forcing = args.str("forcing", "constant");
  fcfg.velocity_every = static_cast<int>(args.num("velocity-every", 1));
  fcfg.thermal_enabled = !args.has("no-thermal");
  fcfg.thermal_steady = args.has("thermal-steady");
  fcfg.transport.flux = args.str("flux", "muscl") == "upwind"
                            ? mpas::FluxScheme::kUpwind
                            : mpas::FluxScheme::kVanLeerMuscl;
  fcfg.transport.time = mpas::TimeScheme::kHeunRk2;
  fcfg.transport.min_thickness = args.num("min-thickness", 0.0);
  fcfg.newton.max_iters = static_cast<int>(args.num("steps", 8));
  fcfg.newton.krylov =
      linalg::krylov_kind_from_string(args.str("krylov", "gmres"));
  fcfg.make_precond = [&args](const physics::StokesFOProblem& p) {
    return make_preconditioner(args, p);
  };
  fcfg.ranks = static_cast<int>(args.num("ranks", 1));
  if (fcfg.ranks > 1) {
    fcfg.dist.decomp =
        dist::decomp_from_string(args.str("decomp", "strips"));
    fcfg.dist.krylov = fcfg.newton.krylov;
    fcfg.dist.newton.max_iters = fcfg.newton.max_iters;
    // Comm faults and --resilience map onto the coordinated-restart loop;
    // solver fault specs stay on the injector path below (the driver
    // carries them into exactly one distributed solve).
    configure_dist_resilience(args, fcfg.dist,
                              /*dispatch_solver_fault=*/false);
  } else {
    MALI_CHECK_MSG(!(args.has("inject-fault") &&
                     resilience::is_comm_fault_spec(args.str("inject-fault"))),
                   "forecast: comm fault injection (--inject-fault comm:*) "
                   "requires --ranks > 1");
  }
  fcfg.checkpoint_every = static_cast<int>(args.num("checkpoint-every", 0));
  if (args.has("checkpoint")) fcfg.checkpoint_path = args.str("checkpoint");
  fcfg.restart_path = args.str("restart", "");
  fcfg.verbose = !args.has("quiet");

  std::unique_ptr<resilience::FaultInjector> injector;
  if (args.has("inject-fault") &&
      !resilience::is_comm_fault_spec(args.str("inject-fault"))) {
    const auto spec =
        resilience::fault_spec_from_string(args.str("inject-fault"));
    injector = std::make_unique<resilience::FaultInjector>(spec);
    std::printf("fault injection: %s\n", resilience::to_string(spec).c_str());
    fcfg.injector = injector.get();
  }
  if (args.has("resilience")) {
    fcfg.newton.recovery.enabled = true;
    const linalg::ExtrusionInfo extrusion = problem.extrusion_info();
    fcfg.newton.recovery.precond_ladder = {
        [] { return std::make_unique<linalg::JacobiPreconditioner>(); },
        [] { return std::make_unique<linalg::BlockJacobiPreconditioner>(2); },
        [extrusion] {
          return std::make_unique<linalg::SemicoarseningAmg>(
              extrusion, linalg::AmgConfig{});
        },
    };
  }

  std::printf("forecast: %.4g yr horizon, forcing %s, velocity every %d "
              "step(s)%s%s\n",
              fcfg.years, fcfg.forcing.c_str(), fcfg.velocity_every,
              fcfg.thermal_enabled ? ", thermal coupled" : "",
              fcfg.ranks > 1 ? (", " + std::to_string(fcfg.ranks) +
                                " in-process ranks").c_str()
                             : "");

  timestepping::ForecastDriver driver(problem, fcfg);
  const timestepping::ForecastResult res = driver.run();

  double smb = 0.0, calving = 0.0, clamp = 0.0;
  for (const auto& row : res.ledger) {
    smb += row.smb;
    calving += row.calving;
    clamp += row.clamp;
  }
  std::printf(
      "forecast complete: %d step(s) to t = %.4f yr (%d rejection(s), %d "
      "velocity solve(s))\n"
      "volume %.6e -> %.6e km^3; budget smb %+.4e calving %.4e clamp %.4e "
      "km^3; max |mass residual| %.3e (relative)\n",
      res.steps, res.t_final, res.rejections, res.velocity_solves,
      res.volume_initial / 1e9, res.volume_final / 1e9, smb / 1e9,
      calving / 1e9, clamp / 1e9, res.max_mass_residual);
  double total_s = 0.0;
  for (const auto& [name, e] : res.timers.entries()) total_s += e.total;
  if (total_s > 0.0) {
    std::printf("phase split:");
    for (const auto& [name, e] : res.timers.entries()) {
      std::printf("  %s %.3fs (%.1f%%, %zu calls)", name.c_str(), e.total,
                  100.0 * e.total / total_s, e.count);
    }
    std::printf("\n");
  }
  std::printf("mean velocity: %.6f m/yr\n", res.mean_velocity);
  if (!res.dist_recovery.empty()) {
    // Coordinated restarts that happened inside distributed velocity
    // solves; on a failed forecast the tail goes to stderr with the exit.
    std::FILE* to = res.completed ? stdout : stderr;
    std::fprintf(to, "distributed recovery log (%zu attempt(s)):\n%s",
                 res.dist_recovery.size(), res.dist_recovery.tail().c_str());
  }

  if (args.has("ppm")) {
    io::HeatmapConfig hm;
    hm.pixels_per_cell = 6;
    io::write_heatmap_ppm(args.str("ppm"), problem.mesh().base(), res.H, hm);
    std::printf("final thickness map written to %s\n",
                args.str("ppm").c_str());
  }
  return res.completed ? 0 : 1;
}

/// `mali ensemble --manifest FILE`: run a scenario ensemble through the
/// EnsembleEngine (shared problem, recycled AMG, warm starts, result
/// cache) and emit the mali-ensemble-results-v1 JSON document.
/// --expect-cached turns a rerun into an assertion that every member was
/// served from the cache (the CI smoke uses it: second run must be free).
int cmd_ensemble(const Args& args) {
  MALI_CHECK_MSG(args.has("manifest"),
                 "ensemble requires --manifest PATH (key = value manifest, "
                 "see DESIGN.md section 15)");
  ensemble::EnsembleManifest manifest =
      ensemble::load_manifest(args.str("manifest"));
  // Scheduling is a label, not physics: overriding the group count on the
  // command line never changes a member's result (or its cache key).
  if (args.has("rank-groups")) {
    manifest.rank_groups = static_cast<int>(args.num("rank-groups", 1));
    MALI_CHECK_MSG(manifest.rank_groups >= 1,
                   "ensemble: --rank-groups must be >= 1");
  }

  ensemble::EnsembleConfig ecfg;
  ecfg.warm_start = !args.has("no-warm-start");
  ecfg.recycle = !args.has("no-recycle");
  ecfg.use_cache = !args.has("no-cache");
  ecfg.cache_dir = args.str("cache", "");
  ecfg.ranks_per_group = static_cast<int>(args.num("ranks-per-group", 1));
  ecfg.verbose = !args.has("quiet");

  // ---- graceful degradation (DESIGN.md §16) ----
  ecfg.member_retries = static_cast<int>(args.num("member-retries", 0));
  ecfg.retry_backoff_s = args.num("retry-backoff", 0.0);
  ecfg.resilience = args.has("resilience");
  if (args.has("inject-fault")) {
    const std::string spec = args.str("inject-fault");
    MALI_CHECK_MSG(!resilience::is_comm_fault_spec(spec),
                   "ensemble: --inject-fault takes the solver grammar "
                   "(kind:site[:eval][:repeat]); comm faults are exercised "
                   "through `mali solve --ranks` / `mali forecast --ranks`");
    ecfg.inject_fault = true;
    ecfg.fault = resilience::fault_spec_from_string(spec);
    ecfg.fault_member = static_cast<int>(args.num("fault-member", -1));
    if (ecfg.verbose) {
      std::printf("fault injection: %s (member %s)\n",
                  resilience::to_string(ecfg.fault).c_str(),
                  ecfg.fault_member < 0
                      ? "all"
                      : std::to_string(ecfg.fault_member).c_str());
    }
  }

  if (ecfg.verbose) {
    std::printf("ensemble '%s': %zu member(s), %d rank group(s), cache %s\n",
                manifest.name.c_str(), manifest.n_members(),
                manifest.rank_groups,
                ecfg.use_cache
                    ? (ecfg.cache_dir.empty() ? "memory" : ecfg.cache_dir.c_str())
                    : "off");
  }

  ensemble::EnsembleEngine engine(manifest, ecfg);
  const auto out = engine.run();

  const std::string doc =
      ensemble::EnsembleEngine::results_json(out, manifest,
                                             !args.has("no-stats"));
  const std::string path = args.str("out", "");
  if (!path.empty()) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    MALI_CHECK_MSG(f != nullptr, "ensemble: cannot open --out " + path);
    std::fputs(doc.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    if (ecfg.verbose) {
      std::printf("results written to %s\n", path.c_str());
    }
  } else {
    std::fputs(doc.c_str(), stdout);
    std::fputc('\n', stdout);
  }

  if (ecfg.verbose) {
    std::printf("ensemble done: %zu member(s), %zu cache hit(s), %zu "
                "computed, %zu warm start(s), AMG %zu build(s) + %zu "
                "reuse(s), %.3f s\n",
                out.stats.members, out.stats.cache_hits,
                out.stats.cache_misses, out.stats.warm_starts,
                out.stats.amg_builds, out.stats.amg_reuses,
                out.stats.wall_seconds);
  }
  if (out.stats.retried > 0 || out.stats.quarantined > 0) {
    std::printf("degradation: %zu member(s) retried, %zu quarantined "
                "(batch completed; see each member's \"status\")\n",
                out.stats.retried, out.stats.quarantined);
  }
  if (args.has("expect-cached") && out.stats.cache_misses != 0) {
    std::fprintf(stderr,
                 "error: --expect-cached but %zu member(s) were computed "
                 "instead of served from the cache\n",
                 out.stats.cache_misses);
    return 4;
  }
  return 0;
}

int cmd_export_jacobian(const Args& args) {
  MALI_CHECK_MSG(args.has("out"), "export-jacobian requires --out PATH.mtx");
  auto cfg = problem_config(args);
  physics::StokesFOProblem problem(cfg);
  const auto U = problem.analytic_initial_guess();
  std::vector<double> F;
  auto J = problem.create_matrix();
  problem.residual_and_jacobian(U, F, J);
  linalg::write_matrix_market(args.str("out"), J);
  linalg::write_matrix_market(args.str("out") + ".rhs", F);
  std::printf("Jacobian (%zu dofs, %zu nnz) written to %s (+.rhs)\n",
              J.n_rows(), J.nnz(), args.str("out").c_str());
  return 0;
}

int cmd_launch_bounds(const Args& args) {
  core::StudyConfig cfg;
  cfg.n_cells = static_cast<std::size_t>(args.num("cells", 262144));
  cfg.sim.scale = args.num("scale", 0.25);
  const core::OptimizationStudy study(cfg);
  const pk::LaunchConfig launch{
      static_cast<unsigned>(args.num("max-threads", 0)),
      static_cast<unsigned>(args.num("min-blocks", 0))};
  std::printf("LaunchBounds<%u,%u> on the modeled MI250X GCD (%zu cells):\n",
              launch.max_threads, launch.min_blocks, cfg.n_cells);
  for (const auto kind :
       {core::KernelKind::kJacobian, core::KernelKind::kResidual}) {
    const auto dflt = study.simulate(study.mi250x_gcd(), kind,
                                     physics::KernelVariant::kOptimized, {});
    const auto sim = study.simulate(study.mi250x_gcd(), kind,
                                    physics::KernelVariant::kOptimized,
                                    launch);
    std::printf(
        "  %-8s  time %.3e s  arch VGPRs %3d  accum VGPRs %3d  occupancy "
        "%4.0f%%  speedup vs default %.2fx\n",
        core::to_string(kind), sim.time_s, sim.launch.alloc.arch_vgprs,
        sim.launch.alloc.accum_vgprs, 100.0 * sim.launch.occupancy,
        dflt.time_s / sim.time_s);
  }
  return 0;
}

int cmd_archs() {
  for (const auto& a : {gpusim::make_a100(), gpusim::make_mi250x_gcd(),
                        gpusim::make_pvc_stack()}) {
    std::printf("%-22s  %.2f TB/s HBM, %.1f TF64, %3zu MB L2, %d %s, "
                "wave %d\n",
                a.name.c_str(), a.hbm_bw_bytes_per_s / 1e12,
                a.fp64_flops / 1e12, a.l2_bytes >> 20, a.n_sm,
                a.has_accum_vgprs ? "CUs" : "SMs/Xe", a.warp_size);
  }
  return 0;
}

void usage() {
  std::printf(
      "mali <command> [flags]\n\n"
      "commands:\n"
      "  solve            velocity solve on the synthetic Antarctica\n"
      "                   [--dx-km F] [--layers N] [--steps N]\n"
      "                   [--variant baseline|optimized|loop-opt|fused|local-accum]\n"
      "                   [--scatter serial|colored|atomic] [--phases]\n"
      "                   [--jacobian assembled|matrix-free]\n"
      "                   [--simd auto|off|1|2|4|8]\n"
      "                     SIMD element batching of the fused kernels;\n"
      "                     auto picks the native pack width\n"
      "                   [--krylov gmres|pipe-gmres|cg|pipe-cg]\n"
      "                     pipelined variants: one fused allreduce per\n"
      "                     iteration, overlapped with the operator apply\n"
      "                   [--precond jacobi|block-jacobi|amg]\n"
      "                   [--smoother sgs|chebyshev] [--mms]\n"
      "                   [--thermal] [--weertman] [--workset N]\n"
      "                   [--csv PATH] [--ppm PATH]\n"
      "                   [--resilience] [--guards]\n"
      "                   [--inject-fault KIND:SITE[:EVAL][:repeat]]\n"
      "                     kinds: nan|inf|stagnation|precond-fail\n"
      "                     sites: residual|operator-apply|jacobian|\n"
      "                            linear-solve|precond-setup\n"
      "                   [--checkpoint PATH]  (implies --resilience)\n"
      "                   [--ranks N] in-process domain-decomposed solve\n"
      "                     [--decomp strips|blocks] [--halo-overlap]\n"
      "                     [--precond none|jacobi|block-jacobi]\n"
      "                     [--krylov gmres|pipe-gmres|cg|pipe-cg]\n"
      "                     [--comm-guards] checksum + bounded-wait comm\n"
      "                     [--comm-timeout S] typed fault instead of hang\n"
      "                     [--max-restarts N] [--restart-backoff S]\n"
      "                     [--checkpoint] replicated in-memory rollback\n"
      "                     [--resilience] = guards + checkpoint +\n"
      "                       max-restarts 2 (coordinated restart loop)\n"
      "                     [--inject-fault comm:KIND:SITE[:EVAL][:repeat]]\n"
      "                       kinds: drop|corrupt|delay|rank-death|straggler\n"
      "                       sites: halo-send|halo-recv|allreduce|barrier\n"
      "  study            run the GPU optimization study -> markdown report\n"
      "                   [--cells N] [--scale F] [--out PATH]\n"
      "  transport        Eq. 2 thickness transport demo [--dx-km F]\n"
      "                   [--years F] [--ppm PATH]\n"
      "  forecast         transient velocity-thickness-thermal forecast\n"
      "                   [--years F] [--dx-km F] [--layers N]\n"
      "                   [--dt-init F] [--dt-min F] [--dt-max F]\n"
      "                   [--dt-growth F] [--dt-backoff F] [--cfl F]\n"
      "                   [--forcing constant[:offset=F] |\n"
      "                             ramp:anomaly=F[,start=F][,end=F] |\n"
      "                             cycle:amplitude=F[,period=F][,phase=F]]\n"
      "                   [--velocity-every N]  (0 freeze, <0 zero velocity)\n"
      "                   [--no-thermal] [--thermal-steady]\n"
      "                   [--flux upwind|muscl] [--min-thickness F]\n"
      "                   [--checkpoint-every K] [--checkpoint PATH]\n"
      "                   [--restart PATH] [--quiet] [--ppm PATH]\n"
      "                   plus solve's --jacobian/--krylov/--precond/\n"
      "                   --steps/--ranks/--decomp/--inject-fault/--resilience\n"
      "                   (--ranks > 1 also takes solve's --comm-guards/\n"
      "                   --comm-timeout/--max-restarts and comm:* fault\n"
      "                   specs; failed runs print the recovery log tail)\n"
      "  ensemble         batched scenario sweep with amortized setup\n"
      "                   --manifest PATH  (key = value manifest; keys:\n"
      "                     name, dx_km, layers, years, velocity_every,\n"
      "                     newton_max_iters, newton_tol, rank_groups,\n"
      "                     sweep.glen_n, sweep.glen_A,\n"
      "                     sweep.friction_scale, sweep.forcing)\n"
      "                   [--out results.json]  (default: stdout)\n"
      "                   [--cache DIR] persist the result cache on disk\n"
      "                   [--rank-groups N] override the manifest's groups\n"
      "                   [--ranks-per-group N] [--no-warm-start]\n"
      "                   [--no-recycle] [--no-cache] [--no-stats]\n"
      "                   [--expect-cached] exit nonzero unless every\n"
      "                     member was served from the cache\n"
      "                   [--member-retries N] [--retry-backoff S]\n"
      "                     failed members retry then quarantine; the\n"
      "                     batch never aborts on one member's fault\n"
      "                   [--resilience] arm each member's recovery path\n"
      "                   [--inject-fault KIND:SITE[:EVAL][:repeat]]\n"
      "                     [--fault-member ID] restrict to one member\n"
      "                   [--quiet]\n"
      "  export-jacobian  assemble and dump the Jacobian as MatrixMarket\n"
      "                   --out PATH.mtx [--dx-km F] [--layers N]\n"
      "  launch-bounds    evaluate a LaunchBounds<T,B> choice on the GCD\n"
      "                   [--max-threads N] [--min-blocks N] [--cells N]\n"
      "  archs            list the modeled GPU architectures\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args(argc, argv, 2);
  try {
    if (cmd == "solve") return cmd_solve(args);
    if (cmd == "study") return cmd_study(args);
    if (cmd == "transport") return cmd_transport(args);
    if (cmd == "forecast") return cmd_forecast(args);
    if (cmd == "ensemble") return cmd_ensemble(args);
    if (cmd == "export-jacobian") return cmd_export_jacobian(args);
    if (cmd == "launch-bounds") return cmd_launch_bounds(args);
    if (cmd == "archs") return cmd_archs();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}
